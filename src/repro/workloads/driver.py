"""The load driver: submits workload transactions against a deployment.

The paper drives each system with a pool of closed-loop clients — one
outstanding transaction each (§6.2) — sized to hit a *target throughput*
(§6.4).  The driver generates Poisson arrivals at the target rate and
assigns them round-robin to the deployment's client nodes.  In
``closed_loop`` mode (used by the throughput sweeps) each client runs one
transaction at a time and queues further arrivals, so at saturation the
offered load self-throttles exactly like the paper's client pool; in
open-loop mode (fine for light-load latency experiments) arrivals submit
immediately.

Measurements follow the paper's method: run for ``duration_ms``, count only
transactions completing inside the central measurement window (the paper
discards the first and last 30 s of each 90 s run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.stats import LatencyRecorder, SeriesRecorder
from repro.txn import TxnResult

COMMITTED = "committed"
ABORTED = "aborted"


@dataclass
class WorkloadStats:
    """Everything an experiment needs from one run."""

    latency: LatencyRecorder
    outcomes: SeriesRecorder
    by_type: Dict[str, LatencyRecorder] = field(default_factory=dict)
    abort_reasons: Dict[str, int] = field(default_factory=dict)
    submitted: int = 0

    @property
    def committed_tps(self) -> float:
        return self.outcomes.rate_per_second(COMMITTED)

    @property
    def abort_rate(self) -> float:
        """Fraction of completed transactions that aborted."""
        return self.outcomes.fraction(ABORTED, of=(COMMITTED, ABORTED))

    def to_json(self) -> Dict[str, object]:
        """Full measurement state as JSON, for sweep records that must
        cross process boundaries and live in the on-disk cache."""
        return {
            "latency": self.latency.to_json(),
            "outcomes": self.outcomes.to_json(),
            "by_type": {name: rec.to_json()
                        for name, rec in sorted(self.by_type.items())},
            "abort_reasons": dict(sorted(self.abort_reasons.items())),
            "submitted": self.submitted,
        }

    @classmethod
    def from_json(cls, doc: Dict[str, object]) -> "WorkloadStats":
        return cls(
            latency=LatencyRecorder.from_json(doc["latency"]),
            outcomes=SeriesRecorder.from_json(doc["outcomes"]),
            by_type={name: LatencyRecorder.from_json(rec)
                     for name, rec in doc["by_type"].items()},
            abort_reasons={str(k): int(v)
                           for k, v in doc["abort_reasons"].items()},
            submitted=int(doc["submitted"]),
        )


class WorkloadDriver:
    """Drives one workload against one deployment."""

    def __init__(self, cluster, workload, target_tps: float,
                 duration_ms: float, warmup_ms: float = 0.0,
                 cooldown_ms: float = 0.0, closed_loop: bool = False,
                 arrival_batch: int = 1):
        if target_tps <= 0:
            raise ValueError("target_tps must be positive")
        if duration_ms <= warmup_ms + cooldown_ms:
            raise ValueError("duration must exceed warmup + cooldown")
        if arrival_batch < 1:
            raise ValueError("arrival_batch must be >= 1")
        self.cluster = cluster
        self.workload = workload
        self.target_tps = target_tps
        self.duration_ms = duration_ms
        self.warmup_ms = warmup_ms
        self.cooldown_ms = cooldown_ms
        self.closed_loop = closed_loop
        #: Arrivals scheduled per RNG/scheduler pass.  1 (the default)
        #: reproduces the historical one-event-reschedules-the-next
        #: chain; larger values draw gaps and schedule arrival events in
        #: tight batches, amortizing per-arrival interpreter overhead at
        #: high target rates.  Batching changes how arrival draws
        #: interleave with protocol draws on ``kernel.random``, so runs
        #: are only comparable at a fixed ``arrival_batch``.
        self.arrival_batch = arrival_batch
        self._next_client = 0
        self._busy: Dict[int, bool] = {}
        self._backlog: Dict[int, List] = {}
        self._batch_pending = 0
        self._batch_done = False
        self.stats = WorkloadStats(LatencyRecorder(workload.name),
                                   SeriesRecorder())

    # ------------------------------------------------------------------
    def run(self, settle_ms: float = 500.0,
            account_bandwidth: bool = False) -> WorkloadStats:
        """Execute the run and return the statistics.

        ``settle_ms`` lets Raft bootstrap (followers adopt the initial
        term) before load starts, mirroring a real deployment's idle start.
        """
        kernel = self.cluster.kernel
        self.cluster.run(settle_ms)
        start = kernel.now
        window_start = start + self.warmup_ms
        window_end = start + self.duration_ms - self.cooldown_ms
        self.stats.latency.set_window(window_start, window_end)
        self.stats.outcomes.set_window(window_start, window_end)
        if account_bandwidth:
            kernel.schedule_at(window_start,
                               self.cluster.network.start_accounting)
            kernel.schedule_at(window_end,
                               self.cluster.network.stop_accounting)
        if self.arrival_batch > 1:
            self._schedule_arrival_batch(end_at=start + self.duration_ms)
        else:
            self._schedule_next_arrival(end_at=start + self.duration_ms)
        # Run past the end so in-flight transactions can finish (they are
        # outside the window anyway).
        self.cluster.run(self.duration_ms + 2_000.0)
        return self.stats

    # ------------------------------------------------------------------
    def _schedule_next_arrival(self, end_at: float) -> None:
        kernel = self.cluster.kernel
        gap_ms = kernel.random.expovariate(self.target_tps / 1000.0)
        at = kernel.now + gap_ms
        if at >= end_at:
            return
        kernel.schedule(gap_ms, self._arrive, end_at)

    def _schedule_arrival_batch(self, end_at: float) -> None:
        """Draw up to ``arrival_batch`` Poisson gaps and schedule their
        arrival events in one tight pass; the last arrival of the batch
        refills, preserving the chain's draw-at-arrival pacing at batch
        boundaries."""
        kernel = self.cluster.kernel
        expovariate = kernel.random.expovariate
        schedule_at = kernel.schedule_at
        rate = self.target_tps / 1000.0
        at = kernel.now
        self._batch_done = True
        scheduled = 0
        for __ in range(self.arrival_batch):
            at += expovariate(rate)
            if at >= end_at:
                break
            schedule_at(at, self._arrive_batched, end_at)
            scheduled += 1
        else:
            self._batch_done = False  # batch filled; more load remains
        self._batch_pending = scheduled

    def _arrive_batched(self, end_at: float) -> None:
        self._batch_pending -= 1
        self._dispatch()
        if self._batch_pending == 0 and not self._batch_done:
            self._schedule_arrival_batch(end_at)

    def _arrive(self, end_at: float) -> None:
        self._dispatch()
        self._schedule_next_arrival(end_at)

    def _dispatch(self) -> None:
        index = self._next_client % len(self.cluster.clients)
        self._next_client += 1
        spec = self.workload.next_spec()
        if self.closed_loop and self._busy.get(index):
            # One outstanding transaction per client (§6.2): queue the
            # arrival until this client's current transaction completes.
            self._backlog.setdefault(index, []).append(spec)
        else:
            self._submit(index, spec)

    def _submit(self, index: int, spec) -> None:
        client = self.cluster.clients[index]
        self._busy[index] = True
        self.stats.submitted += 1
        client.submit(spec, lambda result, i=index:
                      self._on_complete(result, i))

    def _on_complete(self, result: TxnResult, index: int = -1) -> None:
        now = self.cluster.kernel.now
        outcome = COMMITTED if result.committed else ABORTED
        self.stats.outcomes.record(outcome, at_ms=now)
        if result.committed:
            self.stats.latency.record(result.latency_ms, at_ms=now)
            per_type = self.stats.by_type.setdefault(
                result.txn_type, LatencyRecorder(result.txn_type))
            per_type.record(result.latency_ms)
        else:
            self.stats.abort_reasons[result.reason] = \
                self.stats.abort_reasons.get(result.reason, 0) + 1
        if self.closed_loop and index >= 0:
            backlog = self._backlog.get(index)
            if backlog:
                self._submit(index, backlog.pop(0))
            else:
                self._busy[index] = False
