"""Declared protocol state machines and FSM conformance checking.

Each :class:`FSMSpec` names a string-valued state attribute in one file,
the complete set of legal states, the legal initial states, and the legal
transitions.  :func:`check_fsm` compares the spec against what msggraph
extracted from the source:

* every *assigned* state value must be a declared state;
* every state value *compared against* must be a declared state (catches
  dispatch on a state that can never be entered);
* an assignment guarded by ``if <attr> == S:`` must be a declared
  transition out of ``S`` (unguarded assignments are not checked — they
  are resets like Raft's step-down, legal from any state);
* class-level defaults and ``__init__`` assignments must be declared
  initial states;
* every declared state must be entered somewhere (assignment or
  default), or it is dead.

The per-transaction coordinator/participant/replica machines encode
their state in OCC bookkeeping (``prepare_log``/``resolved``/``finished``
sets) rather than a single attribute; those are enforced by protolint's
reply-obligation and idempotence rules (PL004/PL006) instead — see
DESIGN.md §9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple

from .findings import Finding, Rule
from .msggraph import MessageGraph


@dataclass(frozen=True)
class FSMSpec:
    """One declared state machine over a string attribute in one file."""

    name: str
    #: Path fragment selecting the owning file (posix, e.g. "raft/node.py").
    path_fragment: str
    #: The attribute that stores the state (e.g. ``state``, ``phase``).
    attr: str
    states: Tuple[str, ...]
    initial: Tuple[str, ...]
    #: from-state -> allowed to-states, for guarded assignments.
    transitions: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def matches(self, path: str) -> bool:
        """Whether ``path`` is the file this machine lives in."""
        return self.path_fragment in Path(path).as_posix()


#: The state machines protolint enforces (PL008).
FSM_SPECS: Tuple[FSMSpec, ...] = (
    FSMSpec(
        name="raft-member",
        path_fragment="raft/node.py",
        attr="state",
        states=("follower", "candidate", "leader"),
        initial=("follower",),
        transitions={
            "follower": ("follower", "candidate"),
            "candidate": ("candidate", "leader", "follower"),
            "leader": ("follower",),
        },
    ),
    FSMSpec(
        name="coordinator-wal",
        path_fragment="core/coordinator.py",
        attr="wal_state",
        states=("active", "recovery"),
        initial=("active",),
        transitions={
            "active": ("recovery",),
            "recovery": ("active",),
        },
    ),
    FSMSpec(
        name="carousel-client-txn",
        path_fragment="core/client.py",
        attr="phase",
        states=("read", "commit", "read_only", "done"),
        initial=("read",),
        transitions={
            "read": ("read_only", "commit", "done"),
            "commit": ("done",),
            "read_only": ("done",),
        },
    ),
    FSMSpec(
        name="layered-client-txn",
        path_fragment="layered/client.py",
        attr="phase",
        states=("read", "commit", "done"),
        initial=("read",),
        transitions={
            "read": ("commit", "done"),
            "commit": ("done",),
        },
    ),
    FSMSpec(
        name="tapir-client-txn",
        path_fragment="tapir/client.py",
        attr="phase",
        states=("read", "prepare", "done"),
        initial=("read",),
        transitions={
            "read": ("prepare", "done"),
            "prepare": ("done",),
        },
    ),
)


def check_fsm(graph: MessageGraph, spec: FSMSpec,
              rule: Rule) -> List[Finding]:
    """Findings for one spec against the extracted FSM raw material."""
    findings: List[Finding] = []
    states = set(spec.states)
    entered: set = set()

    assigns = [a for a in graph.fsm_assigns
               if a.attr == spec.attr and spec.matches(a.path)]
    compares = [c for c in graph.fsm_compares
                if c.attr == spec.attr and spec.matches(c.path)]
    defaults = [d for d in graph.fsm_defaults
                if d.attr == spec.attr and spec.matches(d.path)]

    for assign in assigns:
        entered.add(assign.value)
        if assign.value not in states:
            findings.append(Finding(
                rule=rule, path=assign.path, line=assign.line, col=1,
                message=(f"fsm {spec.name}: assigns undeclared state "
                         f"{assign.value!r} to .{spec.attr} (declared: "
                         f"{', '.join(spec.states)})")))
            continue
        if assign.func == "__init__" and assign.value not in spec.initial:
            findings.append(Finding(
                rule=rule, path=assign.path, line=assign.line, col=1,
                message=(f"fsm {spec.name}: __init__ sets .{spec.attr} to "
                         f"{assign.value!r}, which is not a declared "
                         f"initial state ({', '.join(spec.initial)})")))
        for origin in assign.guards:
            if origin not in states:
                continue  # the compare check reports the bad guard state
            allowed = spec.transitions.get(origin, ())
            if assign.value not in allowed:
                findings.append(Finding(
                    rule=rule, path=assign.path, line=assign.line, col=1,
                    message=(f"fsm {spec.name}: transition "
                             f"{origin!r} -> {assign.value!r} is not "
                             f"declared (allowed from {origin!r}: "
                             f"{', '.join(allowed) or 'none'})")))

    for compare in compares:
        if compare.value not in states:
            findings.append(Finding(
                rule=rule, path=compare.path, line=compare.line, col=1,
                message=(f"fsm {spec.name}: compares .{spec.attr} against "
                         f"undeclared state {compare.value!r}")))

    for default in defaults:
        entered.add(default.value)
        if default.value not in states:
            findings.append(Finding(
                rule=rule, path=default.path, line=default.line, col=1,
                message=(f"fsm {spec.name}: class default for "
                         f".{spec.attr} is undeclared state "
                         f"{default.value!r}")))
        elif default.value not in spec.initial:
            findings.append(Finding(
                rule=rule, path=default.path, line=default.line, col=1,
                message=(f"fsm {spec.name}: class default "
                         f"{default.value!r} is not a declared initial "
                         f"state ({', '.join(spec.initial)})")))

    if assigns or defaults:
        anchor_path = (defaults[0].path if defaults else assigns[0].path)
        for state in spec.states:
            if state not in entered:
                findings.append(Finding(
                    rule=rule, path=anchor_path, line=1, col=1,
                    message=(f"fsm {spec.name}: declared state "
                             f"{state!r} is never entered (no assignment "
                             f"or default sets it)")))
    return findings


def check_all(graph: MessageGraph, rule: Rule,
              specs: Tuple[FSMSpec, ...] = FSM_SPECS) -> List[Finding]:
    findings: List[Finding] = []
    for spec in specs:
        findings.extend(check_fsm(graph, spec, rule))
    return findings
