"""Property-based tests (hypothesis) for the simulated-durable WAL.

Three invariants the recovery machinery leans on:

* **Prefix truncation** — whatever a crash leaves behind is a prefix of
  the append history (torn tails included): replay can never reorder or
  skip-and-resume.
* **Durability line** — a record fsynced with ``durable_at <= crash
  time`` always survives; a record never fsynced never survives, torn
  tail or not (an un-fsynced decision cannot be resurrected).
* **Fault-free equivalence** — with every append synced and zero sync
  latency, a crash loses nothing: the restarted image is byte-identical
  to the never-crashed log.  This is the WAL-side half of the harness
  guarantee that enabling the WAL at defaults does not perturb a run.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wal.log import WriteAheadLog
from repro.wal.records import CoordFinishWal

# One op per step: append (synced or not), a bare fsync, or letting the
# virtual clock advance.  Crash points are chosen separately.
_ops_st = st.lists(
    st.one_of(
        st.tuples(st.just("append"), st.booleans()),
        st.tuples(st.just("fsync"), st.none()),
        st.tuples(st.just("tick"), st.floats(min_value=0.5, max_value=20.0)),
    ),
    min_size=1, max_size=40,
)


def _run_ops(ops, sync_latency_ms, torn_tail, owner="prop-node"):
    """Drive a WAL through ``ops``; returns (wal, clock, history) where
    ``history`` is [(record, synced_explicitly)] in append order."""
    clock = {"now": 0.0}
    wal = WriteAheadLog(owner, clock=lambda: clock["now"],
                        sync_latency_ms=sync_latency_ms,
                        torn_tail=torn_tail)
    history = []
    serial = 0
    for op, arg in ops:
        if op == "append":
            record = CoordFinishWal(tid=f"t{serial}")
            serial += 1
            wal.append(record, sync=arg)
            history.append((record, arg))
            if arg:
                # fsync stamps the whole unsynced tail, not just this one.
                history = [(rec, True) for rec, __ in history]
        elif op == "fsync":
            wal.fsync()
            history = [(rec, True) for rec, __ in history]
        else:
            clock["now"] += arg
    return wal, clock, history


class TestCrashTruncation:
    @given(ops=_ops_st, latency=st.floats(min_value=0.0, max_value=15.0),
           torn=st.booleans())
    @settings(max_examples=150, deadline=None)
    def test_survivors_are_a_prefix(self, ops, latency, torn):
        wal, clock, history = _run_ops(ops, latency, torn)
        full = [record for record, __ in history]
        wal.crash()
        survivors = wal.replay()
        assert survivors == full[:len(survivors)]

    @given(ops=_ops_st, latency=st.floats(min_value=0.0, max_value=15.0),
           torn=st.booleans())
    @settings(max_examples=150, deadline=None)
    def test_durability_line(self, ops, latency, torn):
        wal, clock, history = _run_ops(ops, latency, torn)
        now = clock["now"]
        # Mirror the stamps before crashing: fsynced records are durable
        # once their (sync time + latency) stamp is in the past.
        durable = [stamp <= now for stamp in wal._durable_at]
        synced = [flag for __, flag in history]
        wal.crash()
        survivors = set(wal.replay())
        for (record, __), was_durable, was_synced in zip(
                history, durable, synced):
            if was_durable:
                assert record in survivors   # past the durability line
            if not was_synced:
                assert record not in survivors  # never issued to disk

    @given(ops=_ops_st, torn=st.booleans())
    @settings(max_examples=100, deadline=None)
    def test_fault_free_wal_loses_nothing(self, ops, torn):
        # Force every append through fsync at zero latency: the durable
        # image always equals the full history, so a crash+replay run is
        # indistinguishable from a never-crashed one.
        ops = [(op, True if op == "append" else arg) for op, arg in ops]
        wal, __, history = _run_ops(ops, 0.0, torn)
        never_crashed = wal.replay()
        assert wal.crash() == 0
        assert wal.replay() == never_crashed
        assert never_crashed == [record for record, __ in history]

    @given(ops=_ops_st, latency=st.floats(min_value=0.0, max_value=15.0))
    @settings(max_examples=100, deadline=None)
    def test_torn_cut_is_deterministic_per_owner(self, ops, latency):
        runs = []
        for __ in range(2):
            wal, clock, history = _run_ops(ops, latency, torn_tail=True)
            wal.crash()
            runs.append(wal.replay())
        assert runs[0] == runs[1]
