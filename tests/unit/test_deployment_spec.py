"""Unit tests for deployment-spec validation and placement."""

import pytest

from repro.bench.cluster import CarouselCluster, DeploymentSpec
from repro.core.config import CarouselConfig
from repro.sim.topology import ec2_five_regions, uniform_topology


class TestDeploymentSpecValidation:
    def test_defaults_match_paper(self):
        spec = DeploymentSpec()
        assert spec.n_partitions == 5
        assert spec.replication_factor == 3
        assert set(spec.topology.datacenters) == {
            "us-west", "us-east", "europe", "asia", "australia"}

    def test_even_replication_factor_rejected(self):
        with pytest.raises(ValueError, match="odd"):
            DeploymentSpec(replication_factor=2)

    def test_replication_beyond_datacenters_rejected(self):
        with pytest.raises(ValueError, match="not enough datacenters"):
            DeploymentSpec(topology=uniform_topology(3, 5.0),
                           replication_factor=5)

    def test_zero_partitions_rejected(self):
        with pytest.raises(ValueError, match="at least one partition"):
            DeploymentSpec(n_partitions=0)


class TestPlacement:
    def test_paper_deployment_shape(self):
        cluster = CarouselCluster(DeploymentSpec(seed=1),
                                  CarouselConfig())
        # 15 servers: 5 partitions x replication factor 3, one replica per
        # server (§6.1).
        assert len(cluster.servers) == 15
        # Three servers (and at most one replica per partition) per DC.
        per_dc = {}
        for server in cluster.servers.values():
            per_dc.setdefault(server.dc, []).append(server)
        assert all(len(v) == 3 for v in per_dc.values())
        # Exactly one partition leader per datacenter.
        for dc in cluster.topology.datacenters:
            assert len(cluster.directory.leaders_in(dc)) == 1

    def test_at_most_one_replica_per_partition_per_dc(self):
        cluster = CarouselCluster(DeploymentSpec(seed=1),
                                  CarouselConfig())
        for pid in cluster.partition_ids:
            dcs = cluster.directory.lookup(pid).datacenters
            assert len(set(dcs)) == len(dcs)

    def test_leader_in_home_datacenter(self):
        cluster = CarouselCluster(DeploymentSpec(seed=1),
                                  CarouselConfig())
        # Partition p<i> leads from datacenter i (the placement rule).
        for i, pid in enumerate(cluster.partition_ids):
            expected = cluster.topology.datacenters[
                i % len(cluster.topology.datacenters)]
            assert cluster.directory.lookup(pid).leader_datacenter() == \
                expected

    def test_clients_created_per_dc(self):
        cluster = CarouselCluster(DeploymentSpec(seed=1, clients_per_dc=3),
                                  CarouselConfig())
        assert len(cluster.clients) == 15
        assert cluster.client("asia", 2).dc == "asia"
