"""TAPIR tuning parameters."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.backoff import RetryPolicy


@dataclass
class TapirConfig:
    """Client/replica behaviour knobs.

    Parameters
    ----------
    fast_path_timeout_ms:
        How long the client waits for a unanimous fast quorum before
        starting IR's slow path.  The Carousel paper singles this wait out
        as a cause of TAPIR's long tail (§6.3).  Sized for the EC2
        topology by default; the local-cluster experiments lower it.
    retry_ms:
        Client retransmission timeout for lost messages.
    retry_backoff_multiplier / retry_backoff_max_ms / retry_jitter_fraction:
        Capped exponential backoff with deterministic jitter for the
        retransmission timers (reads/prepares and the asynchronous commit
        round).  The defaults are the degenerate fixed-interval policy
        that draws nothing from the RNG; see
        :class:`repro.core.backoff.RetryPolicy`.
    """

    fast_path_timeout_ms: float = 250.0
    retry_ms: float = 10_000.0
    retry_backoff_multiplier: float = 1.0
    retry_backoff_max_ms: Optional[float] = None
    retry_jitter_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.fast_path_timeout_ms <= 0:
            raise ValueError("fast_path_timeout_ms must be positive")
        if self.retry_ms <= 0:
            raise ValueError("retry_ms must be positive")
        self.retry_policy  # validate the backoff fields eagerly

    @property
    def retry_policy(self) -> RetryPolicy:
        """The retransmission backoff schedule retry timers share."""
        return RetryPolicy(
            base_ms=self.retry_ms,
            multiplier=self.retry_backoff_multiplier,
            max_ms=self.retry_backoff_max_ms,
            jitter_fraction=self.retry_jitter_fraction)
