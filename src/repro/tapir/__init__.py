"""TAPIR baseline: transactions over inconsistent replication.

TAPIR [Zhang et al., SOSP'15] is the state-of-the-art comparator in the
Carousel paper's evaluation (§6).  This package implements the behaviours
the paper's analysis depends on:

* clients act as transaction coordinators (not fault tolerant);
* reads go to the closest replica holding the key;
* prepare is an IR consensus operation sent to **all** replicas, with a
  fast path requiring a matching fast quorum (⌈3f/2⌉+1) and a slow path
  (extra round trips) otherwise;
* the client waits for a **fast-path timeout** before falling back to the
  slow path — a source of tail latency (§6.3);
* a client may not issue a transaction that conflicts with its own
  previous transaction until that transaction is fully committed at the
  servers (§6.3).
"""

from repro.tapir.config import TapirConfig
from repro.tapir.client import TapirClient
from repro.tapir.replica import TapirReplica

__all__ = ["TapirConfig", "TapirClient", "TapirReplica"]
