"""Trace exporters: Chrome ``trace_event`` JSON and plain-text timelines.

The Chrome format (one ``traceEvents`` array of ``ph``-typed records with
microsecond timestamps) loads directly into ``chrome://tracing`` or
Perfetto.  Each traced transaction becomes a *process*; each node that
participated becomes a *thread* within it, so the per-node phase spans and
message flights line up on one horizontal lane per node.

Exports are deterministic: records are emitted in stable (insertion)
order and serialized with sorted keys, so the same seed produces a
byte-identical file.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.trace.tracer import Span, Tracer, TxnTrace


def _us(ms: float) -> int:
    """Virtual milliseconds → integer microseconds (Chrome's unit)."""
    return int(round(ms * 1000.0))


def to_chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """Build a Chrome ``trace_event`` document from a tracer's records."""
    events: List[Dict[str, Any]] = []
    for pid, txn in enumerate(tracer.transactions(), start=1):
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": f"txn {txn.tid} [{txn.system}]"},
        })
        critical = {ann.msg_id for ann in txn.critical_path()}
        # One thread lane per node, in order of first appearance.
        lanes: Dict[str, int] = {}

        def lane(node: str) -> int:
            if node not in lanes:
                lanes[node] = len(lanes) + 1
                events.append({
                    "ph": "M", "name": "thread_name", "pid": pid,
                    "tid": lanes[node], "args": {"name": node},
                })
            return lanes[node]

        for span in txn.spans:
            end_ms = span.end_ms if span.end_ms is not None else span.start_ms
            events.append({
                "ph": "X", "name": span.kind, "cat": "span",
                "pid": pid, "tid": lane(span.node),
                "ts": _us(span.start_ms),
                "dur": max(1, _us(end_ms) - _us(span.start_ms)),
                "args": {"detail": span.detail, "dc": span.dc},
            })
        for ann in txn.messages:
            events.append({
                "ph": "X", "name": ann.msg_type, "cat": "message",
                "pid": pid, "tid": lane(ann.src),
                "ts": _us(ann.send_ms),
                "dur": max(1, _us(ann.recv_ms) - _us(ann.send_ms)),
                "args": {
                    "src": ann.src, "src_dc": ann.src_dc,
                    "dst": ann.dst, "dst_dc": ann.dst_dc,
                    "bytes": ann.size_bytes, "cross_dc": ann.cross_dc,
                    "wan_hops": ann.wan_hops,
                    "critical": ann.msg_id in critical,
                },
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_json(tracer: Tracer) -> str:
    """Serialize :func:`to_chrome_trace` deterministically (sorted keys)."""
    return json.dumps(to_chrome_trace(tracer), sort_keys=True, indent=1)


def render_timeline(txn: TxnTrace) -> str:
    """Render one transaction as a plain-text timeline.

    Rows are ordered by virtual time; critical-path messages are starred
    so the sequential-WANRT accounting can be read off directly.
    """
    lines: List[str] = []
    latency = txn.latency_ms()
    outcome = ("COMMITTED" if txn.committed
               else "ABORTED" if txn.committed is not None else "PENDING")
    header = f"txn {txn.tid} [{txn.system}] {outcome}"
    if latency is not None:
        header += f"  latency={latency:.1f}ms"
    header += (f"  sequential-WANRT={txn.sequential_wanrt():.1f}"
               f" ({txn.sequential_wan_hops()} WAN hops on critical path)")
    lines.append(header)
    if txn.reason:
        lines.append(f"  reason: {txn.reason}")
    lines.append("")

    critical = {ann.msg_id for ann in txn.critical_path()}
    rows: List[Any] = []
    for span in txn.spans:
        detail = f" {span.detail}" if span.detail else ""
        if span.end_ms is not None and span.end_ms > span.start_ms:
            rows.append((span.start_ms, len(rows),
                         f"|- {span.kind} begin @{span.node}{detail}"))
            rows.append((span.end_ms, len(rows),
                         f"|- {span.kind} end   @{span.node}"
                         f" (+{span.end_ms - span.start_ms:.1f}ms)"))
        else:
            rows.append((span.start_ms, len(rows),
                         f"|- {span.kind} @{span.node}{detail}"))
    for ann in txn.messages:
        star = "*" if ann.msg_id in critical else " "
        wan = "WAN" if ann.cross_dc else "local"
        rows.append((ann.send_ms, len(rows),
                     f"{star}> {ann.msg_type} {ann.src} -> {ann.dst}"
                     f" [{wan}] {ann.size_bytes}B"
                     f" arrives {ann.recv_ms:.1f}ms"))
    rows.sort(key=lambda r: (r[0], r[1]))
    for ms, _, text in rows:
        lines.append(f"{ms:9.1f}ms  {text}")
    lines.append("")
    lines.append("critical path (client-observed chain, * above):")
    for ann in txn.critical_path():
        wan = "WAN" if ann.cross_dc else "local"
        lines.append(f"  {ann.send_ms:9.1f}ms  {ann.msg_type}"
                     f" {ann.src_dc} -> {ann.dst_dc} [{wan}]"
                     f" hops={ann.wan_hops}")
    return "\n".join(lines)
