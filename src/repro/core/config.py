"""Carousel deployment and protocol configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.backoff import RetryPolicy
from repro.raft.node import RaftConfig

#: Protocol modes evaluated in the paper (§5).
BASIC = "basic"
FAST = "fast"


@dataclass
class CarouselConfig:
    """Tunable parameters of a Carousel deployment.

    Parameters
    ----------
    mode:
        ``BASIC`` runs the basic transaction protocol (§4.1).  ``FAST``
        enables CPC (§4.2) and, following the paper's "Carousel Fast"
        configuration, reading from local replicas (§4.4.1).
    read_only_optimization:
        One-roundtrip read-only transactions (§4.4.2).  The paper enables
        this for both Basic and Fast.
    heartbeat_interval_ms / heartbeat_misses:
        Clients heartbeat their transaction coordinator; the coordinator
        aborts a transaction after ``heartbeat_misses`` consecutive missed
        heartbeats, unless it has already received the commit request
        (§4.3.1).
    read_nearest_replica:
        §4.4.1's extension: when a partition has no replica in the
        client's datacenter, also request read data from the *closest*
        replica (not just the leader).  Only meaningful in ``FAST`` mode,
        where stale reads are detected at commit time.
    client_retry_ms:
        Client-side retransmission timeout for in-flight requests.  Covers
        messages lost to server crashes; generous by default so it never
        fires in failure-free runs.
    retry_backoff_multiplier / retry_backoff_max_ms / retry_jitter_fraction:
        Capped exponential backoff for every retransmission timer
        (client retry, coordinator prepare re-query, writeback retry):
        the ``n``-th retry waits ``client_retry_ms * multiplier^n``,
        capped at ``retry_backoff_max_ms``, scaled by a deterministic
        jitter factor in ``[1 - jitter, 1 + jitter]`` drawn from the
        kernel RNG.  The defaults (multiplier 1, no jitter) are the
        degenerate policy: a fixed interval that draws nothing from the
        RNG — the exact pre-backoff behaviour.  Chaos runs use an
        aggressive base with multiplier 2 so lost messages are retried
        quickly without synchronized retry storms.
    directory_cache_ttl_ms:
        When set, clients cache directory lookups for this long instead of
        consulting the directory service on every transaction (§3.3);
        entries are invalidated on retransmission, when a moved leader is
        the likely cause.  ``None`` (default) reads the directory directly.
    raft:
        Timing for every consensus group.
    """

    mode: str = BASIC
    read_only_optimization: bool = True
    read_nearest_replica: bool = False
    directory_cache_ttl_ms: Optional[float] = None
    heartbeat_interval_ms: float = 1000.0
    heartbeat_misses: int = 3
    client_retry_ms: float = 10_000.0
    retry_backoff_multiplier: float = 1.0
    retry_backoff_max_ms: Optional[float] = None
    retry_jitter_fraction: float = 0.0
    raft: RaftConfig = field(default_factory=RaftConfig)

    def __post_init__(self) -> None:
        if self.mode not in (BASIC, FAST):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.heartbeat_interval_ms <= 0:
            raise ValueError("heartbeat interval must be positive")
        if self.heartbeat_misses < 1:
            raise ValueError("heartbeat_misses must be at least 1")
        if self.client_retry_ms <= 0:
            raise ValueError("client_retry_ms must be positive")
        self.retry_policy  # validate the backoff fields eagerly

    @property
    def retry_policy(self) -> RetryPolicy:
        """The retransmission backoff schedule all retry timers share."""
        return RetryPolicy(
            base_ms=self.client_retry_ms,
            multiplier=self.retry_backoff_multiplier,
            max_ms=self.retry_backoff_max_ms,
            jitter_fraction=self.retry_jitter_fraction)

    @property
    def fast_path_enabled(self) -> bool:
        return self.mode == FAST

    @property
    def local_reads_enabled(self) -> bool:
        return self.mode == FAST
