"""Smoke tests: the shipped examples keep running end to end.

Only the quick examples run here (the longer ones — bank transfers,
failover, retwis — exercise paths already covered by the integration
tests and benchmarks).
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "transfer" in out
        assert "committed" in out
        assert "conserved" in out

    def test_tpcc_payment(self, capsys):
        out = run_example("tpcc_payment.py", capsys)
        assert "payment(alice): committed=True" in out
        assert "payment(carol): committed=False" in out
        assert "exactly once" in out
