"""Setup shim enabling legacy editable installs in offline environments.

All project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works without the ``wheel`` package or network access.
"""

from setuptools import setup

setup()
