"""Shared fixtures for the paper-reproduction benchmarks.

Each expensive experiment runs once per pytest session (session-scoped
fixtures); the individual benchmark files render and assert the figure or
table they reproduce.  Parameters live in
:mod:`repro.bench.experiments`, shared with the ``python -m repro`` CLI.

Scale: set ``REPRO_BENCH_SCALE=full`` for paper-length runs (90 s windows,
10 M keys — slow); the default ``quick`` scale keeps the same shapes with
shorter windows and a 1 M keyspace.
"""

from __future__ import annotations

import os
from typing import Dict, List

import pytest

from repro.bench.experiments import (
    bandwidth_experiment,
    fig4_experiment,
    fig8_experiment,
    throughput_sweep_experiment,
)
from repro.bench.runner import ExperimentResult, RunRecord

SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")


@pytest.fixture(scope="session")
def fig4_results() -> Dict[str, RunRecord]:
    """Figure 4: Retwis latency CDF on the EC2 topology at 200 tps."""
    return fig4_experiment(SCALE)


@pytest.fixture(scope="session")
def fig8_results() -> Dict[str, RunRecord]:
    """Figure 8: YCSB+T latency CDF on the EC2 topology at 200 tps."""
    return fig8_experiment(SCALE)


@pytest.fixture(scope="session")
def throughput_sweep() -> Dict[str, List[RunRecord]]:
    """Figures 5 and 6: Retwis on the uniform 5 ms local cluster."""
    return throughput_sweep_experiment(SCALE)


@pytest.fixture(scope="session")
def bandwidth_results() -> Dict[str, ExperimentResult]:
    """Figure 7: bandwidth at 5000 tps on the uniform 5 ms cluster."""
    return bandwidth_experiment(SCALE)
