"""Multi-process localhost deployments: ``repro serve`` / ``repro cluster``.

``serve`` runs **one** logical process of a deployment — ``dc-<name>``
hosting that datacenter's servers — in its own OS process: it binds a
TCP listener, prints ``READY <proc> <port>`` on stdout, builds its share
of the cluster, and then follows the driver's control frames
(:mod:`repro.runtime.harness`): ``CtlPeers`` installs the address table,
``CtlSnapshotRequest`` returns the replicated state, ``CtlShutdown``
exits.

``cluster`` is the driver: it spawns one ``serve`` child per datacenter,
collects their ports from stdout, distributes the address table, runs
the seeded sequential workload from local clients, gathers snapshots —
and then replays the identical plan through the DES backend and applies
the full differential evaluation (:mod:`repro.runtime.conformance`), so
the multi-process smoke is held to the same oracle as the in-process
harness.
"""

# Spawning children and speaking TCP is this module's purpose; detlint's
# wall-clock allowlist covers `runtime/` (see analysis/detlint.py).

from __future__ import annotations

import asyncio
import os
import sys
from typing import Any, Dict, List, Optional, Tuple

from repro.runtime.aio import AioRuntime
from repro.runtime.conformance import (
    ConformanceOptions,
    ConformanceResult,
    build_conformance_plan,
    build_system,
    drive_plan_async,
    evaluate,
    run_des_side,
)
from repro.runtime.harness import (
    CtlPeers,
    CtlShutdown,
    CtlSnapshotRequest,
    CtlSnapshotReply,
    merge_snapshots,
    snapshot_cluster,
)
from repro.sim.topology import ec2_five_regions

#: Wall-clock bound on a child reaching READY / answering a snapshot.
CHILD_TIMEOUT_S = 30.0


async def serve_async(system: str, seed: int, proc: str,
                      host: str = "127.0.0.1", port: int = 0) -> int:
    """Run one logical process until the driver says shutdown."""
    loop = asyncio.get_running_loop()
    topology = ec2_five_regions()
    runtime = AioRuntime(proc, seed, topology, loop, host=host)
    if port:
        runtime.network.port = port
    shutdown = asyncio.Event()
    holder: Dict[str, Any] = {"cluster": None}

    def _on_control(ctl: Any) -> None:
        if isinstance(ctl, CtlPeers):
            runtime.network.set_addresses(
                {p: tuple(addr) for p, addr in ctl.addresses.items()})
        elif isinstance(ctl, CtlSnapshotRequest):
            snapshot = snapshot_cluster(system, holder["cluster"])
            runtime.network.send_control(
                ctl.reply_to, CtlSnapshotReply(proc=proc, snapshot=snapshot))
        elif isinstance(ctl, CtlShutdown):
            shutdown.set()

    runtime.network.control_handler = _on_control
    bound = await runtime.start()
    holder["cluster"] = build_system(system, seed, runtime=runtime,
                                     topology=topology)
    print(f"READY {proc} {bound}", flush=True)
    await shutdown.wait()
    await runtime.close()
    return 0


async def _spawn_server(system: str, seed: int, proc: str
                        ) -> Tuple[asyncio.subprocess.Process, int]:
    """Start one ``repro serve`` child and wait for its READY line."""
    child = await asyncio.create_subprocess_exec(
        sys.executable, "-m", "repro", "serve",
        "--system", system, "--seed", str(seed), "--proc", proc,
        stdout=asyncio.subprocess.PIPE, env=dict(os.environ))
    while True:
        line = await asyncio.wait_for(child.stdout.readline(),
                                      timeout=CHILD_TIMEOUT_S)
        if not line:
            raise RuntimeError(f"serve child {proc} exited before READY")
        text = line.decode("utf-8", "replace").strip()
        if text.startswith("READY "):
            __, got_proc, got_port = text.split()
            if got_proc != proc:  # pragma: no cover - defensive
                raise RuntimeError(f"child announced {got_proc!r}, "
                                   f"expected {proc!r}")
            return child, int(got_port)


async def cluster_async(system: str, seed: int,
                        opts: Optional[ConformanceOptions] = None,
                        differential: bool = True
                        ) -> ConformanceResult:
    """Drive a multi-process localhost cluster through the seeded plan.

    With ``differential`` (the default) the identical plan is also run
    through the DES backend and the full conformance evaluation applies;
    without it, only the asyncio-side liveness/oracle checks run (the
    DES fields of the result stay empty).
    """
    opts = opts or ConformanceOptions()
    loop = asyncio.get_running_loop()
    topology = ec2_five_regions()
    keys = [f"wk{i}" for i in range(opts.n_keys)]
    plan = build_conformance_plan(seed, opts,
                                  len(topology.datacenters), keys)

    runtime = AioRuntime("driver", seed, topology, loop)
    procs = [f"dc-{dc}" for dc in topology.datacenters]
    snapshots: Dict[str, dict] = {}
    snapshots_done = asyncio.Event()

    def _on_control(ctl: Any) -> None:
        if isinstance(ctl, CtlSnapshotReply):
            snapshots[ctl.proc] = ctl.snapshot
            if len(snapshots) == len(procs):
                snapshots_done.set()

    runtime.network.control_handler = _on_control
    port = await runtime.start()
    children: List[asyncio.subprocess.Process] = []
    try:
        table: Dict[str, Tuple[str, int]] = {"driver": ("127.0.0.1", port)}
        for proc in procs:
            child, child_port = await _spawn_server(system, seed, proc)
            children.append(child)
            table[proc] = ("127.0.0.1", child_port)
        runtime.network.set_addresses(table)
        for proc in procs:
            runtime.network.send_control(proc, CtlPeers(addresses=table))

        driver = build_system(system, seed, runtime=runtime,
                              topology=topology)
        await asyncio.sleep(opts.settle_s)
        results, violations = await drive_plan_async(driver, plan, opts)
        await asyncio.sleep(opts.drain_s)

        for proc in procs:
            runtime.network.send_control(proc, CtlSnapshotRequest())
        await asyncio.wait_for(snapshots_done.wait(),
                               timeout=CHILD_TIMEOUT_S)
        merged = merge_snapshots(
            [snapshot_cluster(system, driver)]
            + [snapshots[proc] for proc in procs])

        for proc in procs:
            runtime.network.send_control(proc, CtlShutdown())
        for child in children:
            await asyncio.wait_for(child.wait(), timeout=CHILD_TIMEOUT_S)
        children = []

        if differential:
            des_cluster, des_results, des_snapshot, des_violations = \
                run_des_side(system, seed, opts, plan)
            return evaluate(system, seed, plan, keys,
                            des_cluster, des_results, des_snapshot,
                            driver, results, merged,
                            des_violations + violations)
        result = ConformanceResult(
            system=system, seed=seed, rounds=len(plan),
            committed=sum(1 for _, r in results if r.committed),
            aborted=sum(1 for _, r in results if not r.committed),
            counts_aio=dict(merged["sent_by_type"]),
            violations=violations)
        return result
    finally:
        for child in children:  # only on failure paths
            try:
                child.kill()
            except ProcessLookupError:  # pragma: no cover
                pass
        await runtime.close()


def run_cluster(system: str, seed: int,
                opts: Optional[ConformanceOptions] = None,
                differential: bool = True) -> ConformanceResult:
    """Synchronous wrapper around :func:`cluster_async`."""
    return asyncio.run(cluster_async(system, seed, opts=opts,
                                     differential=differential))
