"""Unit tests for the calendar-queue scheduler and its kernel plumbing."""

import pytest

from repro.sim.calqueue import _MIN_BUCKETS, CalendarQueue
from repro.sim.kernel import SCHEDULERS, Event, Kernel


def _event(time, seq):
    return Event(time, seq, lambda: None, ())


class TestCalendarQueue:
    def test_pops_in_time_then_seq_order(self):
        q = CalendarQueue()
        events = [_event(t, s) for s, t in
                  enumerate([5.0, 1.0, 3.0, 1.0, 0.0])]
        for event in events:
            q.push(event)
        popped = []
        while q.pending():
            popped.append(q.pop_until(None))
        assert [(e.time, e.seq) for e in popped] == \
            [(0.0, 4), (1.0, 1), (1.0, 3), (3.0, 2), (5.0, 0)]

    def test_pop_until_respects_limit(self):
        q = CalendarQueue()
        q.push(_event(10.0, 0))
        assert q.pop_until(5.0) is None
        assert q.pending() == 1
        assert q.pop_until(10.0).time == 10.0

    def test_pop_empty_returns_none(self):
        assert CalendarQueue().pop_until(None) is None

    def test_discard_removes_eagerly(self):
        q = CalendarQueue()
        keep, drop = _event(1.0, 0), _event(1.0, 1)
        q.push(keep)
        q.push(drop)
        q.discard(drop)
        assert q.pending() == 1
        assert q.pop_until(None) is keep
        assert q.pop_until(None) is None

    def test_discard_unknown_event_is_noop(self):
        q = CalendarQueue()
        q.push(_event(1.0, 0))
        q.discard(_event(1.0, 1))  # same bucket, never pushed
        assert q.pending() == 1

    def test_grow_resize_preserves_order(self):
        q = CalendarQueue()
        events = [_event(float(i % 97), i) for i in range(500)]
        for event in events:
            q.push(event)
        assert q.resizes > 0
        popped = [q.pop_until(None) for _ in range(500)]
        assert [(e.time, e.seq) for e in popped] == \
            sorted((e.time, e.seq) for e in events)

    def test_shrink_resize_after_drain(self):
        q = CalendarQueue()
        for i in range(300):
            q.push(_event(float(i), i))
        grow_resizes = q.resizes
        while q.pending():
            q.pop_until(None)
        assert q.resizes > grow_resizes  # shrank on the way down
        assert q._mask + 1 >= _MIN_BUCKETS

    def test_push_before_scan_pointer_after_resize(self):
        """A push earlier than the current scan day must still be found
        (regression test: the scan pointer must move backwards)."""
        q = CalendarQueue()
        for i in range(100):
            q.push(_event(100.0 + i, i))
        early = _event(0.5, 1000)
        q.push(early)
        assert q.pop_until(None) is early

    def test_far_future_fallback_search(self):
        q = CalendarQueue(width=0.001)  # one year = 16 us
        a, b = _event(500.0, 1), _event(400.0, 0)
        q.push(a)
        q.push(b)
        assert q.pop_until(None) is b
        assert q.pop_until(None) is a

    def test_validates_construction(self):
        with pytest.raises(ValueError):
            CalendarQueue(n_buckets=12)
        with pytest.raises(ValueError):
            CalendarQueue(width=0.0)


class TestKernelSchedulerPlumbing:
    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError):
            Kernel(scheduler="fifo")

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_op_counters_track_kernel_activity(self, scheduler):
        kernel = Kernel(seed=3, scheduler=scheduler)
        kernel.schedule(1.0, lambda: None)
        doomed = kernel.schedule(2.0, lambda: None)
        doomed.cancel()
        kernel.run()
        ops = kernel.op_counters()
        assert ops["events_scheduled"] == 2
        assert ops["events_executed"] == 1
        assert ops["events_cancelled"] == 1
        assert ops["pending_events"] == 0

    def test_calendar_kernel_runs_nested_schedules(self):
        kernel = Kernel(seed=4, scheduler="calendar")
        fired = []

        def fire(depth):
            fired.append(kernel.now)
            if depth:
                kernel.schedule(1.5, fire, depth - 1)

        kernel.schedule(1.0, fire, 4)
        kernel.run()
        assert fired == [1.0, 2.5, 4.0, 5.5, 7.0]

    def test_calendar_reports_zero_compactions(self):
        kernel = Kernel(seed=5, scheduler="calendar")
        for _ in range(50):
            kernel.schedule(1.0, lambda: None).cancel()
        kernel.run()
        assert kernel.op_counters()["compactions"] == 0
        assert kernel.pending_events() == 0
