"""Safety and liveness oracles for chaos runs.

All oracles run *after* the final heal and a quiescence window, against
an adapter (:class:`repro.chaos.runner.ClusterAdapter`) that gives them a
uniform view of clients, stores, and resolved-outcome maps across the
four systems.  The workload is increment-only and keys start absent, so
the expected store state is exact: a key's value **and** version must
both equal the number of committed transactions that wrote it.

* **liveness** — every submitted transaction got a terminal response,
  client counters balance, and no client still has work in flight.
* **decision-consistency** — no transaction is resolved ``commit`` at one
  replica/partition and ``abort`` at another (2PC atomicity), and every
  client-visible commit is durably resolved as a commit at every replica
  of every partition it wrote.
* **replica-divergence** — all replicas of a partition agree on each
  workload key's ``(value, version)``.
* **value-parity** — the agreed state equals the committed-increment
  count: fewer means a lost update, more means a double apply.
* **durability** — evaluated against state *rebuilt from WAL images*
  after every server is power-cycled: no client-visible commit may be
  lost (``durability-lost-commit``) and no aborted write may resurface
  (``durability-abort-resurfaced``).  The store checks split the
  value-parity accounting by direction; the decision checks compare
  client-visible outcomes against the rebuilt resolved maps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.txn import TxnResult

COMMIT = "commit"

#: A client result paired with the write-key set of its transaction.
ResultRow = Tuple[Tuple[str, ...], TxnResult]


@dataclass
class OracleViolation:
    """One oracle failure: which oracle, what happened, and — when known —
    the transaction and key involved (used to pull the causal trace)."""

    oracle: str
    detail: str
    tid: Any = None
    key: Optional[str] = None

    def __str__(self) -> str:
        return f"[{self.oracle}] {self.detail}"


def check_liveness(adapter, expected: int,
                   results: Sequence[ResultRow]) -> List[OracleViolation]:
    """After the final heal + quiescence, everything must have terminated."""
    violations: List[OracleViolation] = []
    if len(results) < expected:
        violations.append(OracleViolation(
            "liveness",
            f"only {len(results)} of {expected} submitted transactions "
            "reached a terminal response after the final heal"))
    for client in adapter.clients():
        if client.submitted != client.committed + client.aborted:
            violations.append(OracleViolation(
                "liveness",
                f"{client.node_id}: submitted={client.submitted} != "
                f"committed={client.committed} + aborted={client.aborted}"))
        pending = adapter.client_pending(client)
        if pending:
            violations.append(OracleViolation(
                "liveness",
                f"{client.node_id}: {pending} transaction(s) still in "
                "flight after quiescence"))
    return violations


def check_decisions(adapter,
                    results: Sequence[ResultRow]) -> List[OracleViolation]:
    """2PC atomicity: one decision per transaction, everywhere."""
    violations: List[OracleViolation] = []
    decisions: Dict[Any, Dict[str, str]] = {}
    for location, resolved in adapter.resolved_maps():
        # Ordered: resolved insertion order is apply order, deterministic
        # under a fixed kernel seed.
        # detlint: ignore[values-fanout]
        for tid, decision in resolved.items():
            decisions.setdefault(tid, {})[location] = decision
    for tid in sorted(decisions, key=str):
        outcomes = sorted(set(decisions[tid].values()))
        if len(outcomes) > 1:
            where = ", ".join(f"{loc}={d}"
                              for loc, d in sorted(decisions[tid].items()))
            violations.append(OracleViolation(
                "decision-consistency",
                f"txn {tid} resolved inconsistently: {where}", tid=tid))
    # Client-visible commits must be resolved as commits at every replica
    # of every written partition (the writeback/commit retransmission
    # loops guarantee this once the network heals).
    for keys, result in results:
        if not result.committed:
            continue
        for pid in adapter.partitions_for(keys):
            for location, resolved in adapter.resolved_for_pid(pid):
                decision = resolved.get(result.tid)
                if decision != COMMIT:
                    found = "missing" if decision is None else decision
                    violations.append(OracleViolation(
                        "decision-consistency",
                        f"committed txn {result.tid} is {found} at "
                        f"{location}", tid=result.tid))
    return violations


def check_stores(adapter, results: Sequence[ResultRow],
                 keys: Sequence[str]) -> List[OracleViolation]:
    """Replica agreement plus exact increment accounting per key."""
    violations: List[OracleViolation] = []
    committed_writes: Dict[str, int] = {}
    last_tid: Dict[str, Any] = {}
    for write_keys, result in results:
        if not result.committed:
            continue
        for key in write_keys:
            committed_writes[key] = committed_writes.get(key, 0) + 1
            last_tid[key] = result.tid
    for key in sorted(keys):
        want = committed_writes.get(key, 0)
        replicas = adapter.stores_for_key(key)
        states = []
        for node_id, store in replicas:
            record = store.read(key)
            value = 0 if record.value is None else record.value
            states.append((node_id, value, record.version))
        distinct = sorted({(value, version)
                           for _, value, version in states})
        if len(distinct) > 1:
            where = ", ".join(f"{n}=({v},v{ver})" for n, v, ver in states)
            violations.append(OracleViolation(
                "replica-divergence",
                f"key {key!r}: replicas disagree: {where}",
                tid=last_tid.get(key), key=key))
        for node_id, value, version in states:
            if value != want or version != want:
                violations.append(OracleViolation(
                    "value-parity",
                    f"key {key!r} at {node_id}: value={value} "
                    f"version={version}, expected {want} committed "
                    "increments", tid=last_tid.get(key), key=key))
    return violations


def check_durability(adapter, results: Sequence[ResultRow],
                     keys: Sequence[str]) -> List[OracleViolation]:
    """Committed writes survive a power cycle; aborted ones stay dead.

    Run after every server has been restarted from its WAL image, so the
    state inspected here is exactly what the durable records can rebuild
    — RAM-only survivals cannot mask a journaling hole.
    """
    violations: List[OracleViolation] = []
    committed_writes: Dict[str, int] = {}
    last_tid: Dict[str, Any] = {}
    for write_keys, result in results:
        if not result.committed:
            continue
        for key in write_keys:
            committed_writes[key] = committed_writes.get(key, 0) + 1
            last_tid[key] = result.tid
    for key in sorted(keys):
        want = committed_writes.get(key, 0)
        for node_id, store in adapter.stores_for_key(key):
            record = store.read(key)
            value = 0 if record.value is None else record.value
            if value < want or record.version < want:
                violations.append(OracleViolation(
                    "durability-lost-commit",
                    f"key {key!r} at {node_id} after restart: "
                    f"value={value} version={record.version}, expected "
                    f"{want} committed increments",
                    tid=last_tid.get(key), key=key))
            elif value > want or record.version > want:
                violations.append(OracleViolation(
                    "durability-abort-resurfaced",
                    f"key {key!r} at {node_id} after restart: "
                    f"value={value} version={record.version} exceeds "
                    f"{want} committed increments",
                    tid=last_tid.get(key), key=key))
    # Decision-level: every client-visible outcome must match the
    # rebuilt resolved maps of every partition the transaction wrote.
    for write_keys, result in results:
        for pid in adapter.partitions_for(write_keys):
            for location, resolved in adapter.resolved_for_pid(pid):
                decision = resolved.get(result.tid)
                if result.committed and decision != COMMIT:
                    found = "missing" if decision is None else decision
                    violations.append(OracleViolation(
                        "durability-lost-commit",
                        f"committed txn {result.tid} is {found} at "
                        f"{location} after restart", tid=result.tid))
                elif not result.committed and decision == COMMIT:
                    violations.append(OracleViolation(
                        "durability-abort-resurfaced",
                        f"aborted txn {result.tid} resolved as commit "
                        f"at {location} after restart", tid=result.tid))
    return violations
