"""Message-graph extraction tests: defs, sends, branches, closures, FSM.

Each fixture is a minimal module (or pair of modules) exercising one
extraction path; paths carry a ``core/`` fragment so the fixtures land in
the ``carousel`` protocol.  The tree-level tests at the bottom pin the
extracted inventory of the real protocol packages.
"""

import textwrap

from repro.analysis.msggraph import (build_graph, build_graph_from_paths,
                                     collect_sources, protocol_of)
from repro.analysis.protolint import default_paths

MESSAGES = textwrap.dedent("""
    from dataclasses import dataclass

    @dataclass
    class Ping(Message):
        tid: int = 0
        payload: str = ""

    @dataclass
    class Pong(Message):
        tid: int = 0

    @dataclass
    class Record:
        tid: int
        decision: str
        writes: tuple = ()
""")


def graph_of(**modules):
    """Build a graph from ``{basename: source}`` fixture modules."""
    sources = {f"fx/core/{name}.py": textwrap.dedent(text)
               for name, text in modules.items()}
    return build_graph(sources)


def test_protocol_of_path_fragments():
    assert protocol_of("src/repro/core/server.py") == "carousel"
    assert protocol_of("src/repro/layered/client.py") == "layered"
    assert protocol_of("src/repro/tapir/replica.py") == "tapir"
    assert protocol_of("src/repro/raft/node.py") == "raft"
    assert protocol_of("src/repro/sim/kernel.py") == "misc"


def test_message_and_dataclass_defs():
    g = graph_of(messages=MESSAGES)
    assert set(g.messages) == {"Ping", "Pong"}
    assert set(g.dataclasses) == {"Ping", "Pong", "Record"}
    ping = g.messages["Ping"]
    assert ping.protocol == "carousel"
    assert [f.name for f in ping.fields] == ["tid", "payload"]
    assert all(f.has_default for f in ping.fields)
    record = g.dataclasses["Record"]
    assert not record.is_message
    assert record.required_fields() == ("tid", "decision")


def test_direct_send_site():
    g = graph_of(messages=MESSAGES, node="""
        class Client:
            def go(self, dst):
                self.send(dst, Ping(tid=1))
    """)
    (site,) = g.sends_of("Ping")
    assert site.cls == "Client"
    assert site.func == "go"
    (ctor,) = g.constructs_of("Ping")
    assert ctor.sent


def test_variable_bound_send_marks_construct_sent():
    g = graph_of(messages=MESSAGES, node="""
        class Client:
            def go(self, dst):
                msg = Ping(tid=1)
                self.send(dst, msg)

            def build_only(self):
                local = Pong(tid=2)
                return local
    """)
    (ping,) = g.constructs_of("Ping")
    assert ping.sent
    (pong,) = g.constructs_of("Pong")
    assert not pong.sent
    assert [s.msg_type for s in g.sends] == ["Ping"]


def test_branch_extraction_name_tuple_and_constants():
    g = graph_of(messages=MESSAGES, node="""
        _GROUP = (Ping, Pong)

        class Host:
            TYPES = (Ping,)

            def handle_message(self, msg):
                if isinstance(msg, _GROUP):
                    self.route(msg)

            def handle_app_message(self, msg):
                if isinstance(msg, Ping):
                    self.on_ping(msg)
                elif isinstance(msg, (Pong,)):
                    self.on_pong(msg)

            def handle(self, msg):
                if isinstance(msg, self.TYPES):
                    self.on_self_const(msg)
    """)
    by_func = {}
    for b in g.branches:
        by_func.setdefault(b.func, []).append(b)
    assert sorted(b.msg_type for b in by_func["handle_message"]) == \
        ["Ping", "Pong"]
    assert {b.msg_type: b.targets for b in by_func["handle_app_message"]} \
        == {"Ping": ("on_ping",), "Pong": ("on_pong",)}
    assert [b.msg_type for b in by_func["handle"]] == ["Ping"]
    assert all(b.cls == "Host" for b in g.branches)


def test_unknown_types_in_isinstance_are_ignored():
    g = graph_of(messages=MESSAGES, node="""
        class Host:
            def handle_message(self, msg):
                if isinstance(msg, SomethingElse):
                    self.on_other(msg)
                elif isinstance(msg, str):
                    self.on_str(msg)
    """)
    assert g.branches == []


def test_sends_in_nested_defs_attach_to_outer_function():
    g = graph_of(messages=MESSAGES, node="""
        class Server:
            def on_request(self, msg):
                def replicated(_):
                    self.send(msg.src, Pong(tid=msg.tid))
                self.propose(replicated)
                self.other(lambda: self.send(msg.src, Ping()))
    """)
    info = g.functions[("carousel", "on_request")]
    assert info.sends == {"Pong", "Ping"}
    assert "propose" in info.calls


def test_guards_and_mutations_collected():
    g = graph_of(messages=MESSAGES, node="""
        class Server:
            def guarded(self, msg):
                if msg.tid in self.finished:
                    return
                self.pending.setdefault(msg.tid, [])
                if self.inflight.get(msg.tid) == self.term:
                    return

            def mutating(self, msg):
                self.log.append(msg)
                self.seen.add(msg.tid)
                self.counter += 1
    """)
    guarded = g.functions[("carousel", "guarded")]
    assert len(guarded.guard_sites) >= 3
    mutating = g.functions[("carousel", "mutating")]
    kinds = sorted(k for _, _, k in mutating.mutation_sites)
    assert kinds == ["add", "append", "augassign"]


def test_retry_machinery_detection():
    g = graph_of(messages=MESSAGES, node="""
        class WithTimer:
            def arm(self):
                self.set_timer(10.0, self.fire)

        class WithPolicy:
            def delay(self):
                return self.config.retry_policy.delay_ms(1)

        class Bare:
            def nothing(self):
                return 1
    """)
    assert g.classes["WithTimer"].has_retry_machinery
    assert g.classes["WithPolicy"].has_retry_machinery
    assert not g.classes["Bare"].has_retry_machinery


def test_construct_site_kwargs_positional_and_star():
    g = graph_of(messages=MESSAGES, node="""
        def build(extra):
            a = Record(1, "commit")
            b = Record(tid=2, decision="abort", writes=())
            c = Record(**extra)
            return a, b, c
    """)
    sites = g.constructs_of("Record")
    assert [s.n_pos for s in sites] == [2, 0, 0]
    assert sites[1].kwargs == ("tid", "decision", "writes")
    assert [s.has_star for s in sites] == [False, False, True]


def test_fsm_assign_compare_default_extraction():
    g = graph_of(node="""
        IDLE = "idle"
        BUSY = "busy"

        class Worker:
            phase: str = IDLE

            def start(self):
                if self.phase == IDLE:
                    self.phase = BUSY

            def check(self):
                return self.phase != BUSY
    """)
    (assign,) = [a for a in g.fsm_assigns if a.attr == "phase"]
    assert assign.value == "busy"
    assert assign.guards == ("idle",)
    values = sorted(c.value for c in g.fsm_compares if c.attr == "phase")
    assert values == ["busy", "idle"]
    (default,) = [d for d in g.fsm_defaults if d.attr == "phase"]
    assert default.value == "idle"
    assert default.cls == "Worker"


def test_guard_does_not_leak_into_else_branch():
    g = graph_of(node="""
        A = "a"
        B = "b"
        C = "c"

        class Worker:
            def step(self):
                if self.phase == A:
                    self.phase = B
                else:
                    self.phase = C
    """)
    by_value = {a.value: a.guards for a in g.fsm_assigns}
    assert by_value == {"b": ("a",), "c": ()}


def test_reachable_redirects_through_dispatcher():
    g = graph_of(messages=MESSAGES, node="""
        _ALL = (Ping, Pong)

        class Host:
            def handle_app_message(self, msg):
                if isinstance(msg, _ALL):
                    self.dispatch_partition_message(msg)

            def dispatch_partition_message(self, msg):
                if isinstance(msg, Ping):
                    self.on_ping(msg)
                elif isinstance(msg, Pong):
                    self.on_pong(msg)

            def on_ping(self, msg):
                self.send(msg.src, Pong(tid=msg.tid))

            def on_pong(self, msg):
                self.done.add(msg.tid)
    """)
    reach = g.reachable("carousel", "Ping",
                        ["dispatch_partition_message"])
    assert reach.sends == {"Pong"}
    assert "on_pong" not in reach.visited
    reach_pong = g.reachable("carousel", "Pong",
                             ["dispatch_partition_message"])
    assert reach_pong.sends == frozenset()
    assert reach_pong.mutations


def test_collect_sources_walks_directories(tmp_path):
    pkg = tmp_path / "core"
    pkg.mkdir()
    (pkg / "a.py").write_text("X = 1\n")
    (pkg / "b.py").write_text("Y = 2\n")
    (tmp_path / "single.py").write_text("Z = 3\n")
    sources = collect_sources([str(pkg), str(tmp_path / "single.py")])
    assert sorted(p.split("/")[-1] for p in sources) == \
        ["a.py", "b.py", "single.py"]


# ----------------------------------------------------------------------
# Tree-level inventory pins
# ----------------------------------------------------------------------
def test_tree_graph_inventory():
    g = build_graph_from_paths(default_paths())
    assert len(g.messages) == 33
    assert g.protocols() == ["carousel", "layered", "raft", "tapir"]
    # Every message type is dispatched somewhere and sent somewhere.
    for name in g.messages:
        assert g.branches_of(name), f"{name} has no dispatch branch"
        assert g.sends_of(name), f"{name} is never sent"


def test_tree_raft_host_tuple_dispatch():
    g = build_graph_from_paths(default_paths())
    hosts = [b for b in g.branches_of("AppendEntries")
             if b.cls == "RaftHost"]
    assert hosts and all(b.func == "handle_message" for b in hosts)
    members = [b for b in g.branches_of("AppendEntries")
               if b.cls == "RaftMember"]
    assert members and members[0].targets == ("_on_append_entries",)
