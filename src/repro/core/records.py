"""Raft log commands used by Carousel.

Participant partitions replicate prepare decisions and writebacks; the
coordinating consensus group replicates the transaction's read/write sets,
its write data, and its final decision (§4.1, §4.3).  Followers apply these
records to mirror the state a replacement leader will need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

from repro.core.messages import PartitionSets
from repro.txn import TID


@dataclass(frozen=True)
class PrepareRecord:
    """Participant group: the leader's prepare decision for one
    transaction, with the read/write sets and versions backing it."""

    tid: TID
    partition_id: str
    decision: str  # PREPARED or ABORT
    read_keys: Tuple[str, ...]
    write_keys: Tuple[str, ...]
    read_versions: Tuple[Tuple[str, int], ...]
    term: int
    coordinator_id: str
    coord_group_id: str


@dataclass(frozen=True)
class CommitRecord:
    """Participant group: the writeback — final decision plus updates."""

    tid: TID
    partition_id: str
    decision: str  # "commit" or "abort"
    writes: Tuple[Tuple[str, Any], ...] = ()


@dataclass(frozen=True)
class CoordSetsRecord:
    """Coordinating group: the transaction's participants and key sets."""

    tid: TID
    client_id: str
    participants: Tuple[Tuple[str, PartitionSets], ...]


@dataclass(frozen=True)
class CoordWriteDataRecord:
    """Coordinating group: the client's write values and read versions."""

    tid: TID
    writes: Tuple[Tuple[str, Any], ...]
    read_versions: Tuple[Tuple[str, int], ...]


@dataclass(frozen=True)
class CoordDecisionRecord:
    """Coordinating group: the final commit/abort decision (§4.1.3)."""

    tid: TID
    decision: str
