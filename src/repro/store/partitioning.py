"""Key-to-partition mapping via consistent hashing.

Carousel uses consistent hashing to map keys to partitions (§3.3, [22]).
The ring places a configurable number of virtual nodes per partition on a
64-bit hash circle; a key belongs to the partition owning the first virtual
node clockwise from the key's hash.  The hash is ``blake2b`` (stable across
processes and Python versions, unlike ``hash()``), so deployments and tests
agree on placement.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence


def _hash64(data: str) -> int:
    digest = hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class Partitioner:
    """Interface: anything that maps a key to a partition id."""

    def partition_for(self, key: str) -> str:
        """The partition id owning ``key``."""
        raise NotImplementedError

    @property
    def partitions(self) -> List[str]:
        raise NotImplementedError


class ConsistentHashRing(Partitioner):
    """Consistent hashing over named partitions.

    Parameters
    ----------
    partition_ids:
        The partition names to place on the ring.
    vnodes:
        Virtual nodes per partition.  More virtual nodes make the key load
        more even; 64 keeps the imbalance within a few percent for the
        partition counts the paper uses (5).
    """

    def __init__(self, partition_ids: Sequence[str], vnodes: int = 64):
        if not partition_ids:
            raise ValueError("at least one partition required")
        if len(set(partition_ids)) != len(partition_ids):
            raise ValueError("duplicate partition ids")
        if vnodes < 1:
            raise ValueError("vnodes must be positive")
        self._partitions = list(partition_ids)
        self.vnodes = vnodes
        points: List[int] = []
        owners: Dict[int, str] = {}
        for pid in self._partitions:
            for v in range(vnodes):
                point = _hash64(f"{pid}#{v}")
                # Collisions across 64-bit hashes are effectively impossible,
                # but resolve deterministically anyway.
                while point in owners:
                    point = (point + 1) % (1 << 64)
                owners[point] = pid
                points.append(point)
        points.sort()
        self._points = points
        self._owners = owners

    @property
    def partitions(self) -> List[str]:
        return list(self._partitions)

    def partition_for(self, key: str) -> str:
        """The partition owning ``key``."""
        h = _hash64(key)
        idx = bisect.bisect_right(self._points, h)
        if idx == len(self._points):
            idx = 0
        return self._owners[self._points[idx]]

    def group_by_partition(self, keys: Sequence[str]) -> Dict[str, List[str]]:
        """Group ``keys`` by owning partition (insertion order preserved)."""
        groups: Dict[str, List[str]] = {}
        for key in keys:
            groups.setdefault(self.partition_for(key), []).append(key)
        return groups
