"""``python -m repro perf``: run the benchmark suites or compare BENCH
files.

Usage::

    python -m repro perf run --quick --label seed
    python -m repro perf run --suites timer-cancel-heap,timer-cancel-calendar
    python -m repro perf run --list
    python -m repro perf compare BENCH_seed.json BENCH_pr.json
    python -m repro perf compare --ops-only BENCH_seed.json BENCH_pr.json

``run`` writes ``BENCH_<label>.json`` (schema-validated before the write)
and prints a rate table.  ``compare`` exits non-zero when the candidate
regresses: rates past the threshold, or — always fatal — any exact
operation-counter drift.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.perf.compare import CompareResult, compare_benches
from repro.perf.schema import validate_bench
from repro.perf.suites import SCALES, SUITES, bench_document, run_suites


def _parse_suites(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    names = [name.strip() for name in value.split(",") if name.strip()]
    return names or None


def _load_bench(path: str) -> dict:
    with open(path) as handle:
        doc = json.load(handle)
    errors = validate_bench(doc)
    if errors:
        raise SystemExit(f"{path} is not a valid BENCH document:\n  "
                         + "\n  ".join(errors))
    return doc


def _rate(value: float) -> str:
    if value >= 1_000_000:
        return f"{value / 1_000_000:.2f}M"
    if value >= 1_000:
        return f"{value / 1_000:.1f}k"
    return f"{value:.1f}"


def cmd_run(args) -> int:
    names = _parse_suites(args.suites)
    scale = "full" if args.full else "quick"
    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    executor = None
    cache_stats = None
    if args.jobs > 1:
        from repro.sweep import SweepExecutor

        # Perf reps are never cached (rates must be measured fresh), so
        # the executor runs cacheless; the BENCH document still records
        # the hit/miss counts for the run that produced it.
        executor = SweepExecutor(jobs=args.jobs, cache=None)
    results = run_suites(names, scale=scale,
                         progress=lambda name:
                         print(f"  running {name} ...", flush=True),
                         executor=executor)
    if executor is not None:
        cache_stats = {"hits": executor.stats.hits,
                       "misses": executor.stats.misses}
    doc = bench_document(results, label=args.label, scale=scale,
                         jobs=args.jobs, cache_stats=cache_stats)
    errors = validate_bench(doc)
    if errors:  # pragma: no cover - a bug in suites/schema, not user error
        raise SystemExit("generated BENCH document is invalid:\n  "
                         + "\n  ".join(errors))
    out_path = args.out or f"BENCH_{args.label}.json"
    with open(out_path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\n{'suite':<24} {'unit':<9} {'rate/s':>10} "
          f"{'units':>10} {'wall s':>8}")
    for name, result in results.items():
        print(f"{name:<24} {result.unit:<9} "
              f"{_rate(result.rate_per_sec):>10} "
              f"{result.units_processed:>10} "
              f"{result.wall_seconds:>8.3f}")
    print(f"\n[written {out_path}]")
    return 0


def _report_compare(result: CompareResult, ops_only: bool) -> None:
    for delta in result.deltas:
        verdict = "ok"
        if delta.ops_drift:
            verdict = "OPS DRIFT"
        elif delta.regressed:
            verdict = "ok (rate ignored)" if ops_only else "REGRESSED"
        elif delta.improved:
            verdict = "improved"
        print(f"{delta.name:<24} {_rate(delta.base_rate):>10} -> "
              f"{_rate(delta.cand_rate):>10}  ({delta.ratio:5.2f}x)  "
              f"{verdict}")
        for op_name, values in sorted(delta.ops_drift.items()):
            print(f"    ops[{op_name}]: {values['base']} -> "
                  f"{values['cand']}")
    for name in result.missing_in_candidate:
        print(f"{name:<24} MISSING in candidate")
    for name in result.extra_in_candidate:
        print(f"{name:<24} (new in candidate)")


def cmd_compare(args) -> int:
    baseline = _load_bench(args.baseline)
    candidate = _load_bench(args.candidate)
    result = compare_benches(baseline, candidate,
                             threshold=args.threshold)
    _report_compare(result, ops_only=args.ops_only)
    if result.host_diffs:
        diffs = ", ".join(
            f"{key}: {v['base']!r} -> {v['cand']!r}"
            for key, v in sorted(result.host_diffs.items()))
        print(f"\nhost differs (informational, never gates): {diffs}")
    if result.ok(ops_only=args.ops_only):
        print("\ncompare: OK")
        return 0
    print("\ncompare: FAILED "
          f"({len(result.regressions)} rate regression(s), "
          f"{len(result.ops_drifted)} suite(s) with op drift, "
          f"{len(result.missing_in_candidate)} missing suite(s))")
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro perf",
        description="Kernel-throughput benchmarks and BENCH-file "
                    "comparison.")
    sub = parser.add_subparsers(dest="verb", required=True)

    run = sub.add_parser("run", help="run benchmark suites, write a "
                                     "BENCH_<label>.json")
    run.add_argument("--label", default="local",
                     help="label for the output file (default: local)")
    run.add_argument("--out", default=None, metavar="PATH",
                     help="output path (default: BENCH_<label>.json)")
    run.add_argument("--suites", default=None, metavar="A,B,...",
                     help="comma-separated suite subset (default: all)")
    run.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="worker processes for suite repetitions "
                          "(default 1: in-process)")
    scale = run.add_mutually_exclusive_group()
    scale.add_argument("--quick", action="store_true", default=True,
                       help="CI-sized runs (default)")
    scale.add_argument("--full", action="store_true",
                       help="long-form runs for real measurements")
    run.set_defaults(func=cmd_run)

    compare = sub.add_parser("compare", help="diff two BENCH files")
    compare.add_argument("baseline")
    compare.add_argument("candidate")
    compare.add_argument("--threshold", type=float, default=0.15,
                         help="tolerated relative rate drop "
                              "(default: 0.15)")
    compare.add_argument("--ops-only", action="store_true",
                         help="ignore wall-clock rates; fail only on "
                              "deterministic op-counter drift (CI mode)")
    compare.set_defaults(func=cmd_compare)

    lister = sub.add_parser("list", help="list available suites")
    lister.set_defaults(func=cmd_list)
    return parser


def cmd_list(args) -> int:
    for name in SUITES:
        print(name)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; ``argv`` includes the leading ``perf`` verb."""
    argv = list(argv) if argv is not None else sys.argv[1:]
    if argv and argv[0] == "perf":
        argv = argv[1:]
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
