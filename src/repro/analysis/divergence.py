"""Dual-run divergence bisector: find the first nondeterministic event.

"Seed 42 gave a different p99 this run" is the worst kind of bug report:
within one process every run looks deterministic, because hash-order bugs
only show across *process boundaries* (``PYTHONHASHSEED`` re-randomizes
``str`` hashing per process).  This module turns that afternoon of printf
into one command:

1. Run the same scenario twice, in two fresh child processes, with two
   different ``PYTHONHASHSEED`` values but the same kernel seed.
2. Each child records a compact :mod:`~repro.analysis.digest` stream of
   kernel events and message sends.
3. Diff the streams and report the **first** diverging record, with the
   trailing common records and the divergent message's causal chain
   (reconstructed from the :mod:`repro.trace` parent links carried in the
   digest).

``--plant-set-bug`` installs a deliberately buggy coordinator writeback
loop — the exact set-iteration bug class PR 1 fixed by hand — so the
bisector's localization can be demonstrated (and is e2e-tested) against a
known ground truth.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.digest import DigestRecorder, parse_send_fields

#: Child run timeout (real seconds); trace scenarios finish in ~1 s.
_CHILD_TIMEOUT_S = 300


@dataclass
class DivergenceReport:
    """Outcome of one dual-run comparison."""

    system: str
    seed: int
    n_txns: int
    hash_seeds: Tuple[int, int]
    n_records: Tuple[int, int]
    diverged: bool
    #: Index of the first differing record (``None`` when identical).
    first_index: Optional[int] = None
    record_a: Optional[str] = None
    record_b: Optional[str] = None
    #: Trailing common records before the divergence, oldest first.
    context: List[str] = field(default_factory=list)
    #: Causal message chain of the divergent record in run A, root first.
    causal_chain: List[str] = field(default_factory=list)

    def render(self) -> str:
        """Human-readable report: verdict, first divergence, causal chain."""
        head = (f"divergence check: system={self.system} seed={self.seed} "
                f"txns={self.n_txns} PYTHONHASHSEED="
                f"{self.hash_seeds[0]} vs {self.hash_seeds[1]}\n"
                f"  run A: {self.n_records[0]} digest records; "
                f"run B: {self.n_records[1]}")
        if not self.diverged:
            return head + "\n  no divergence: digest streams identical"
        lines = [head, f"  DIVERGENCE at record {self.first_index}:",
                 f"    A: {self.record_a}",
                 f"    B: {self.record_b}"]
        if self.context:
            lines.append(f"  last {len(self.context)} common records:")
            lines.extend(f"    {rec}" for rec in self.context)
        if self.causal_chain:
            lines.append("  causal chain (run A, root first):")
            lines.extend(f"    {rec}" for rec in self.causal_chain)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Child side: one scenario run, digest written to a file
# ----------------------------------------------------------------------
def run_child(system: str, seed: int, n_txns: int, out_path: str,
              plant_set_bug: bool = False, wide: bool = False) -> None:
    """Run one digest-recorded scenario in *this* process.

    Invoked by the parent through ``python -m repro divergence --child``
    so that each run gets a fresh interpreter (and hash seed).
    """
    if plant_set_bug:
        _plant_set_iteration_bug()
    digest = DigestRecorder()
    if wide or plant_set_bug:
        _run_wide_scenario(system, seed, n_txns, digest)
    else:
        from repro.trace.harness import run_traced
        run_traced(system, seed=seed, n_txns=n_txns, digest_sink=digest)
    digest.write(out_path)


def _run_wide_scenario(system: str, seed: int, n_txns: int,
                       digest: DigestRecorder) -> None:
    """A transaction touching *every* partition (widest possible fan-out,
    so ordering bugs in coordinator loops have the most room to show)."""
    from repro.bench.cluster import CarouselCluster, DeploymentSpec
    from repro.core.config import BASIC, FAST, CarouselConfig
    from repro.trace.tracer import Tracer
    from repro.txn import TransactionSpec

    mode = FAST if system == "fast" else BASIC
    cluster = CarouselCluster(DeploymentSpec(seed=seed,
                                             jitter_fraction=0.0),
                              CarouselConfig(mode=mode))
    cluster.kernel.digest = digest
    tracer = Tracer(cluster.kernel)
    cluster.run(500)  # settle bootstrap

    keys: List[str] = []
    covered: set = set()  # membership only; iteration never escapes
    for i in range(5000):
        key = f"wide{i}"
        pid = cluster.ring.partition_for(key)
        if pid not in covered:
            covered.add(pid)
            keys.append(key)
        if len(covered) == len(cluster.partition_ids):
            break
    cluster.populate({k: "v0" for k in keys})

    client = cluster.client(cluster.client_dcs()[0])
    for i in range(n_txns):
        spec = TransactionSpec(
            read_keys=tuple(keys), write_keys=tuple(keys),
            compute_writes=lambda r: {k: f"w{i}" for k in r},
            txn_type="wide")
        done: List[Any] = []
        client.submit(spec, done.append)
        deadline = cluster.kernel.now + 30_000
        while not done and cluster.kernel.now < deadline:
            cluster.run(50)
        if not done:
            raise RuntimeError(f"wide transaction {i + 1} stalled")
    cluster.run(2_000)  # drain writebacks
    tracer.detach()


def _plant_set_iteration_bug() -> None:
    """Reintroduce PR 1's coordinator writeback bug: fan out over the raw
    ``set`` instead of ``sorted(...)``.  Fixture for the bisector's e2e
    test and the ``--plant-set-bug`` demo; never active otherwise."""
    from repro.core import coordinator as coord_mod
    from repro.core.coordinator import COMMIT, CoordinatorComponent
    from repro.core.messages import Writeback

    def buggy_send_writebacks(self, state):
        outstanding = set(state.participants) - state.writeback_acks
        if not outstanding:
            self._finish(state)
            return
        # The unsorted fan-out below is the planted divergence.
        # detlint: ignore[set-iter-send]
        for pid in outstanding:
            sets = state.participants[pid]
            writes = {k: state.writes[k] for k in sets.write_keys
                      if k in state.writes} \
                if state.decision == COMMIT else {}
            leader = self.server.directory.lookup(pid).leader
            self._send(leader, Writeback(
                tid=state.tid, partition_id=pid,
                decision=state.decision, writes=writes))
        self._cancel_timer(state, "writeback_timer")
        state.writeback_timer = self.server.set_timer(
            self.config.client_retry_ms, self._retry_writebacks, state)

    coord_mod._ORIGINAL_SEND_WRITEBACKS = \
        CoordinatorComponent._send_writebacks
    CoordinatorComponent._send_writebacks = buggy_send_writebacks


# ----------------------------------------------------------------------
# Parent side: spawn two children, diff their digests
# ----------------------------------------------------------------------
def _child_env(hash_seed: int) -> Dict[str, str]:
    import repro
    src_dir = Path(repro.__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    env["PYTHONPATH"] = str(src_dir) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return env


def _spawn_child(system: str, seed: int, n_txns: int, out_path: str,
                 hash_seed: int, plant_set_bug: bool,
                 wide: bool) -> None:
    cmd = [sys.executable, "-m", "repro", "divergence", "--child",
           "--system", system, "--seed", str(seed),
           "--txns", str(n_txns), "--digest-out", out_path]
    if plant_set_bug:
        cmd.append("--plant-set-bug")
    if wide:
        cmd.append("--wide")
    proc = subprocess.run(cmd, env=_child_env(hash_seed),
                          capture_output=True, text=True,
                          timeout=_CHILD_TIMEOUT_S)
    if proc.returncode != 0:
        raise RuntimeError(
            f"divergence child (PYTHONHASHSEED={hash_seed}) failed with "
            f"code {proc.returncode}:\n{proc.stderr[-2000:]}")


def _causal_chain(records: Sequence[str], index: int,
                  max_depth: int = 10) -> List[str]:
    """The parent-link chain of the divergent record (or of the nearest
    preceding send), reconstructed from digest ``msg=``/``parent=``
    fields.  Root first."""
    by_msg_id: Dict[str, str] = {}
    for rec in records[:index + 1]:
        fields = parse_send_fields(rec)
        msg_id = fields.get("msg")
        if msg_id and msg_id != "None":
            by_msg_id[msg_id] = rec
    start = None
    for i in range(min(index, len(records) - 1), -1, -1):
        if records[i].startswith("S "):
            start = records[i]
            break
    if start is None:
        return []
    chain = [start]
    fields = parse_send_fields(start)
    parent = fields.get("parent")
    while parent and parent != "None" and len(chain) < max_depth:
        rec = by_msg_id.get(parent)
        if rec is None:
            break
        chain.append(rec)
        parent = parse_send_fields(rec).get("parent")
    chain.reverse()
    return chain


def compare_digests(a: Sequence[str], b: Sequence[str],
                    context: int = 6) -> Tuple[Optional[int],
                                               List[str]]:
    """First index where ``a`` and ``b`` differ (``None`` if identical),
    plus up to ``context`` trailing common records before it."""
    shared = min(len(a), len(b))
    first: Optional[int] = None
    for i in range(shared):
        if a[i] != b[i]:
            first = i
            break
    if first is None:
        if len(a) == len(b):
            return None, []
        first = shared
    return first, list(a[max(0, first - context):first])


def run_divergence(system: str = "basic", seed: int = 42,
                   n_txns: int = 2,
                   hash_seeds: Tuple[int, int] = (1, 2),
                   plant_set_bug: bool = False,
                   wide: Optional[bool] = None,
                   context: int = 6) -> DivergenceReport:
    """Run the scenario twice under different ``PYTHONHASHSEED`` values
    and localize the first divergent digest record (if any)."""
    if wide is None:
        wide = plant_set_bug
    with tempfile.TemporaryDirectory(prefix="repro-divergence-") as tmp:
        paths = []
        for hs in hash_seeds:
            out = str(Path(tmp) / f"digest-{hs}.txt")
            _spawn_child(system, seed, n_txns, out, hs,
                         plant_set_bug, wide)
            paths.append(out)
        run_a = DigestRecorder.read(paths[0])
        run_b = DigestRecorder.read(paths[1])

    first, ctx = compare_digests(run_a, run_b, context=context)
    report = DivergenceReport(
        system=system, seed=seed, n_txns=n_txns,
        hash_seeds=(hash_seeds[0], hash_seeds[1]),
        n_records=(len(run_a), len(run_b)),
        diverged=first is not None, first_index=first, context=ctx)
    if first is not None:
        report.record_a = run_a[first] if first < len(run_a) else \
            "<stream ended>"
        report.record_b = run_b[first] if first < len(run_b) else \
            "<stream ended>"
        report.causal_chain = _causal_chain(run_a, first)
    return report
