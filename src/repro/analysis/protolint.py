"""protolint — static protocol-conformance checks over the message graph.

Carousel's correctness argument is a contract between send sites and
handler dispatch: every ``ReadPrepareRequest`` must produce a
``ReadReply``/``FastVote``, every decision must reach every participant,
every RPC must have a retry path.  The chaos harness checks this
dynamically, but a missed handler branch or a dead-letter message type
survives until a nemesis schedule happens to hit it.  protolint proves
the messaging surface is *closed* statically: it builds the message
graph (:mod:`repro.analysis.msggraph`) and checks it against the
declared per-protocol contracts below.

Rules:

======  ==================  ========  ==========================================
code    slug                severity  fires when
======  ==================  ========  ==========================================
PL001   dead-letter         error     a declared receiver has no dispatch branch
                                      for a message, or a message/contract
                                      entry has no counterpart
PL002   dead-handler        warning   a branch exists in a non-receiver class,
                                      or for a type that is never sent
PL003   never-sent          warning   a message type is constructed but never
                                      sent (or never even constructed)
PL004   missing-reply       error     no handler path for a request can send
                                      any of its declared replies
PL005   no-retry-coverage   warning   a retried message is sent from a class
                                      with no timer/RetryPolicy machinery
PL006   handler-mutation    warning   handlers of a dedup-contracted message
                                      mutate per-txn state with no
                                      duplicate-delivery guard in reach
PL007   field-mismatch      error     a constructor call site does not match
                                      the dataclass definition
PL008   fsm-conformance     error     state assignments/compares violate a
                                      declared state machine (:mod:`.fsm`)
======  ==================  ========  ==========================================

Reply obligations (PL004) are checked over a call-graph closure from the
dispatch branches' targets, so replies sent by helpers several calls deep
count; replies sent inline in a dispatcher body (no protocol does this)
would not.  Suppress individual findings with ``# protolint: ignore[...]``
(see :mod:`repro.analysis.findings`).

Self-check plants (mirroring ``repro chaos --plant-bug``): the
``dead-handler`` plant deletes the ``ClientHeartbeat`` branch from the
Carousel server, the ``missing-reply`` plant drops the TAPIR read reply;
CI runs both and asserts PL001/PL004 fire.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .findings import (Finding, Rule, SEVERITY_ERROR, SEVERITY_WARNING,
                       is_suppressed, parse_suppressions)
from .fsm import FSM_SPECS, FSMSpec, check_all as check_all_fsm
from .msggraph import (DISPATCH_FUNCTIONS, MessageGraph, build_graph,
                       collect_sources, protocol_of)

RULES: Dict[str, Rule] = {
    "PL001": Rule("PL001", "dead-letter", SEVERITY_ERROR,
                  "message sent to a role with no handler branch for it"),
    "PL002": Rule("PL002", "dead-handler", SEVERITY_WARNING,
                  "handler branch for a message that never arrives there"),
    "PL003": Rule("PL003", "never-sent", SEVERITY_WARNING,
                  "message type constructed but never sent"),
    "PL004": Rule("PL004", "missing-reply", SEVERITY_ERROR,
                  "no handler path can send a declared reply"),
    "PL005": Rule("PL005", "no-retry-coverage", SEVERITY_WARNING,
                  "retried message sent without timer/RetryPolicy cover"),
    "PL006": Rule("PL006", "handler-mutation", SEVERITY_WARNING,
                  "dedup handler mutates per-txn state unguarded"),
    "PL007": Rule("PL007", "field-mismatch", SEVERITY_ERROR,
                  "constructor call site disagrees with dataclass fields"),
    "PL008": Rule("PL008", "fsm-conformance", SEVERITY_ERROR,
                  "state machine assignment/compare outside declared FSM"),
}


@dataclass(frozen=True)
class MessageContract:
    """Declared obligations for one message type.

    ``receivers``: classes that must each have a dispatch branch.
    ``replies``: some handler path must send at least one of these.
    ``retried``: senders must have timer/RetryPolicy machinery (the
    message is retransmitted, so handlers see duplicates).
    ``dedup``: handlers mutate per-txn state and must carry a
    duplicate-delivery guard (membership test / ``setdefault`` /
    ``.get`` comparison) on some path.
    """

    receivers: Tuple[str, ...]
    replies: Tuple[str, ...] = ()
    retried: bool = False
    dedup: bool = False


_MC = MessageContract

#: protocol -> message name -> contract.  This is the declared messaging
#: surface of the repo; PROTOCOL.md's catalog section is generated from
#: the extracted graph and cross-checked against these in CI.
PROTOCOLS: Dict[str, Dict[str, MessageContract]] = {
    "carousel": {
        "CoordPrepareRequest": _MC(("CarouselServer",), ("TxnReply",),
                                   retried=True, dedup=True),
        "ReadPrepareRequest": _MC(
            ("CarouselServer",),
            ("ReadReply", "FastVote", "PrepareResult"),
            retried=True, dedup=True),
        "ReadReply": _MC(("CarouselClient",)),
        "FastVote": _MC(("CarouselServer",)),
        "PrepareResult": _MC(("CarouselServer",)),
        "CommitRequest": _MC(("CarouselServer",), ("TxnReply",),
                             retried=True, dedup=True),
        "TxnReply": _MC(("CarouselClient",)),
        "Writeback": _MC(("CarouselServer",), ("WritebackAck",),
                         retried=True, dedup=True),
        "WritebackAck": _MC(("CarouselServer",)),
        "ClientHeartbeat": _MC(("CarouselServer",)),
        "ReadOnlyRequest": _MC(("CarouselServer",), ("ReadOnlyReply",),
                               retried=True),
        "ReadOnlyReply": _MC(("CarouselClient",)),
        "PrepareQuery": _MC(("CarouselServer",),
                            ("PrepareResult", "FastVote"),
                            retried=True, dedup=True),
    },
    "layered": {
        "LayeredRead": _MC(("LayeredServer",), ("LayeredReadReply",),
                           retried=True),
        "LayeredReadReply": _MC(("LayeredClient",)),
        "LayeredCommitRequest": _MC(("LayeredServer",), ("LayeredReply",),
                                    retried=True, dedup=True),
        "LayeredPrepare": _MC(("LayeredServer",), ("LayeredPrepareAck",),
                              retried=True, dedup=True),
        "LayeredPrepareAck": _MC(("LayeredServer",)),
        "LayeredReply": _MC(("LayeredClient",)),
        "LayeredWriteback": _MC(("LayeredServer",),
                                ("LayeredWritebackAck",),
                                retried=True, dedup=True),
        "LayeredWritebackAck": _MC(("LayeredServer",)),
    },
    "tapir": {
        "TapirRead": _MC(("TapirReplica",), ("TapirReadReply",),
                         retried=True),
        "TapirReadReply": _MC(("TapirClient",)),
        "TapirPrepare": _MC(("TapirReplica",), ("TapirPrepareReply",),
                            retried=True, dedup=True),
        "TapirPrepareReply": _MC(("TapirClient",)),
        "TapirFinalize": _MC(("TapirReplica",), ("TapirFinalizeAck",),
                             retried=True, dedup=True),
        "TapirFinalizeAck": _MC(("TapirClient",)),
        "TapirCommit": _MC(("TapirReplica",), ("TapirCommitAck",),
                           retried=True, dedup=True),
        "TapirCommitAck": _MC(("TapirClient",)),
    },
    # Raft retransmits by heartbeat/election timer; duplicate AppendEntries
    # are deduplicated by term/index comparison, which is below this
    # rule's model — so no raft type carries ``dedup``.
    "raft": {
        "RequestVote": _MC(("RaftMember", "RaftHost"),
                           ("RequestVoteReply",), retried=True),
        "RequestVoteReply": _MC(("RaftMember", "RaftHost")),
        "AppendEntries": _MC(("RaftMember", "RaftHost"),
                             ("AppendEntriesReply",), retried=True),
        "AppendEntriesReply": _MC(("RaftMember", "RaftHost")),
    },
}

#: Default scan scope: the four protocol packages.
DEFAULT_SCAN_DIRS = (
    "src/repro/core",
    "src/repro/layered",
    "src/repro/tapir",
    "src/repro/raft",
)


def default_paths() -> List[str]:
    paths = [p for p in DEFAULT_SCAN_DIRS if Path(p).is_dir()]
    if not paths:
        raise FileNotFoundError(
            "none of the default protolint scan directories exist "
            f"({', '.join(DEFAULT_SCAN_DIRS)}); run from the repo root "
            "or pass paths explicitly")
    return paths


# ---------------------------------------------------------------------------
# Rule implementations
# ---------------------------------------------------------------------------

def _active_protocols(graph: MessageGraph,
                      contracts: Dict[str, Dict[str, MessageContract]],
                      ) -> List[str]:
    """Contracted protocols that actually appear in the scanned sources."""
    present = {d.protocol for d in graph.messages.values()}
    return sorted(p for p in contracts if p in present)


def _first_def_path(graph: MessageGraph, protocol: str) -> str:
    paths = sorted(d.path for d in graph.messages.values()
                   if d.protocol == protocol)
    return paths[0]


def _branch_delivers(graph: MessageGraph, protocol: str, msg_type: str,
                     branch, seen: set) -> bool:
    """Whether a dispatch branch actually reaches handler code.

    A branch that only forwards to another dispatcher (the
    ``_PARTITION_MESSAGES``/``_COORDINATOR_MESSAGES`` tuple pattern)
    delivers only if that dispatcher has a delivering branch for the
    type — a dropped inner branch is a dead letter even though the
    outer tuple still matches.
    """
    if not branch.targets:
        return True  # inline handling without calls
    dispatch_targets = []
    for target in branch.targets:
        if target in DISPATCH_FUNCTIONS:
            dispatch_targets.append(target)
        else:
            return True  # calls a real handler
    for target in dispatch_targets:
        if target in seen:
            continue
        seen.add(target)
        for inner in graph.branches_of(msg_type):
            if inner.func == target and \
                    protocol_of(inner.path) == protocol and \
                    _branch_delivers(graph, protocol, msg_type, inner,
                                     seen):
                return True
    return False


def _check_dead_letter(graph: MessageGraph,
                       contracts: Dict[str, Dict[str, MessageContract]],
                       ) -> List[Finding]:
    rule = RULES["PL001"]
    findings: List[Finding] = []
    for protocol in _active_protocols(graph, contracts):
        contract = contracts[protocol]
        defined = {name: d for name, d in graph.messages.items()
                   if d.protocol == protocol}
        for name, definition in defined.items():
            if name not in contract:
                findings.append(Finding(
                    rule=rule, path=definition.path, line=definition.line,
                    col=1,
                    message=(f"message {name} is not declared in the "
                             f"{protocol} contract")))
                continue
            for receiver in contract[name].receivers:
                delivering = any(
                    b.cls == receiver and
                    _branch_delivers(graph, protocol, name, b, set())
                    for b in graph.branches_of(name))
                if not delivering:
                    findings.append(Finding(
                        rule=rule, path=definition.path,
                        line=definition.line, col=1,
                        message=(f"{name} is declared to be received by "
                                 f"{receiver}, but {receiver} has no "
                                 f"dispatch branch for it (dead letter)")))
        # The contract-side check only makes sense when the protocol's
        # canonical message module is in scope — otherwise any partial
        # scan would report every contract entry as missing.
        has_catalog = any(
            Path(path).name == "messages.py" and
            protocol_of(path) == protocol for path in graph.sources)
        if not has_catalog:
            continue
        for name in contract:
            if name not in defined:
                findings.append(Finding(
                    rule=rule, path=_first_def_path(graph, protocol),
                    line=1, col=1,
                    message=(f"the {protocol} contract declares message "
                             f"{name}, but no Message subclass with that "
                             f"name was found")))
    return findings


def _check_dead_handler(graph: MessageGraph,
                        contracts: Dict[str, Dict[str, MessageContract]],
                        ) -> List[Finding]:
    rule = RULES["PL002"]
    findings: List[Finding] = []
    active = set(_active_protocols(graph, contracts))
    for branch in graph.branches:
        definition = graph.messages.get(branch.msg_type)
        if definition is None or definition.protocol not in active:
            continue
        contract = contracts[definition.protocol].get(branch.msg_type)
        if contract is None:
            continue  # PL001 reports the missing contract entry
        if branch.cls is not None and branch.cls not in contract.receivers:
            findings.append(Finding(
                rule=rule, path=branch.path, line=branch.line, col=1,
                message=(f"{branch.cls} handles {branch.msg_type}, but is "
                         f"not a declared receiver "
                         f"({', '.join(contract.receivers)})")))
    for protocol in sorted(active):
        for name in sorted(contracts[protocol]):
            if name not in graph.messages:
                continue
            branches = graph.branches_of(name)
            if branches and not graph.sends_of(name):
                first = min(branches, key=lambda b: (b.path, b.line))
                findings.append(Finding(
                    rule=rule, path=first.path, line=first.line, col=1,
                    message=(f"handler branch for {name}, but {name} is "
                             f"never sent anywhere (dead handler)")))
    return findings


def _check_never_sent(graph: MessageGraph,
                      contracts: Dict[str, Dict[str, MessageContract]],
                      ) -> List[Finding]:
    rule = RULES["PL003"]
    findings: List[Finding] = []
    active = set(_active_protocols(graph, contracts))
    for name in sorted(graph.messages):
        definition = graph.messages[name]
        if definition.protocol not in active:
            continue
        if name not in contracts[definition.protocol]:
            continue  # PL001 reports it
        if graph.sends_of(name):
            continue
        constructs = graph.constructs_of(name)
        if constructs:
            first = min(constructs, key=lambda c: (c.path, c.line))
            findings.append(Finding(
                rule=rule, path=first.path, line=first.line, col=first.col,
                message=(f"{name} is constructed but never sent")))
        else:
            findings.append(Finding(
                rule=rule, path=definition.path, line=definition.line,
                col=1,
                message=(f"{name} is never constructed (dead message "
                         f"type)")))
    return findings


def _check_missing_reply(graph: MessageGraph,
                         contracts: Dict[str, Dict[str, MessageContract]],
                         ) -> List[Finding]:
    rule = RULES["PL004"]
    findings: List[Finding] = []
    for protocol in _active_protocols(graph, contracts):
        for name, contract in sorted(contracts[protocol].items()):
            if not contract.replies or name not in graph.messages:
                continue
            branches = [b for b in graph.branches_of(name)
                        if b.cls in contract.receivers]
            if not branches:
                continue  # PL001 reports the missing branch
            seeds: List[str] = []
            for branch in branches:
                seeds.extend(branch.targets)
            reach = graph.reachable(protocol, name, seeds)
            if not reach.sends.intersection(contract.replies):
                first = min(branches, key=lambda b: (b.path, b.line))
                findings.append(Finding(
                    rule=rule, path=first.path, line=first.line, col=1,
                    message=(f"no handler path for {name} sends any of "
                             f"its declared replies "
                             f"({', '.join(contract.replies)})")))
    return findings


def _check_retry_coverage(graph: MessageGraph,
                          contracts: Dict[str, Dict[str, MessageContract]],
                          ) -> List[Finding]:
    rule = RULES["PL005"]
    findings: List[Finding] = []
    for protocol in _active_protocols(graph, contracts):
        for name, contract in sorted(contracts[protocol].items()):
            if not contract.retried:
                continue
            for cls in graph.sender_classes(name):
                info = graph.classes.get(cls)
                if info is None or info.has_retry_machinery:
                    continue
                sites = [s for s in graph.sends_of(name) if s.cls == cls]
                first = min(sites, key=lambda s: (s.path, s.line))
                findings.append(Finding(
                    rule=rule, path=first.path, line=first.line,
                    col=first.col,
                    message=(f"{name} is declared retried, but {cls} "
                             f"sends it with no timer/RetryPolicy "
                             f"machinery in the class")))
    return findings


def _check_handler_mutation(graph: MessageGraph,
                            contracts: Dict[str, Dict[str, MessageContract]],
                            ) -> List[Finding]:
    rule = RULES["PL006"]
    findings: List[Finding] = []
    for protocol in _active_protocols(graph, contracts):
        for name, contract in sorted(contracts[protocol].items()):
            if not contract.dedup or name not in graph.messages:
                continue
            branches = [b for b in graph.branches_of(name)
                        if b.cls in contract.receivers]
            if not branches:
                continue
            seeds: List[str] = []
            for branch in branches:
                seeds.extend(branch.targets)
            reach = graph.reachable(protocol, name, seeds)
            if reach.mutations and not reach.guards:
                first = min(branches, key=lambda b: (b.path, b.line))
                where = min(reach.mutations)
                findings.append(Finding(
                    rule=rule, path=first.path, line=first.line, col=1,
                    message=(f"handlers for {name} mutate per-txn state "
                             f"(e.g. {where[0]}:{where[1]}) with no "
                             f"duplicate-delivery guard on any path; "
                             f"{name} is contract-marked dedup")))
    return findings


def _check_field_mismatch(graph: MessageGraph) -> List[Finding]:
    rule = RULES["PL007"]
    findings: List[Finding] = []
    for site in graph.constructs:
        if site.has_star:
            continue
        definition = graph.dataclasses[site.msg_type]
        names = [f.name for f in definition.fields]
        unknown = sorted(set(site.kwargs) - set(names))
        if unknown:
            findings.append(Finding(
                rule=rule, path=site.path, line=site.line, col=site.col,
                message=(f"{site.msg_type}(...) passes unknown field(s) "
                         f"{', '.join(unknown)} (defined at "
                         f"{definition.path}:{definition.line})")))
        if site.n_pos > len(names):
            findings.append(Finding(
                rule=rule, path=site.path, line=site.line, col=site.col,
                message=(f"{site.msg_type}(...) passes {site.n_pos} "
                         f"positional arguments, but only "
                         f"{len(names)} fields are defined")))
            continue
        covered = set(names[:site.n_pos]) | set(site.kwargs)
        missing = [f for f in definition.required_fields()
                   if f not in covered]
        if missing:
            findings.append(Finding(
                rule=rule, path=site.path, line=site.line, col=site.col,
                message=(f"{site.msg_type}(...) omits required field(s) "
                         f"{', '.join(missing)} (defined at "
                         f"{definition.path}:{definition.line})")))
    return findings


# ---------------------------------------------------------------------------
# Top-level lint API
# ---------------------------------------------------------------------------

def lint_graph(graph: MessageGraph,
               contracts: Optional[Dict[str, Dict[str, MessageContract]]]
               = None,
               specs: Tuple[FSMSpec, ...] = FSM_SPECS,
               keep_suppressed: bool = False) -> List[Finding]:
    """All protolint findings for an extracted graph."""
    if contracts is None:
        contracts = PROTOCOLS
    findings: List[Finding] = []
    findings.extend(_check_dead_letter(graph, contracts))
    findings.extend(_check_dead_handler(graph, contracts))
    findings.extend(_check_never_sent(graph, contracts))
    findings.extend(_check_missing_reply(graph, contracts))
    findings.extend(_check_retry_coverage(graph, contracts))
    findings.extend(_check_handler_mutation(graph, contracts))
    findings.extend(_check_field_mismatch(graph))
    findings.extend(check_all_fsm(graph, RULES["PL008"], specs))
    if keep_suppressed:
        return findings
    suppressions = {path: parse_suppressions(text, tool="protolint")
                    for path, text in graph.sources.items()}
    return [f for f in findings
            if not is_suppressed(f, suppressions.get(f.path, {}))]


def lint_sources(sources: Dict[str, str],
                 contracts: Optional[Dict[str, Dict[str, MessageContract]]]
                 = None,
                 specs: Tuple[FSMSpec, ...] = FSM_SPECS,
                 keep_suppressed: bool = False) -> List[Finding]:
    return lint_graph(build_graph(sources), contracts, specs,
                      keep_suppressed)


def lint_paths(paths: Optional[Sequence[str]] = None,
               contracts: Optional[Dict[str, Dict[str, MessageContract]]]
               = None,
               specs: Tuple[FSMSpec, ...] = FSM_SPECS,
               plant: Optional[str] = None,
               keep_suppressed: bool = False) -> List[Finding]:
    """Lint files/directories; the main entry point for the CLI."""
    sources = collect_sources(list(paths) if paths else default_paths())
    if plant is not None:
        sources = apply_plant(sources, plant)
    return lint_sources(sources, contracts, specs, keep_suppressed)


# ---------------------------------------------------------------------------
# Planted bugs (self-check fixtures, mirroring ``repro chaos --plant-bug``)
# ---------------------------------------------------------------------------

_DEAD_HANDLER_ANCHOR = (
    "        elif isinstance(msg, ClientHeartbeat):\n"
    "            self.coordinator.on_heartbeat(msg)\n")

_MISSING_REPLY_ANCHOR = (
    "        self.send(msg.src, TapirReadReply(\n"
    "            tid=msg.tid, partition_id=self.partition_id, "
    "values=values))\n")


def _plant_dead_handler(sources: Dict[str, str]) -> Dict[str, str]:
    """Delete the Carousel server's ClientHeartbeat dispatch branch."""
    return _replace_in(sources, "core/server.py",
                       _DEAD_HANDLER_ANCHOR, "")


def _plant_missing_reply(sources: Dict[str, str]) -> Dict[str, str]:
    """Drop the TAPIR replica's read reply."""
    return _replace_in(sources, "tapir/replica.py", _MISSING_REPLY_ANCHOR,
                       "        _ = values  # planted: reply dropped\n")


PLANT_BUGS = {
    "dead-handler": _plant_dead_handler,
    "missing-reply": _plant_missing_reply,
}


def _replace_in(sources: Dict[str, str], suffix: str, anchor: str,
                replacement: str) -> Dict[str, str]:
    for path in sorted(sources):
        if Path(path).as_posix().endswith(suffix):
            if anchor not in sources[path]:
                raise ValueError(
                    f"plant anchor not found in {path}; the source has "
                    f"drifted — update the plant in protolint.py")
            planted = dict(sources)
            planted[path] = sources[path].replace(anchor, replacement, 1)
            return planted
    raise ValueError(f"no scanned file matches {suffix!r} to plant into")


def apply_plant(sources: Dict[str, str], plant: str) -> Dict[str, str]:
    """Return a copy of ``sources`` with the named bug planted."""
    try:
        transform = PLANT_BUGS[plant]
    except KeyError:
        raise ValueError(
            f"unknown plant {plant!r}; choose from "
            f"{', '.join(sorted(PLANT_BUGS))}") from None
    return transform(sources)


# ---------------------------------------------------------------------------
# Message catalog (PROTOCOL.md generated section)
# ---------------------------------------------------------------------------

CATALOG_BEGIN = "<!-- protolint:catalog:begin -->"
CATALOG_END = "<!-- protolint:catalog:end -->"


def render_catalog(graph: MessageGraph) -> str:
    """Deterministic role -> sends/handles inventory, as markdown.

    Derived purely from the extracted graph (send sites and dispatch
    branches), so it cannot drift from the code; CI diffs it against
    PROTOCOL.md's marked section byte-for-byte.
    """
    lines: List[str] = [
        "Generated by `python -m repro protolint --catalog`. Do not edit",
        "by hand; regenerate with `--write-docs` after protocol changes.",
        "",
    ]
    protocols = sorted({d.protocol for d in graph.messages.values()})
    total = sum(1 for d in graph.messages.values()
                if d.protocol in protocols)
    lines.append(f"{total} message types across "
                 f"{len(protocols)} protocol(s).")
    for protocol in protocols:
        names = sorted(n for n, d in graph.messages.items()
                       if d.protocol == protocol)
        roles: set = set()
        for name in names:
            roles.update(graph.sender_classes(name))
            roles.update(graph.handler_classes(name))
        lines.extend(["", f"#### {protocol}", "",
                      "| role | sends | handles |",
                      "| --- | --- | --- |"])
        for role in sorted(roles):
            sends = sorted(n for n in names
                           if role in graph.sender_classes(n))
            handles = sorted(n for n in names
                             if role in graph.handler_classes(n))
            lines.append(f"| {role} "
                         f"| {', '.join(sends) or '—'} "
                         f"| {', '.join(handles) or '—'} |")
    return "\n".join(lines) + "\n"


def extract_doc_catalog(doc_text: str) -> Optional[str]:
    """The catalog section between the markers in a docs file."""
    try:
        head, rest = doc_text.split(CATALOG_BEGIN + "\n", 1)
        body, _tail = rest.split(CATALOG_END, 1)
    except ValueError:
        return None
    return body


def embed_catalog(doc_text: str, catalog: str) -> str:
    """Replace the marked section in a docs file with ``catalog``."""
    current = extract_doc_catalog(doc_text)
    if current is None:
        raise ValueError(
            f"docs file has no {CATALOG_BEGIN} ... {CATALOG_END} section")
    return doc_text.replace(CATALOG_BEGIN + "\n" + current + CATALOG_END,
                            CATALOG_BEGIN + "\n" + catalog + CATALOG_END, 1)
