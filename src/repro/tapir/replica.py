"""A TAPIR storage replica.

Replicas are inconsistently replicated: each answers reads and validates
prepares from purely local state; agreement is the client's job (IR).  OCC
validation checks the transaction's read versions against the store and
its read/write keys against other prepared-but-unresolved transactions.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

from repro.sim.message import Message
from repro.sim.node import Node
from repro.store.kvstore import VersionedKVStore
from repro.tapir.config import TapirConfig
from repro.tapir.messages import (
    PREPARE_ABORT,
    PREPARE_ABSTAIN,
    PREPARE_OK,
    TapirCommit,
    TapirCommitAck,
    TapirFinalize,
    TapirFinalizeAck,
    TapirPrepare,
    TapirPrepareReply,
    TapirRead,
    TapirReadReply,
)
from repro.trace.tracer import SPAN_RECOVERY
from repro.txn import TID
from repro.wal.log import WriteAheadLog
from repro.wal.records import (
    TapirFinalizeWal,
    TapirPrepareWal,
    TapirResolveWal,
)


class _PreparedTxn:
    """A transaction this replica has prepared but not yet resolved."""

    __slots__ = ("read_keys", "write_keys", "read_versions")

    def __init__(self, read_versions: Tuple[Tuple[str, int], ...],
                 write_keys: Tuple[str, ...]):
        self.read_versions = dict(read_versions)
        self.read_keys: FrozenSet[str] = frozenset(self.read_versions)
        self.write_keys: FrozenSet[str] = frozenset(write_keys)


class TapirReplica(Node):
    """One replica of one TAPIR partition."""

    #: Extra CPU per prepared-list entry scanned during OCC validation, in
    #: ms.  This is what makes "excessive queuing of pending transactions"
    #: (§6.4.1) self-reinforcing: entries held longer (slow paths, load)
    #: make validation slower, which queues more work.
    PENDING_SCAN_COST_MS = 0.001

    def __init__(self, node_id: str, dc: str, kernel, network,
                 partition_id: str, group, config: TapirConfig,
                 service_time_ms: float = 0.0):
        super().__init__(node_id, dc, kernel, network,
                         service_time_ms=service_time_ms)
        self.partition_id = partition_id
        self.group = list(group)
        self.config = config
        self.store = VersionedKVStore()
        self.prepared: Dict[TID, _PreparedTxn] = {}
        # Key indexes so the simulator's validation cost is O(txn keys)
        # even when the prepared list is long; the *modeled* CPU cost of a
        # scan stays proportional to len(prepared) via service_time_for.
        self._prepared_readers: Dict[str, set] = {}
        self._prepared_writers: Dict[str, set] = {}
        #: Outcomes already applied, to deduplicate retransmitted commits.
        self.resolved: Dict[TID, bool] = {}
        self.prepares_ok = 0
        self.prepares_rejected = 0
        self.wal = WriteAheadLog(node_id)
        self.wal.attach_host(self)

    def _index_prepared(self, tid: TID, txn: _PreparedTxn) -> None:
        self.prepared[tid] = txn
        for key in txn.read_keys:
            self._prepared_readers.setdefault(key, set()).add(tid)
        for key in txn.write_keys:
            self._prepared_writers.setdefault(key, set()).add(tid)

    def _drop_prepared(self, tid: TID) -> None:
        txn = self.prepared.pop(tid, None)
        if txn is None:
            return
        for key in txn.read_keys:
            readers = self._prepared_readers.get(key)
            if readers is not None:
                readers.discard(tid)
                if not readers:
                    del self._prepared_readers[key]
        for key in txn.write_keys:
            writers = self._prepared_writers.get(key)
            if writers is not None:
                writers.discard(tid)
                if not writers:
                    del self._prepared_writers[key]

    def service_time_for(self, msg) -> float:
        """CPU cost: base plus the modeled prepared-list scan (§6.4.1)."""
        if self.service_time_ms > 0 and isinstance(msg, TapirPrepare):
            return (self.service_time_ms
                    + len(self.prepared) * self.PENDING_SCAN_COST_MS)
        return self.service_time_ms

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def handle_message(self, msg: Message) -> None:
        if isinstance(msg, TapirRead):
            self._on_read(msg)
        elif isinstance(msg, TapirPrepare):
            self._on_prepare(msg)
        elif isinstance(msg, TapirFinalize):
            self._on_finalize(msg)
        elif isinstance(msg, TapirCommit):
            self._on_commit(msg)
        else:  # pragma: no cover - routing bug
            raise TypeError(f"unexpected TAPIR message {msg!r}")

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _on_read(self, msg: TapirRead) -> None:
        values = {}
        for key in msg.keys:
            record = self.store.read(key)
            values[key] = (record.value, record.version)
        self.send(msg.src, TapirReadReply(
            tid=msg.tid, partition_id=self.partition_id, values=values))

    def _validate(self, tid: TID,
                  read_versions: Dict[str, int],
                  write_keys: FrozenSet[str]) -> str:
        # Stale reads abort outright.
        for key, version in read_versions.items():
            if self.store.version(key) != version:
                return PREPARE_ABORT
        # Conflicts with other prepared transactions abstain: the other
        # transaction may yet abort, so this one is not necessarily doomed.
        # Order-safe: every early exit in the loop returns the same
        # verdict, so frozenset iteration order cannot leak out.
        # detlint: ignore[set-iter]
        for key in write_keys:
            for other in self._prepared_writers.get(key, ()):
                if other != tid:
                    return PREPARE_ABSTAIN
            for other in self._prepared_readers.get(key, ()):
                if other != tid:
                    return PREPARE_ABSTAIN
        for key in read_versions:
            for other in self._prepared_writers.get(key, ()):
                if other != tid:
                    return PREPARE_ABSTAIN
        return PREPARE_OK

    def _on_prepare(self, msg: TapirPrepare) -> None:
        tid = msg.tid
        if tid in self.resolved:
            result = PREPARE_OK if self.resolved[tid] else PREPARE_ABORT
        elif tid in self.prepared:
            result = PREPARE_OK
        else:
            result = self._validate(tid, dict(msg.read_versions),
                                    frozenset(msg.write_keys))
            if result == PREPARE_OK:
                self._index_prepared(tid, _PreparedTxn(
                    msg.read_versions, msg.write_keys))
                # Journal the OK before it externalizes in our reply: a
                # restarted replica must still count against later
                # conflicting prepares (§5.2.1 view-change analogue).
                self.wal.append(TapirPrepareWal(
                    tid=tid, read_versions=msg.read_versions,
                    write_keys=msg.write_keys))
                self.prepares_ok += 1
            else:
                self.prepares_rejected += 1
        tracer = self.tracer
        if tracer.enabled:
            tracer.point(tid, "tapir-vote", self.node_id, self.dc,
                         detail=f"{self.partition_id} {result}")
        self.send(msg.src, TapirPrepareReply(
            tid=tid, partition_id=self.partition_id,
            replica_id=self.node_id, result=result))

    def _on_finalize(self, msg: TapirFinalize) -> None:
        """IR slow path: adopt the client's consensus result."""
        tid = msg.tid
        if tid not in self.resolved:
            self.wal.append(TapirFinalizeWal(tid=tid, result=msg.result))
            if msg.result == PREPARE_OK and tid not in self.prepared:
                # Adopt the group's decision even though we abstained.
                self._index_prepared(tid, _PreparedTxn((), ()))
            if msg.result != PREPARE_OK:
                self._drop_prepared(tid)
        self.send(msg.src, TapirFinalizeAck(
            tid=tid, partition_id=self.partition_id,
            replica_id=self.node_id))

    def _on_commit(self, msg: TapirCommit) -> None:
        tid = msg.tid
        if tid not in self.resolved:
            self.resolved[tid] = msg.commit
            rows = []
            if msg.commit:
                for key, value in msg.writes.items():
                    version = msg.write_versions.get(
                        key, self.store.version(key) + 1)
                    self.store.write_if_newer(key, value, version)
                    rows.append((key, value, version))
            # Journal the applied outcome (with the resolved versions)
            # before acking — the ack tells the client this replica is
            # durable for the transaction.
            self.wal.append(TapirResolveWal(
                tid=tid, commit=msg.commit, writes=tuple(sorted(rows))))
            self._drop_prepared(tid)
        self.send(msg.src, TapirCommitAck(
            tid=tid, partition_id=self.partition_id,
            replica_id=self.node_id))

    # ------------------------------------------------------------------
    # Crash-restart recovery
    # ------------------------------------------------------------------
    def on_restart(self) -> None:
        """Power-cycle recovery: rebuild store, prepared set and resolved
        outcomes by replaying the WAL in append order.

        Prepare / finalize / resolve records replay through the same
        adopt-and-drop rules as the live handlers, so the rebuilt state
        is exactly what a replica that had processed the journaled
        prefix would hold in RAM.
        """
        records = self.wal.replay()
        self.store = VersionedKVStore()
        self.prepared = {}
        self._prepared_readers = {}
        self._prepared_writers = {}
        self.resolved = {}
        for record in records:
            if isinstance(record, TapirPrepareWal):
                if record.tid not in self.resolved \
                        and record.tid not in self.prepared:
                    self._index_prepared(record.tid, _PreparedTxn(
                        record.read_versions, record.write_keys))
            elif isinstance(record, TapirFinalizeWal):
                if record.tid in self.resolved:
                    continue
                if record.result == PREPARE_OK \
                        and record.tid not in self.prepared:
                    self._index_prepared(record.tid, _PreparedTxn((), ()))
                if record.result != PREPARE_OK:
                    self._drop_prepared(record.tid)
            elif isinstance(record, TapirResolveWal):
                self.resolved[record.tid] = record.commit
                if record.commit:
                    for key, value, version in record.writes:
                        self.store.write_if_newer(key, value, version)
                self._drop_prepared(record.tid)
        tracer = self.tracer
        if tracer.enabled:
            tracer.point(None, SPAN_RECOVERY, self.node_id, self.dc,
                         detail=(f"wal-restart records={len(records)} "
                                 f"prepared={len(self.prepared)} "
                                 f"resolved={len(self.resolved)}"))
