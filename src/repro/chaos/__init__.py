"""repro.chaos — deterministic nemesis harness.

Jepsen-style robustness testing inside the simulator: seeded random
timelines of crashes, flapping, partitions, and adversarial link faults
(:mod:`repro.chaos.nemesis`) run against a seeded workload on any of the
four systems, checked by safety and liveness oracles
(:mod:`repro.chaos.oracles`), with failing schedules shrunk to minimal
reproducing subsequences (:mod:`repro.chaos.minimize`).  Everything is
derived from the run seed, so every failure is a replayable
counterexample.  CLI: ``python -m repro chaos``.
"""

from repro.chaos.bugs import (
    PLANTABLE_BUGS,
    planted_lost_commit_bug,
    planted_writeback_bug,
)
from repro.chaos.minimize import minimize_schedule
from repro.chaos.nemesis import (
    KIND_CRASH,
    KIND_FLAP,
    KIND_LINK,
    KIND_PARTITION,
    KIND_RESTART,
    NemesisEvent,
    apply_schedule,
    generate_schedule,
    schedule_horizon,
)
from repro.chaos.oracles import OracleViolation, check_durability
from repro.chaos.runner import (
    SYSTEMS,
    ChaosOptions,
    ChaosRunResult,
    ClusterAdapter,
    canonical_system,
    run_chaos,
)

__all__ = [
    "KIND_CRASH",
    "KIND_FLAP",
    "KIND_LINK",
    "KIND_PARTITION",
    "KIND_RESTART",
    "NemesisEvent",
    "OracleViolation",
    "PLANTABLE_BUGS",
    "SYSTEMS",
    "ChaosOptions",
    "ChaosRunResult",
    "ClusterAdapter",
    "apply_schedule",
    "canonical_system",
    "check_durability",
    "generate_schedule",
    "minimize_schedule",
    "planted_lost_commit_bug",
    "planted_writeback_bug",
    "run_chaos",
    "schedule_horizon",
]
