"""Unit tests for coordinator decision logic, driven through a tiny
single-DC cluster so timers and Raft behave normally but latencies are
negligible."""

import pytest

from repro.bench.cluster import CarouselCluster, DeploymentSpec
from repro.core.config import BASIC, FAST, CarouselConfig
from repro.core.coordinator import CoordTxnState, supermajority
from repro.core.messages import FastVote, PartitionSets
from repro.core.occ import ABORT, PREPARED
from repro.sim.topology import uniform_topology
from repro.txn import TID


def tiny_cluster(mode=FAST, **kwargs):
    spec = DeploymentSpec(topology=uniform_topology(3, 2.0),
                          n_partitions=3, seed=2, jitter_fraction=0.0)
    cluster = CarouselCluster(spec, CarouselConfig(mode=mode, **kwargs))
    cluster.run(200)
    return cluster


def coordinator_of(cluster, pid="p0"):
    return cluster.leader_of(pid).coordinator


def make_state(coordinator, pid="p1", tid=None):
    tid = tid or TID("test-client", 1)
    state = CoordTxnState(tid=tid)
    # A real client node, so decision replies have somewhere to go.
    state.client_id = coordinator.server.network.nodes and \
        next(n for n in coordinator.server.network.nodes
             if n.startswith("client-"))
    state.group_id = "p0"
    state.participants = {pid: PartitionSets(read_keys=("k",),
                                             write_keys=("k",))}
    coordinator.states[tid] = state
    return state


def vote(tid, pid, replica, decision=PREPARED, versions=(("k", 0),),
         term=1, leader=False):
    return FastVote(tid=tid, partition_id=pid, replica_id=replica,
                    is_leader=leader, decision=decision,
                    read_versions=versions, term=term)


class TestFastPathEvaluation:
    def test_no_decision_without_leader_vote(self):
        cluster = tiny_cluster()
        coord = coordinator_of(cluster)
        state = make_state(coord)
        pid = "p1"
        replicas = cluster.directory.lookup(pid).replicas
        followers = [r for r in replicas
                     if r != cluster.directory.lookup(pid).leader]
        for replica in followers:
            coord.on_fast_vote(vote(state.tid, pid, replica))
        assert pid not in state.decisions  # condition 2 (§4.2)

    def test_unanimous_supermajority_with_leader_decides(self):
        cluster = tiny_cluster()
        coord = coordinator_of(cluster)
        state = make_state(coord)
        pid = "p1"
        info = cluster.directory.lookup(pid)
        for replica in info.replicas:
            coord.on_fast_vote(vote(state.tid, pid, replica,
                                    leader=replica == info.leader))
        assert state.decisions[pid][0] == PREPARED
        assert pid in state.fast_path_partitions

    def test_version_mismatch_blocks_fast_path(self):
        cluster = tiny_cluster()
        coord = coordinator_of(cluster)
        state = make_state(coord)
        pid = "p1"
        info = cluster.directory.lookup(pid)
        for i, replica in enumerate(info.replicas):
            versions = (("k", 0),) if i < 2 else (("k", 9),)  # one stale
            coord.on_fast_vote(vote(state.tid, pid, replica,
                                    versions=versions,
                                    leader=replica == info.leader))
        assert pid not in state.decisions

    def test_term_mismatch_blocks_fast_path(self):
        cluster = tiny_cluster()
        coord = coordinator_of(cluster)
        state = make_state(coord)
        pid = "p1"
        info = cluster.directory.lookup(pid)
        for i, replica in enumerate(info.replicas):
            coord.on_fast_vote(vote(state.tid, pid, replica,
                                    term=1 if i < 2 else 0,
                                    leader=replica == info.leader))
        assert pid not in state.decisions

    def test_mixed_decisions_block_fast_path(self):
        cluster = tiny_cluster()
        coord = coordinator_of(cluster)
        state = make_state(coord)
        pid = "p1"
        info = cluster.directory.lookup(pid)
        for i, replica in enumerate(info.replicas):
            decision = PREPARED if i < 2 else ABORT
            coord.on_fast_vote(vote(state.tid, pid, replica,
                                    decision=decision,
                                    leader=replica == info.leader))
        assert pid not in state.decisions

    def test_unanimous_abort_fast_path(self):
        cluster = tiny_cluster()
        coord = coordinator_of(cluster)
        state = make_state(coord)
        pid = "p1"
        info = cluster.directory.lookup(pid)
        for replica in info.replicas:
            coord.on_fast_vote(vote(state.tid, pid, replica,
                                    decision=ABORT,
                                    leader=replica == info.leader))
        assert state.decisions[pid][0] == ABORT

    def test_duplicate_votes_do_not_double_count(self):
        cluster = tiny_cluster()
        coord = coordinator_of(cluster)
        state = make_state(coord)
        pid = "p1"
        info = cluster.directory.lookup(pid)
        leader = info.leader
        coord.on_fast_vote(vote(state.tid, pid, leader, leader=True))
        coord.on_fast_vote(vote(state.tid, pid, leader, leader=True))
        coord.on_fast_vote(vote(state.tid, pid, leader, leader=True))
        assert pid not in state.decisions  # one replica, not three


class TestStaleReadDetection:
    def test_matching_versions_not_stale(self):
        cluster = tiny_cluster()
        coord = coordinator_of(cluster)
        state = make_state(coord)
        state.decisions["p1"] = (PREPARED, (("k", 3),))
        state.client_read_versions = {"k": 3}
        assert not coord._stale_read(state)

    def test_older_client_version_is_stale(self):
        cluster = tiny_cluster()
        coord = coordinator_of(cluster)
        state = make_state(coord)
        state.decisions["p1"] = (PREPARED, (("k", 3),))
        state.client_read_versions = {"k": 2}
        assert coord._stale_read(state)

    def test_unread_keys_ignored(self):
        cluster = tiny_cluster()
        coord = coordinator_of(cluster)
        state = make_state(coord)
        state.decisions["p1"] = (PREPARED, (("k", 3),))
        state.client_read_versions = {"other": 1}
        assert not coord._stale_read(state)

    def test_no_client_versions_never_stale(self):
        cluster = tiny_cluster()
        coord = coordinator_of(cluster)
        state = make_state(coord)
        state.decisions["p1"] = (PREPARED, (("k", 3),))
        state.client_read_versions = {}
        assert not coord._stale_read(state)


class TestSupermajoritySizes:
    @pytest.mark.parametrize("group, expected", [(1, 1), (3, 3), (5, 4),
                                                 (7, 6)])
    def test_sizes(self, group, expected):
        assert supermajority(group) == expected
