"""Zipfian key popularity, YCSB-style.

Implements the Gray et al. "quickly generating billion-record synthetic
databases" algorithm used by YCSB's ``ZipfianGenerator``: draw a rank with
probability proportional to ``1 / rank^theta``.  The paper configures
``theta = 0.75`` over 10 million keys (§6.2).

The zeta constant is computed once per ``(n, theta)`` and cached, since the
computation is O(n).

Two sampling methods are available (``ZipfianGenerator(method=...)``):

``"approx"`` (default)
    YCSB's closed-form approximation: one uniform draw plus a float
    ``**`` per sample.  Matches YCSB/TAPIR/Carousel benchmark behaviour
    and the historical draw stream of this repository.
``"alias"``
    Walker/Vose alias table over the *exact* Zipf pmf: O(n) setup
    (amortized against the zeta pass the approximation needs anyway,
    backed by compact ``array`` storage), then two uniform draws and two
    array reads per sample — no ``**`` on the hot path, so it samples
    the exact distribution at comparable per-draw cost to the biased
    closed form (``python -m repro perf`` prices both).  Draw streams
    differ from ``"approx"``, so the default stays ``"approx"``.
"""

from __future__ import annotations

import random
from array import array
from typing import Dict, Optional, Tuple


_ZETA_CACHE: Dict[Tuple[int, float], float] = {}


def zeta(n: int, theta: float) -> float:
    """The generalized harmonic number ``sum_{i=1..n} 1/i^theta``."""
    key = (n, theta)
    if key not in _ZETA_CACHE:
        _ZETA_CACHE[key] = sum(1.0 / (i ** theta) for i in range(1, n + 1))
    return _ZETA_CACHE[key]


class AliasTable:
    """Walker/Vose alias method: O(1) draws from any finite discrete
    distribution after O(n) setup.

    Stores the probability and alias columns in ``array`` objects (one
    float and one int per outcome) rather than Python lists, so a
    10M-outcome table costs ~120 MB less than the list equivalent.
    """

    __slots__ = ("n", "_prob", "_alias")

    def __init__(self, weights) -> None:
        weights = list(weights)
        n = len(weights)
        if n < 1:
            raise ValueError("need at least one weight")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        self.n = n
        # Scale to mean 1 so each bucket splits into at most two outcomes.
        scaled = array("d", (w * n / total for w in weights))
        self._prob = array("d", bytes(8 * n))
        self._alias = array("l", bytes(self._alias_itemsize() * n))
        small = [i for i, w in enumerate(scaled) if w < 1.0]
        large = [i for i, w in enumerate(scaled) if w >= 1.0]
        prob, alias = self._prob, self._alias
        while small and large:
            s = small.pop()
            g = large.pop()
            prob[s] = scaled[s]
            alias[s] = g
            scaled[g] = (scaled[g] + scaled[s]) - 1.0
            (small if scaled[g] < 1.0 else large).append(g)
        # Leftovers are 1.0 up to rounding.
        for i in large:
            prob[i] = 1.0
        for i in small:
            prob[i] = 1.0

    @staticmethod
    def _alias_itemsize() -> int:
        return array("l").itemsize

    def draw(self, rng: random.Random) -> int:
        """One outcome index, using two uniform draws from ``rng``."""
        i = int(rng.random() * self.n)
        if rng.random() < self._prob[i]:
            return i
        return self._alias[i]


class ZipfianGenerator:
    """Draws integers in ``[0, n)`` with Zipfian popularity.

    Rank 0 is the most popular item.  Deterministic given the ``rng``.
    ``method`` selects the sampler — see the module docstring; the alias
    table is exact and faster per draw but consumes a different RNG
    stream, so it is opt-in.
    """

    METHODS = ("approx", "alias")

    def __init__(self, n: int, theta: float = 0.75,
                 rng: random.Random = None, method: str = "approx"):
        if n < 1:
            raise ValueError("n must be positive")
        if not 0.0 < theta < 1.0:
            raise ValueError("theta must be in (0, 1)")
        if method not in self.METHODS:
            raise ValueError(f"unknown method {method!r}; expected one "
                             f"of {self.METHODS}")
        self.n = n
        self.theta = theta
        self.method = method
        self.rng = rng or random.Random(0)
        self._alias: Optional[AliasTable] = None
        if method == "alias":
            # Exact pmf p(i) ∝ 1/(i+1)^theta; the same O(n) pass the
            # zeta computation performs (and seeds its cache, so a later
            # approx generator over the same (n, theta) sets up free).
            weights = [1.0 / ((i + 1) ** theta) for i in range(n)]
            _ZETA_CACHE.setdefault((n, theta), sum(weights))
            self._alias = AliasTable(weights)
        self._zeta_n = zeta(n, theta)
        self._zeta_2 = zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        denom = 1.0 - self._zeta_2 / self._zeta_n
        # With n <= 2 every draw resolves in the first two branches of
        # next(), so eta is never consulted — and its denominator is 0.
        self._eta = 0.0 if denom == 0.0 else (
            (1.0 - (2.0 / n) ** (1.0 - theta)) / denom)

    def next(self) -> int:
        """Draw one Zipfian rank in [0, n)."""
        table = self._alias
        if table is not None:
            # draw() inlined: this is the workload hot path.
            rand = self.rng.random
            i = int(rand() * table.n)
            if rand() < table._prob[i]:
                return i
            return table._alias[i]
        u = self.rng.random()
        uz = u * self._zeta_n
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.n * ((self._eta * u - self._eta + 1.0)
                             ** self._alpha))

    def next_key(self, prefix: str = "key") -> str:
        """A key string for the drawn rank."""
        return f"{prefix}:{self.next()}"

    def distinct_keys(self, count: int, prefix: str = "key") -> list:
        """``count`` distinct keys (rejection-sampled)."""
        if count > self.n:
            raise ValueError("cannot draw more distinct keys than exist")
        seen = set()
        keys = []
        while len(keys) < count:
            key = self.next_key(prefix)
            if key not in seen:
                seen.add(key)
                keys.append(key)
        return keys
