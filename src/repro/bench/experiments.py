"""Experiment definitions: one entry per paper table/figure.

Both the pytest benchmarks (``benchmarks/``) and the command-line runner
(``python -m repro``) drive experiments through this module, so the
parameters live in exactly one place.  See DESIGN.md's per-experiment
index for the mapping to the paper.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bench.runner import SYSTEMS, SYSTEM_LABELS, ExperimentResult, \
    run_workload
from repro.sim.topology import ec2_five_regions, uniform_topology

QUICK = "quick"
FULL = "full"

#: Calibrated per-message CPU costs (ms) for the local-cluster throughput
#: experiments.  The paper's Go implementations have different per-request
#: costs; these reproduce the measured single-system peaks (§6.4.1):
#: TAPIR ~5000 tps, Carousel Fast leveling near 8000, Basic highest.
SERVICE_TIME_MS = {
    "tapir": 0.085,
    "carousel-basic": 0.016,
    "carousel-fast": 0.016,
}

#: TAPIR's fast-path timeout on the 5 ms local cluster (its EC2 default of
#: 250 ms would dwarf every other latency there).
TAPIR_LOCAL_TIMEOUT_MS = 50.0


def _check_scale(scale: str) -> None:
    if scale not in (QUICK, FULL):
        raise ValueError(f"unknown scale {scale!r}")


def latency_run_params(scale: str = QUICK) -> dict:
    """Run windows for the EC2 latency experiments (Figures 4 and 8).

    ``full`` is the paper's method: 90 s runs with the first and last
    30 s discarded, 10 M keys.  ``quick`` keeps the same shapes with
    shorter windows and a 1 M keyspace.
    """
    _check_scale(scale)
    if scale == FULL:
        return dict(duration_ms=90_000.0, warmup_ms=30_000.0,
                    cooldown_ms=30_000.0, n_keys=10_000_000)
    return dict(duration_ms=12_000.0, warmup_ms=3_000.0,
                cooldown_ms=3_000.0, n_keys=1_000_000)


def sweep_targets(scale: str = QUICK) -> List[float]:
    _check_scale(scale)
    if scale == FULL:
        return [1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000,
                10000]
    return [1000, 3000, 5000, 6500, 8000, 10000]


def sweep_run_params(scale: str = QUICK) -> dict:
    _check_scale(scale)
    if scale == FULL:
        return dict(duration_ms=10_000.0, warmup_ms=3_000.0,
                    cooldown_ms=1_000.0, n_keys=10_000_000)
    return dict(duration_ms=2_000.0, warmup_ms=600.0, cooldown_ms=200.0,
                n_keys=1_000_000)


def fig4_experiment(scale: str = QUICK) -> Dict[str, ExperimentResult]:
    """Figure 4: Retwis latency CDFs, EC2 topology, 200 tps."""
    params = latency_run_params(scale)
    return {
        system: run_workload(
            system, "retwis", target_tps=200.0,
            topology=ec2_five_regions(), seed=4, clients_per_dc=8,
            **params)
        for system in SYSTEMS
    }


def fig8_experiment(scale: str = QUICK) -> Dict[str, ExperimentResult]:
    """Figure 8: YCSB+T latency CDFs, EC2 topology, 200 tps."""
    params = latency_run_params(scale)
    return {
        system: run_workload(
            system, "ycsbt", target_tps=200.0,
            topology=ec2_five_regions(), seed=8, clients_per_dc=8,
            **params)
        for system in SYSTEMS
    }


def throughput_sweep_experiment(scale: str = QUICK
                                ) -> Dict[str, List[ExperimentResult]]:
    """Figures 5 and 6: Retwis on the uniform 5 ms cluster, closed-loop
    clients, sweeping the target throughput."""
    topo = uniform_topology(5, 5.0)
    params = sweep_run_params(scale)
    sweep: Dict[str, List[ExperimentResult]] = {}
    for system in SYSTEMS:
        sweep[system] = [
            run_workload(
                system, "retwis", target_tps=target, topology=topo,
                seed=6, clients_per_dc=40, closed_loop=True,
                server_service_time_ms=SERVICE_TIME_MS[system],
                tapir_fast_path_timeout_ms=TAPIR_LOCAL_TIMEOUT_MS,
                **params)
            for target in sweep_targets(scale)
        ]
    return sweep


def bandwidth_experiment(scale: str = QUICK
                         ) -> Dict[str, ExperimentResult]:
    """Figure 7: bandwidth at a 5000 tps target, uniform 5 ms cluster."""
    topo = uniform_topology(5, 5.0)
    params = sweep_run_params(scale)
    return {
        system: run_workload(
            system, "retwis", target_tps=5000.0, topology=topo,
            seed=7, clients_per_dc=40, closed_loop=True,
            server_service_time_ms=SERVICE_TIME_MS[system],
            tapir_fast_path_timeout_ms=TAPIR_LOCAL_TIMEOUT_MS,
            account_bandwidth=True, **params)
        for system in SYSTEMS
    }


def bandwidth_roles(result: ExperimentResult) -> Dict[str, float]:
    """Average per-node send/receive Mbps by role, for Figure 7."""
    cluster = result.cluster
    network = cluster.network
    clients = [c.node_id for c in cluster.clients]
    if hasattr(cluster, "servers"):
        leader_ids = {cluster.directory.lookup(pid).leader
                      for pid in cluster.partition_ids}
        leaders = [s for s in cluster.servers if s in leader_ids]
        followers = [s for s in cluster.servers if s not in leader_ids]
    else:
        # TAPIR is leaderless; the paper reports its replicas under the
        # "Leader/TAPIR server" bars.
        leaders = list(cluster.replicas)
        followers = []

    def avg(nodes):
        if not nodes:
            return (0.0, 0.0)
        sends, recvs = zip(*(network.bandwidth_mbps(n) for n in nodes))
        return (sum(sends) / len(nodes), sum(recvs) / len(nodes))

    client_send, client_recv = avg(clients)
    leader_send, leader_recv = avg(leaders)
    follower_send, follower_recv = avg(followers)
    return {
        "client_send": client_send, "client_recv": client_recv,
        "leader_send": leader_send, "leader_recv": leader_recv,
        "follower_send": follower_send, "follower_recv": follower_recv,
    }


def latency_recorders(results: Dict[str, ExperimentResult]):
    return {SYSTEM_LABELS[s]: r.stats.latency for s, r in results.items()}


def sweep_series(sweep: Dict[str, List[ExperimentResult]]):
    return {
        SYSTEM_LABELS[system]: [
            (r.target_tps, r.stats.committed_tps, r.stats.abort_rate)
            for r in points]
        for system, points in sweep.items()
    }
