"""Unit tests for the virtual-time tracer data model and hooks."""

from repro.sim.kernel import Kernel
from repro.trace.tracer import (
    NULL_TRACER,
    NullTracer,
    SPAN_READ,
    TraceCtx,
    Tracer,
)


class FakeNode:
    """Endpoint stub: the tracer only reads ``node_id`` and ``dc``."""

    def __init__(self, node_id, dc):
        self.node_id = node_id
        self.dc = dc


class FakeMsg:
    """Message stub: the tracer only reads ``type_name`` and size."""

    type_name = "FakeMsg"

    def size_bytes(self):
        return 100


WEST = FakeNode("a", "us-west")
EAST = FakeNode("b", "us-east")
WEST2 = FakeNode("c", "us-west")


def make_tracer():
    return Tracer(Kernel(seed=1))


class TestNullTracer:
    def test_disabled_and_noop(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.txn_begin("t") is None
        assert NULL_TRACER.span_begin("t", SPAN_READ) is None
        assert NULL_TRACER.on_send(FakeMsg(), WEST, EAST, 1.0) is None
        NULL_TRACER.span_end(None)
        NULL_TRACER.absorb(None)
        NULL_TRACER.txn_end("t", True)

    def test_kernel_defaults_to_shared_null_tracer(self):
        assert Kernel().tracer is NULL_TRACER


class TestContextDerivation:
    def test_txn_begin_roots_zero_hop_context(self):
        tracer = make_tracer()
        tracer.txn_begin("t1", system="test")
        assert tracer.current.tid == "t1"
        assert tracer.current.wan_hops == 0
        assert tracer.current.last_msg is None

    def test_cross_dc_send_increments_hops(self):
        tracer = make_tracer()
        tracer.txn_begin("t1")
        child = tracer.on_send(FakeMsg(), WEST, EAST, 35.0)
        assert child.wan_hops == 1
        assert child.last_msg.cross_dc is True

    def test_local_send_keeps_hop_count(self):
        tracer = make_tracer()
        tracer.txn_begin("t1")
        child = tracer.on_send(FakeMsg(), WEST, WEST2, 0.2)
        assert child.wan_hops == 0
        assert child.last_msg.cross_dc is False

    def test_parent_chain_links_messages(self):
        tracer = make_tracer()
        tracer.txn_begin("t1")
        a = tracer.on_send(FakeMsg(), WEST, EAST, 35.0)
        tracer.current = a
        b = tracer.on_send(FakeMsg(), EAST, WEST, 35.0)
        assert b.wan_hops == 2
        assert b.last_msg.parent is a.last_msg
        assert b.last_msg.parent.parent is None

    def test_send_without_context_is_orphaned(self):
        tracer = make_tracer()
        ctx = tracer.on_send(FakeMsg(), WEST, EAST, 35.0)
        assert ctx.tid is None
        assert len(tracer.orphan_messages) == 1
        assert tracer.transactions() == []

    def test_absorb_deepens_but_never_shallows(self):
        tracer = make_tracer()
        tracer.txn_begin("t1")
        deep = TraceCtx("t1", 4, None)
        tracer.absorb(deep)
        assert tracer.current is deep
        tracer.absorb(TraceCtx("t1", 2, None))
        assert tracer.current is deep
        tracer.absorb(None)
        assert tracer.current is deep


class TestSpansAndTxnTrace:
    def test_span_lifecycle(self):
        tracer = make_tracer()
        tracer.txn_begin("t1")
        span = tracer.span_begin("t1", SPAN_READ, node="a", dc="us-west")
        assert span.end_ms is None and span.duration_ms is None
        tracer.kernel.schedule(10.0, lambda: None)
        tracer.kernel.run()
        tracer.span_end(span, detail="done")
        assert span.end_ms == 10.0
        assert span.duration_ms == 10.0
        assert span.detail == "done"

    def test_span_end_is_idempotent_and_none_safe(self):
        tracer = make_tracer()
        tracer.txn_begin("t1")
        span = tracer.span_begin("t1", SPAN_READ)
        tracer.span_end(span)
        first_end = span.end_ms
        tracer.kernel.schedule(5.0, lambda: None)
        tracer.kernel.run()
        tracer.span_end(span)
        assert span.end_ms == first_end
        tracer.span_end(None)  # must not raise

    def test_point_has_zero_duration(self):
        tracer = make_tracer()
        tracer.txn_begin("t1")
        point = tracer.point("t1", "vote", node="a")
        assert point.start_ms == point.end_ms

    def test_span_for_unknown_txn_is_orphaned(self):
        tracer = make_tracer()
        tracer.span_begin("nope", SPAN_READ)
        assert len(tracer.orphan_spans) == 1

    def test_txn_end_captures_critical_path(self):
        tracer = make_tracer()
        tracer.txn_begin("t1")
        a = tracer.on_send(FakeMsg(), WEST, EAST, 35.0)
        tracer.current = a
        b = tracer.on_send(FakeMsg(), EAST, WEST, 35.0)
        tracer.current = b
        tracer.txn_end("t1", committed=True)
        txn = tracer.get("t1")
        assert txn.committed is True
        assert txn.wan_hops == 2
        assert txn.sequential_wanrt() == 1.0
        path = txn.critical_path()
        assert [m.msg_id for m in path] == [a.last_msg.msg_id,
                                            b.last_msg.msg_id]

    def test_counter_matches_path_walk(self):
        tracer = make_tracer()
        tracer.txn_begin("t1")
        for src, dst in [(WEST, EAST), (EAST, WEST), (WEST, WEST2)]:
            tracer.current = tracer.on_send(FakeMsg(), src, dst, 1.0)
        tracer.txn_end("t1", committed=True)
        txn = tracer.get("t1")
        walked = sum(1 for m in txn.critical_path() if m.cross_dc)
        assert txn.wan_hops == walked == 2


class TestKernelIntegration:
    def test_context_propagates_through_scheduled_events(self):
        kernel = Kernel(seed=1)
        tracer = Tracer(kernel)
        seen = []

        def handler():
            seen.append(tracer.current)

        tracer.txn_begin("t1")
        root = tracer.current
        kernel.schedule(1.0, handler)
        tracer.current = None  # context switch away before the event fires
        kernel.run()
        assert seen == [root]

    def test_detach_restores_null_tracer(self):
        kernel = Kernel(seed=1)
        tracer = Tracer(kernel)
        assert kernel.tracer is tracer
        tracer.detach()
        assert kernel.tracer is NULL_TRACER

    def test_tracer_consumes_no_randomness(self):
        untraced = Kernel(seed=9)
        baseline = [untraced.random.random() for __ in range(3)]
        traced = Kernel(seed=9)
        tracer = Tracer(traced)
        tracer.txn_begin("t1")
        tracer.on_send(FakeMsg(), WEST, EAST, 1.0)
        assert [traced.random.random() for __ in range(3)] == baseline

    def test_subclass_relationship(self):
        assert issubclass(Tracer, NullTracer)
