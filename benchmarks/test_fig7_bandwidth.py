"""Figure 7: bandwidth usage at a target throughput of 5000 tps.

Paper shapes (§6.4.2): TAPIR clients use the most client bandwidth (they
coordinate everything); Carousel servers — especially the leaders — use
more bandwidth than TAPIR servers because they replicate both 2PC state
and data to their consensus groups; Carousel Fast servers use more than
Carousel Basic servers (fast and slow paths run concurrently); nothing
approaches link saturation (the paper measures < 70 Mbps on 1 Gbps
links).
"""

from repro.bench.experiments import bandwidth_roles as _roles
from repro.bench.report import render_bandwidth
from repro.bench.runner import SYSTEM_LABELS


def test_fig7_bandwidth_breakdown(bandwidth_results, benchmark):
    rows = benchmark.pedantic(
        lambda: {SYSTEM_LABELS[s]: _roles(r)
                 for s, r in bandwidth_results.items()},
        rounds=1, iterations=1)

    print("\nFigure 7: average bandwidth at 5000 tps target "
          "(Mbps per node)")
    print(render_bandwidth(rows))

    tapir = rows["TAPIR"]
    basic = rows["Carousel Basic"]
    fast = rows["Carousel Fast"]

    # TAPIR clients send and receive more than Carousel clients: the
    # client is the coordinator and talks to every replica.
    assert tapir["client_send"] > basic["client_send"]
    assert tapir["client_send"] > fast["client_send"]
    assert tapir["client_recv"] > basic["client_recv"]

    # Carousel leaders carry more traffic than TAPIR servers: they
    # replicate 2PC state and data to their groups.
    assert basic["leader_send"] > tapir["leader_send"]
    assert fast["leader_send"] > tapir["leader_send"]

    # Fast runs both paths concurrently: its servers out-talk Basic's.
    fast_server = fast["leader_send"] + fast["follower_send"]
    basic_server = basic["leader_send"] + basic["follower_send"]
    assert fast_server > basic_server

    # Sanity: far from saturating a 1 Gbps link (paper: < 70 Mbps).
    for cells in rows.values():
        for value in cells.values():
            assert value < 500.0


def test_fig7_followers_receive_more_than_send(bandwidth_results,
                                               benchmark):
    def follower_asymmetry():
        roles = _roles(bandwidth_results["carousel-basic"])
        return roles["follower_send"], roles["follower_recv"]

    send, recv = benchmark.pedantic(follower_asymmetry, rounds=1,
                                    iterations=1)
    # Followers mostly absorb replicated state (AppendEntries bodies) and
    # answer with small acks.
    assert recv > send
