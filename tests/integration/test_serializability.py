"""Serializability invariants under concurrency.

Every transaction here is a read-modify-write increment.  Under
serializability there are no lost updates, so after the dust settles each
key's stored counter must equal the number of *committed* transactions that
incremented it — the strongest end-to-end check this workload admits.
"""

import pytest

from repro.bench.cluster import CarouselCluster, DeploymentSpec, TapirCluster
from repro.core.config import BASIC, FAST, CarouselConfig
from repro.txn import TransactionSpec


def increment(key):
    return TransactionSpec(
        read_keys=(key,), write_keys=(key,),
        compute_writes=lambda r, k=key: {k: (r[k] or 0) + 1},
        txn_type="increment")


def multi_increment(keys):
    return TransactionSpec(
        read_keys=tuple(keys), write_keys=tuple(keys),
        compute_writes=lambda r: {k: (r[k] or 0) + 1 for k in r},
        txn_type="multi_increment")


def run_contended(cluster, keys, rounds, submit_gap_ms=40.0):
    """Fire increments from every datacenter at staggered times; return
    committed counts per key."""
    results = []
    committed_per_key = {k: 0 for k in keys}
    kernel = cluster.kernel
    clients = cluster.clients
    rng = kernel.random
    for i in range(rounds):
        client = clients[i % len(clients)]
        key = keys[i % len(keys)]
        delay = i * submit_gap_ms + rng.uniform(0, 10)
        kernel.schedule(delay, client.submit, increment(key),
                        results.append)
    cluster.run(rounds * submit_gap_ms + 30_000)
    assert len(results) == rounds, "some transactions never completed"
    for result in results:
        if result.committed:
            key = list(result.reads)[0]
            committed_per_key[key] += 1
    return committed_per_key


def final_value(cluster, key):
    pid = cluster.ring.partition_for(key)
    if hasattr(cluster, "servers"):
        leader = cluster.directory.lookup(pid).leader
        return cluster.servers[leader].partitions[pid].store.read(key).value
    return cluster.replicas_of(pid)[0].store.read(key).value


@pytest.mark.parametrize("mode", [BASIC, FAST])
class TestCarouselNoLostUpdates:
    def test_single_hot_key(self, mode):
        cluster = CarouselCluster(
            DeploymentSpec(seed=11, jitter_fraction=0.0),
            CarouselConfig(mode=mode))
        cluster.run(500)
        committed = run_contended(cluster, ["hot"], rounds=40)
        cluster.run(10_000)  # finish writebacks
        assert final_value(cluster, "hot") == committed["hot"]
        assert committed["hot"] > 0  # liveness: something must commit

    def test_several_keys(self, mode):
        cluster = CarouselCluster(
            DeploymentSpec(seed=13, jitter_fraction=0.02),
            CarouselConfig(mode=mode))
        cluster.run(500)
        keys = [f"ctr{i}" for i in range(5)]
        committed = run_contended(cluster, keys, rounds=60)
        cluster.run(10_000)
        for key in keys:
            stored = final_value(cluster, key) or 0
            assert stored == committed[key], key

    def test_multi_key_transactions(self, mode):
        cluster = CarouselCluster(
            DeploymentSpec(seed=17, jitter_fraction=0.0),
            CarouselConfig(mode=mode))
        cluster.run(500)
        results = []
        kernel = cluster.kernel
        pairs = [("a", "b"), ("b", "c"), ("a", "c")]
        for i in range(30):
            client = cluster.clients[i % len(cluster.clients)]
            keys = pairs[i % len(pairs)]
            kernel.schedule(i * 50.0, client.submit,
                            multi_increment(keys), results.append)
        cluster.run(40_000)
        assert len(results) == 30
        expected = {"a": 0, "b": 0, "c": 0}
        for result in results:
            if result.committed:
                for key in result.reads:
                    expected[key] += 1
        cluster.run(10_000)
        for key, count in expected.items():
            stored = final_value(cluster, key) or 0
            assert stored == count, key

    def test_replicas_converge(self, mode):
        cluster = CarouselCluster(
            DeploymentSpec(seed=19, jitter_fraction=0.0),
            CarouselConfig(mode=mode))
        cluster.run(500)
        run_contended(cluster, ["conv"], rounds=20)
        cluster.run(20_000)  # all writebacks + raft heartbeats propagate
        pid = cluster.ring.partition_for("conv")
        values = {server.partitions[pid].store.read("conv").value
                  for server in cluster.replicas_of(pid)}
        assert len(values) == 1, f"replicas diverged: {values}"


class TestTapirNoLostUpdates:
    def test_single_hot_key(self):
        cluster = TapirCluster(DeploymentSpec(seed=23, jitter_fraction=0.0))
        cluster.run(100)
        committed = run_contended(cluster, ["hot"], rounds=40)
        cluster.run(10_000)
        # TAPIR applies at every replica; check one.
        stored = final_value(cluster, "hot") or 0
        assert stored == committed["hot"]
        assert committed["hot"] > 0
