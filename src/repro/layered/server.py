"""The layered baseline's data server.

Each server hosts partition replicas (Raft groups) exactly like a Carousel
data server, but the transaction flow is strictly sequential: reads are a
separate round; 2PC prepares start only when the client's commit request
arrives; every 2PC state change replicates before the protocol advances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.backoff import RetryPolicy
from repro.core.messages import PartitionSets
from repro.core.occ import ABORT, PREPARED, PendingList, PendingTxn, \
    freeze_versions
from repro.layered.messages import (
    LayeredCommitRecord,
    LayeredCommitRequest,
    LayeredDecisionRecord,
    LayeredPrepare,
    LayeredPrepareAck,
    LayeredPrepareRecord,
    LayeredRead,
    LayeredReadReply,
    LayeredReply,
    LayeredWriteback,
    LayeredWritebackAck,
)
from repro.raft.node import RaftHost, RaftMember
from repro.store.kvstore import VersionedKVStore
from repro.trace.tracer import SPAN_PREPARE, SPAN_RECOVERY, SPAN_WRITEBACK
from repro.txn import REASON_COMMITTED, REASON_CONFLICT, \
    REASON_STALE_READ, TID
from repro.wal.log import WriteAheadLog
from repro.wal.records import LayeredDecisionWal, LayeredFinishWal

COMMIT = "commit"


class _LayeredPartition:
    """One replica of one partition (storage + 2PC participant role)."""

    def __init__(self, server: "LayeredServer", partition_id: str):
        self.server = server
        self.partition_id = partition_id
        self.store = VersionedKVStore()
        self.pending = PendingList()
        self.resolved: Dict[TID, str] = {}
        self.prepare_decisions: Dict[TID, str] = {}
        self.member: Optional[RaftMember] = None
        #: Proposals awaiting replication, keyed to the term they were
        #: proposed in.  A marker from an older term is dead weight: the
        #: entry (and its ack callback) died with that leadership, so a
        #: retransmission must re-propose rather than be deduplicated.
        self._inflight: Dict[TID, int] = {}

    def _proposal_inflight(self, tid: TID) -> bool:
        return self._inflight.get(tid) == self.member.current_term

    @property
    def is_leader(self) -> bool:
        return self.member is not None and self.member.is_leader

    @property
    def serving(self) -> bool:
        """Leader *and* past the term-start barrier.

        A newly elected leader's store may lag its (complete) log — the
        acute case is a power-cycled replica whose log was rebuilt from
        the WAL image but whose store is empty until re-apply.  Serving
        reads or validating prepares against that store would hand out
        stale versions, so requests are dropped (clients retry) until the
        term's no-op has applied locally.
        """
        return self.member is not None and self.member.term_start_applied

    def on_read(self, msg: LayeredRead) -> None:
        if not self.serving:
            return
        values = {}
        for key in msg.keys:
            record = self.store.read(key)
            values[key] = (record.value, record.version)
        self.server.send(msg.src, LayeredReadReply(
            tid=msg.tid, partition_id=self.partition_id, values=values))

    def on_prepare(self, msg: LayeredPrepare) -> None:
        if not self.serving:
            return
        tid = msg.tid
        if tid in self.resolved:
            decision = PREPARED if self.resolved[tid] == COMMIT else ABORT
            self.server.send(msg.src, LayeredPrepareAck(
                tid=tid, partition_id=self.partition_id,
                decision=decision))
            return
        if tid in self.prepare_decisions:
            self.server.send(msg.src, LayeredPrepareAck(
                tid=tid, partition_id=self.partition_id,
                decision=self.prepare_decisions[tid]))
            return
        if self._proposal_inflight(tid):
            return
        read_versions = dict(msg.read_versions)
        # OCC validation: reads happened a round earlier, so versions are
        # checked here (unlike Carousel, whose prepares piggyback on reads).
        stale = any(self.store.version(k) != v
                    for k, v in read_versions.items())
        conflict = self.pending.conflicts(tid, read_versions.keys(),
                                          msg.write_keys)
        decision = ABORT if (stale or conflict) else PREPARED
        if decision == PREPARED:
            self.pending.add(PendingTxn(
                tid=tid, read_keys=frozenset(read_versions),
                write_keys=frozenset(msg.write_keys),
                read_versions=freeze_versions(read_versions),
                term=self.member.current_term, coordinator_id=msg.src))
        record = LayeredPrepareRecord(
            tid=tid, partition_id=self.partition_id, decision=decision,
            read_keys=tuple(read_versions), write_keys=msg.write_keys,
            read_versions=freeze_versions(read_versions))
        coordinator = msg.src
        self._inflight[tid] = self.member.current_term

        def replicated(__):
            self._inflight.pop(tid, None)
            self.server.send(coordinator, LayeredPrepareAck(
                tid=tid, partition_id=self.partition_id,
                decision=decision))

        if self.member.propose(record, on_committed=replicated) is None:
            self._inflight.pop(tid, None)

    def on_writeback(self, msg: LayeredWriteback) -> None:
        if not self.serving:
            return
        tid = msg.tid
        if tid in self.resolved:
            self.server.send(msg.src, LayeredWritebackAck(
                tid=tid, partition_id=self.partition_id))
            return
        if self._proposal_inflight(tid):
            return
        record = LayeredCommitRecord(
            tid=tid, partition_id=self.partition_id,
            decision=msg.decision, writes=tuple(msg.writes.items()))
        coordinator = msg.src
        self._inflight[tid] = self.member.current_term

        def replicated(__):
            self._inflight.pop(tid, None)
            self.server.send(coordinator, LayeredWritebackAck(
                tid=tid, partition_id=self.partition_id))

        if self.member.propose(record, on_committed=replicated) is None:
            self._inflight.pop(tid, None)

    def apply(self, command) -> None:
        if isinstance(command, LayeredPrepareRecord):
            self.prepare_decisions[command.tid] = command.decision
            if command.decision == PREPARED:
                # Mirror the pending list on every replica: a successor
                # leader that cannot see prepared-but-undecided
                # transactions would validate new ones against thin air
                # and hand out conflicting prepares (lost updates).
                if command.tid in self.resolved:
                    return  # decided later in the log; nothing pending
                self.pending.add(PendingTxn(
                    tid=command.tid,
                    read_keys=frozenset(command.read_keys),
                    write_keys=frozenset(command.write_keys),
                    read_versions=command.read_versions,
                    term=0, coordinator_id=""))
            else:
                self.pending.remove(command.tid)
        elif isinstance(command, LayeredCommitRecord):
            if command.tid in self.resolved:
                return
            self.resolved[command.tid] = command.decision
            if command.decision == COMMIT:
                for key, value in command.writes:
                    self.store.write(key, value,
                                     self.store.version(key) + 1)
            self.pending.remove(command.tid)
        else:  # pragma: no cover - routing bug
            raise TypeError(f"unexpected layered record {command!r}")


@dataclass
class _CoordState:
    tid: TID
    client_id: str = ""
    group_id: str = ""
    participants: Dict[str, PartitionSets] = field(default_factory=dict)
    writes: Dict[str, Any] = field(default_factory=dict)
    read_versions: Dict[str, int] = field(default_factory=dict)
    votes: Dict[str, str] = field(default_factory=dict)
    decision: Optional[str] = None
    decision_replicated: bool = False
    replied: bool = False
    writeback_acks: Set[str] = field(default_factory=set)
    writeback_timer: Any = None
    writeback_attempts: int = 0
    #: Tracing: open 2PC-prepare and writeback spans.
    trace_prepare_span: Any = None
    trace_writeback_span: Any = None


class LayeredServer(RaftHost):
    """A data server of the layered baseline."""

    def __init__(self, node_id: str, dc: str, kernel, network, directory,
                 service_time_ms: float = 0.0, raft_config=None,
                 retry_policy: Optional[RetryPolicy] = None):
        super().__init__(node_id, dc, kernel, network,
                         service_time_ms=service_time_ms)
        self.directory = directory
        self.raft_config = raft_config
        # Writeback retransmission schedule; the default matches the
        # historical fixed client retry interval.
        self.retry_policy = retry_policy or RetryPolicy(base_ms=10_000.0)
        self.partitions: Dict[str, _LayeredPartition] = {}
        self.coord_states: Dict[TID, _CoordState] = {}
        self.finished: Dict[TID, str] = {}
        self.wal = WriteAheadLog(node_id)
        self.wal.attach_host(self)
        #: Deployment shape, for power-cycle re-creation.
        self._partition_specs: List = []

    def add_partition(self, partition_id: str, member_ids: List[str],
                      bootstrap_leader: Optional[str] = None
                      ) -> _LayeredPartition:
        """Host a replica of ``partition_id`` in the given consensus group."""
        partition = _LayeredPartition(self, partition_id)
        member = RaftMember(
            self, partition_id, member_ids, config=self.raft_config,
            apply_fn=lambda entry, pid=partition_id:
                self._apply(pid, entry),
            on_leadership=lambda member, payloads, pid=partition_id:
                self.directory.set_leader(pid, self.node_id),
            bootstrap_leader=bootstrap_leader)
        partition.member = member
        self.partitions[partition_id] = partition
        self._partition_specs.append((partition_id, tuple(member_ids)))
        return partition

    def on_recover(self) -> None:
        """Fail-stop recovery: coordinator state survived in RAM, but the
        crash bumped the timer epoch, so writeback retry timers armed by
        the previous incarnation are dead — re-arm the retry loop for
        every transaction still in its writeback phase."""
        super().on_recover()
        # Ordered: insertion order, deterministic under a fixed seed.
        # detlint: ignore[values-fanout]
        for state in list(self.coord_states.values()):
            if state.decision is not None and state.replied:
                self._arm_writeback_retry(state)

    def on_restart(self) -> None:
        """Power-cycle recovery: rebuild partitions and Raft members
        fresh, replay Raft persistent state from the WAL, and re-drive
        the writeback phase of every journaled-but-unfinished decision.
        Partition pending lists rebuild through the Raft apply path as
        the commit index re-advances under a live leader."""
        records = self.wal.replay()
        self.members = {}
        self.partitions = {}
        self.coord_states = {}
        self.finished = {}
        specs, self._partition_specs = list(self._partition_specs), []
        for partition_id, member_ids in specs:
            self.add_partition(partition_id, list(member_ids))
        self.replay_raft_wal(records)
        decided: Dict[TID, LayeredDecisionWal] = {}
        done = set()
        for record in records:
            if isinstance(record, LayeredDecisionWal):
                decided[record.tid] = record
            elif isinstance(record, LayeredFinishWal):
                done.add(record.tid)
        redriven = 0
        # Replay order is WAL append order (dict insertion order).
        # detlint: ignore[values-fanout]
        for tid, record in decided.items():
            if tid in done:
                self.finished[tid] = record.decision
                continue
            state = _CoordState(
                tid=tid, client_id=record.client_id,
                group_id=record.group_id,
                participants=dict(record.participants),
                writes=dict(record.writes),
                decision=record.decision, decision_replicated=True,
                replied=True)
            self.coord_states[tid] = state
            self._send_writebacks(state)
            redriven += 1
        tracer = self.tracer
        if tracer.enabled:
            tracer.point(None, SPAN_RECOVERY, self.node_id, self.dc,
                         detail=(f"wal-restart records={len(records)} "
                                 f"redriven={redriven}"))

    def _apply(self, group_id: str, entry) -> None:
        command = entry.command
        if isinstance(command, LayeredDecisionRecord):
            state = self.coord_states.get(command.tid)
            if state is not None:
                state.decision_replicated = True
            return
        self.partitions[group_id].apply(command)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def handle_app_message(self, msg) -> None:
        """Route layered-protocol messages to the right role."""
        if isinstance(msg, LayeredRead):
            self.partitions[msg.partition_id].on_read(msg)
        elif isinstance(msg, LayeredPrepare):
            self.partitions[msg.partition_id].on_prepare(msg)
        elif isinstance(msg, LayeredWriteback):
            self.partitions[msg.partition_id].on_writeback(msg)
        elif isinstance(msg, LayeredCommitRequest):
            self._on_commit_request(msg)
        elif isinstance(msg, LayeredPrepareAck):
            self._on_prepare_ack(msg)
        elif isinstance(msg, LayeredWritebackAck):
            self._on_writeback_ack(msg)
        else:  # pragma: no cover - routing bug
            raise TypeError(f"unexpected layered message {msg!r}")

    # ------------------------------------------------------------------
    # Coordinator role (2PC driver)
    # ------------------------------------------------------------------
    def _on_commit_request(self, msg: LayeredCommitRequest) -> None:
        if msg.tid in self.finished:
            decision = self.finished[msg.tid]
            self.send(msg.src, LayeredReply(
                tid=msg.tid, committed=decision == COMMIT,
                reason=REASON_COMMITTED if decision == COMMIT
                else REASON_CONFLICT))
            return
        state = self.coord_states.get(msg.tid)
        if state is not None:
            # Retransmission while 2PC is in progress: a prepare (or its
            # ack) or our reply may have been lost.  Re-drive whatever
            # phase is stalled instead of silently waiting forever.
            if state.decision is None:
                self._resend_prepares(state)
            elif state.replied:
                self.send(msg.src, LayeredReply(
                    tid=state.tid,
                    committed=state.decision == COMMIT,
                    reason=REASON_COMMITTED if state.decision == COMMIT
                    else REASON_CONFLICT))
            return
        member = self.members.get(msg.group_id)
        if member is None or not member.term_start_applied:
            # Stale directory, or a fresh leader whose coord-state mirror
            # has not re-applied yet; either way the client retries.
            return
        state = _CoordState(
            tid=msg.tid, client_id=msg.client_id, group_id=msg.group_id,
            participants=dict(msg.participants), writes=dict(msg.writes),
            read_versions=dict(msg.read_versions))
        self.coord_states[msg.tid] = state
        tracer = self.tracer
        if tracer.enabled:
            state.trace_prepare_span = tracer.span_begin(
                msg.tid, SPAN_PREPARE, self.node_id, self.dc,
                detail="2pc-prepare")
        # Phase one: sequential 2PC prepare, only now (nothing overlapped).
        # Ordered: participants was built over sorted(pids) by the client.
        # detlint: ignore[values-fanout]
        for pid, sets in state.participants.items():
            versions = tuple(sorted(
                (k, state.read_versions.get(k, 0))
                for k in sets.read_keys))
            leader = self.directory.lookup(pid).leader
            self.send(leader, LayeredPrepare(
                tid=msg.tid, partition_id=pid, read_versions=versions,
                write_keys=sets.write_keys))

    def _resend_prepares(self, state: _CoordState) -> None:
        """Retransmit 2PC prepares to partitions that have not voted;
        participant leaders re-ack idempotently from ``prepare_decisions``."""
        # Sorted so retransmission order never depends on dict history.
        for pid, sets in sorted(state.participants.items()):
            if pid in state.votes:
                continue
            versions = tuple(sorted(
                (k, state.read_versions.get(k, 0))
                for k in sets.read_keys))
            leader = self.directory.lookup(pid).leader
            self.send(leader, LayeredPrepare(
                tid=state.tid, partition_id=pid, read_versions=versions,
                write_keys=sets.write_keys))

    def _on_prepare_ack(self, msg: LayeredPrepareAck) -> None:
        state = self.coord_states.get(msg.tid)
        if state is None or state.decision is not None:
            return
        state.votes.setdefault(msg.partition_id, msg.decision)
        if len(state.votes) < len(state.participants):
            return
        decision = COMMIT if all(v == PREPARED
                                 for v in state.votes.values()) else ABORT
        state.decision = decision
        tracer = self.tracer
        if tracer.enabled:
            tracer.span_end(state.trace_prepare_span, detail=decision)
            state.trace_prepare_span = None
        member = self.members[state.group_id]

        def decision_replicated(__):
            # Only after the decision is durable may the client learn it —
            # the layered architecture's extra sequential round trip.
            self._persist_decision(state)
            state.replied = True
            reason = REASON_COMMITTED if decision == COMMIT \
                else REASON_CONFLICT
            self.send(state.client_id, LayeredReply(
                tid=state.tid, committed=decision == COMMIT,
                reason=reason))
            inner_tracer = self.tracer
            if inner_tracer.enabled and state.trace_writeback_span is None:
                state.trace_writeback_span = inner_tracer.span_begin(
                    state.tid, SPAN_WRITEBACK, self.node_id, self.dc,
                    detail=decision)
            self._send_writebacks(state)

        if member.propose(LayeredDecisionRecord(tid=state.tid,
                                                decision=decision),
                          on_committed=decision_replicated) is None:
            pass  # lost leadership; client retry will re-drive

    def _persist_decision(self, state: _CoordState) -> None:
        """Journal the 2PC outcome before the reply externalizes it."""
        if self.wal is None:
            return
        self.wal.append(LayeredDecisionWal(
            tid=state.tid, group_id=state.group_id,
            client_id=state.client_id,
            decision=state.decision or ABORT,
            participants=tuple(sorted(state.participants.items())),
            writes=tuple(sorted(state.writes.items()))))

    def _send_writebacks(self, state: _CoordState) -> None:
        # Sorted so writeback order never depends on insertion history —
        # the bug class detlint's DL001/DL005 exist for.
        for pid, sets in sorted(state.participants.items()):
            if pid in state.writeback_acks:
                continue
            writes = {k: state.writes[k] for k in sets.write_keys
                      if k in state.writes} \
                if state.decision == COMMIT else {}
            leader = self.directory.lookup(pid).leader
            self.send(leader, LayeredWriteback(
                tid=state.tid, partition_id=pid,
                decision=state.decision, writes=writes))
        # A lost writeback (or its ack) would otherwise strand the
        # transaction — and, for commits, lose the update entirely.
        self._arm_writeback_retry(state)

    def _arm_writeback_retry(self, state: _CoordState) -> None:
        """(Re-)arm the writeback retry timer for ``state``."""
        if state.writeback_timer is not None:
            state.writeback_timer.cancel()
        delay = self.retry_policy.delay_ms(state.writeback_attempts,
                                           self.kernel.random)
        state.writeback_timer = self.set_timer(
            delay, self._retry_writebacks, state)

    def _retry_writebacks(self, state: _CoordState) -> None:
        if state.tid in self.finished:
            return
        state.writeback_attempts += 1
        self._send_writebacks(state)

    def _on_writeback_ack(self, msg: LayeredWritebackAck) -> None:
        state = self.coord_states.get(msg.tid)
        if state is None:
            return
        state.writeback_acks.add(msg.partition_id)
        if state.writeback_acks >= set(state.participants):
            tracer = self.tracer
            if tracer.enabled:
                tracer.span_end(state.trace_writeback_span)
                state.trace_writeback_span = None
            if state.writeback_timer is not None:
                state.writeback_timer.cancel()
                state.writeback_timer = None
            if self.wal is not None and state.decision is not None:
                self.wal.append(LayeredFinishWal(tid=state.tid))
            self.finished[state.tid] = state.decision or ABORT
            del self.coord_states[state.tid]
