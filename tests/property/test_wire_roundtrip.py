"""Wire-codec round-trip properties over every protocol message type.

The asyncio/TCP backend ships the simulator's own ``Message`` dataclasses
(:mod:`repro.runtime.wire`), so the codec must round-trip *every* message
type of all four protocols, bit-for-bit at the field level.  Strategies
here are derived from the dataclasses' own type annotations, and the
registry is cross-checked against the static message graph
(:mod:`repro.analysis.msggraph`): a newly added message type that the
codec cannot encode fails this suite instead of failing in production.
"""

import dataclasses
import math
import typing
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.analysis.msggraph import build_graph_from_paths
from repro.core.messages import PartitionSets
from repro.raft.log import LogEntry
from repro.runtime import wire
from repro.sim.message import Message
from repro.txn import TID

# ----------------------------------------------------------------------
# Strategies derived from the dataclass annotations
# ----------------------------------------------------------------------

_text = st.text(max_size=12)
_ints = st.integers(min_value=-(2 ** 40), max_value=2 ** 40)

_tid = st.builds(TID, client_id=st.text(min_size=1, max_size=8),
                 seq=st.integers(min_value=0, max_value=10_000))

#: Wire-encodable values for ``Any``-typed fields (``LogEntry.command``,
#: vote payloads...).  NaN is excluded so dataclass equality works; the
#: non-finite floats get their own explicit test below.
_any_value = st.recursive(
    st.one_of(
        st.none(), st.booleans(), _ints,
        st.floats(allow_nan=False, allow_infinity=False),
        _text, st.binary(max_size=12), _tid),
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.tuples(children, children),
        st.dictionaries(st.one_of(_text, _tid), children, max_size=3),
        st.frozensets(st.one_of(_ints, _text), max_size=3)),
    max_leaves=8)


def _strategy_for(annotation):
    """A hypothesis strategy for one field annotation."""
    if annotation is bool:
        return st.booleans()
    if annotation is int:
        return _ints
    if annotation is str:
        return _text
    if annotation is typing.Any:
        return _any_value
    if annotation is TID:
        return _tid
    if dataclasses.is_dataclass(annotation):
        return _dataclass_strategy(annotation)
    origin = typing.get_origin(annotation)
    args = typing.get_args(annotation)
    if origin is dict:
        return st.dictionaries(_strategy_for(args[0]),
                               _strategy_for(args[1]), max_size=3)
    if origin is list:
        return st.lists(_strategy_for(args[0]), max_size=3)
    if origin is tuple:
        if len(args) == 2 and args[1] is Ellipsis:
            return st.lists(_strategy_for(args[0]), max_size=3).map(tuple)
        return st.tuples(*[_strategy_for(a) for a in args])
    raise NotImplementedError(
        f"no strategy for field annotation {annotation!r} — extend "
        "test_wire_roundtrip._strategy_for alongside the new field type")


def _dataclass_strategy(cls):
    hints = typing.get_type_hints(cls)
    return st.builds(cls, **{f.name: _strategy_for(hints[f.name])
                             for f in dataclasses.fields(cls)})


def _message_types():
    reg = wire.registry()
    return [reg[name] for name in wire.message_type_names()]


_envelope = st.tuples(st.text(min_size=1, max_size=8),
                      st.text(min_size=1, max_size=8),
                      st.floats(min_value=0, max_value=1e9,
                                allow_nan=False))


# ----------------------------------------------------------------------
# Coverage: the registry must match the static message graph
# ----------------------------------------------------------------------

def test_registry_covers_every_graph_message():
    """Every message type protolint sees must be wire-encodable (and
    vice versa), so adding a message without wire coverage is caught."""
    root = Path(repro.__file__).resolve().parent
    graph = build_graph_from_paths([str(root)])
    graph_names = set(graph.messages)
    wire_names = set(wire.message_type_names())
    assert wire_names == graph_names, (
        f"only on wire: {sorted(wire_names - graph_names)}; "
        f"only in graph: {sorted(graph_names - wire_names)}")


def test_registry_spans_all_four_protocols():
    modules = {cls.__module__ for cls in _message_types()}
    assert {"repro.core.messages", "repro.raft.messages",
            "repro.layered.messages", "repro.tapir.messages"} <= modules


# ----------------------------------------------------------------------
# Round-trip properties, one per message type
# ----------------------------------------------------------------------

@pytest.mark.parametrize("cls", _message_types(),
                         ids=lambda cls: cls.__name__)
def test_roundtrip_every_message_type(cls):
    """Generated instances of every registered message type survive
    encode -> frame -> decode with all fields and the envelope equal."""

    @settings(max_examples=25, deadline=None)
    @given(msg=_dataclass_strategy(cls), envelope=_envelope)
    def check(msg, envelope):
        msg.src, msg.dst, msg.sent_at = envelope
        data = wire.encode_message(msg)
        assert len(wire.frame(data)) == len(data) + 4
        back = wire.decode_message(data)
        assert type(back) is cls
        assert back == msg
        assert (back.src, back.dst, back.sent_at) == envelope

    check()


# ----------------------------------------------------------------------
# Value-level edge cases the equality-based property cannot cover
# ----------------------------------------------------------------------

def test_nonfinite_floats_roundtrip():
    out = wire.decode_value(wire.encode_value(
        [math.inf, -math.inf, math.nan]))
    assert out[0] == math.inf and out[1] == -math.inf
    assert math.isnan(out[2])


def test_int_float_distinction_survives():
    out = wire.decode_value(wire.encode_value([1, 1.0]))
    assert [type(v) for v in out] == [int, float]


def test_tid_dict_keys_roundtrip():
    table = {TID("c1", 3): "commit", TID("c2", 7): "abort"}
    assert wire.decode_value(wire.encode_value(table)) == table


def test_log_entry_with_partition_sets_roundtrips():
    entry = LogEntry(term=2, index=5, command=PartitionSets(
        read_keys=("a", "b"), write_keys=("c",)))
    assert wire.decode_value(wire.encode_value(entry)) == entry


def test_unknown_message_type_is_wire_error():
    with pytest.raises(wire.WireError):
        wire.decode_message(b'{"t":"NoSuchMessage","p":{}}')


def test_oversized_frame_is_refused():
    with pytest.raises(wire.WireError):
        wire.frame(b"x" * (wire.MAX_FRAME_BYTES + 1))


def test_unregistered_dataclass_is_wire_error():
    @dataclasses.dataclass
    class Rogue:
        x: int = 0

    with pytest.raises(wire.WireError):
        wire.encode_value(Rogue())


def test_exactly_the_advertised_message_count():
    """33 message types across the four protocols; a drop here means a
    message module fell out of PAYLOAD_MODULES."""
    assert len(wire.message_type_names()) == 33
    assert all(issubclass(wire.registry()[n], Message)
               for n in wire.message_type_names())
