"""Failure ablation (§4.3): service continues across a leader crash.

No figure in the paper corresponds to this (their prototype omits fault
tolerance); DESIGN.md lists it as experiment E11.  A Retwis-like increment
stream runs while one partition leader is crashed mid-run; the system must
keep committing (with a dip during the election), lose no committed
updates, and elect a leader that serves the partition afterwards.
"""

from repro.bench.cluster import CarouselCluster, DeploymentSpec
from repro.bench.report import format_table
from repro.core.config import FAST, CarouselConfig
from repro.raft.node import RaftConfig
from repro.sim.failure import FailureInjector
from repro.txn import TransactionSpec


def run_crash_experiment():
    config = CarouselConfig(
        mode=FAST, client_retry_ms=1_000.0,
        raft=RaftConfig(election_timeout_min_ms=400.0,
                        election_timeout_max_ms=800.0,
                        heartbeat_interval_ms=100.0))
    cluster = CarouselCluster(
        DeploymentSpec(seed=31, clients_per_dc=4), config)
    cluster.run(500)

    keys = [f"ablate{i}" for i in range(10)]
    victim_pid = cluster.ring.partition_for(keys[0])
    victim = cluster.directory.lookup(victim_pid).leader

    results = []

    def increment(key):
        return TransactionSpec(
            read_keys=(key,), write_keys=(key,),
            compute_writes=lambda r, k=key: {k: (r[k] or 0) + 1},
            txn_type="increment")

    crash_at = 5_000.0
    total = 60
    for i in range(total):
        client = cluster.clients[i % len(cluster.clients)]
        at = i * 300.0
        cluster.kernel.schedule(at, client.submit,
                                increment(keys[i % len(keys)]),
                                results.append)
    injector = FailureInjector(cluster.kernel, cluster.network)
    injector.crash_at(victim, crash_at)
    cluster.run(total * 300.0 + 40_000.0)

    committed_per_key = {k: 0 for k in keys}
    for result in results:
        if result.committed:
            committed_per_key[list(result.reads)[0]] += 1
    stored_per_key = {}
    for key in keys:
        pid = cluster.ring.partition_for(key)
        leader = cluster.directory.lookup(pid).leader
        stored_per_key[key] = (cluster.servers[leader].partitions[pid]
                               .store.read(key).value or 0)
    return {
        "results": results,
        "victim": victim,
        "victim_pid": victim_pid,
        "new_leader": cluster.directory.lookup(victim_pid).leader,
        "committed_per_key": committed_per_key,
        "stored_per_key": stored_per_key,
    }


def test_leader_crash_ablation(benchmark):
    data = benchmark.pedantic(run_crash_experiment, rounds=1, iterations=1)

    results = data["results"]
    committed = sum(1 for r in results if r.committed)
    print(f"\nE11: leader crash mid-run "
          f"({data['victim']} on {data['victim_pid']})")
    rows = [[k, str(data['committed_per_key'][k]),
             str(data['stored_per_key'][k])]
            for k in sorted(data["committed_per_key"])]
    print(format_table(["key", "committed increments", "stored value"],
                       rows))
    print(f"completed {len(results)}/60, committed {committed}, "
          f"new leader: {data['new_leader']}")

    # Liveness: every submitted transaction completes (commit or abort),
    # and most commit despite the crash.
    assert len(results) == 60
    assert committed > 40

    # A new leader took over the crashed partition.
    assert data["new_leader"] != data["victim"]

    # Safety: no committed update lost, none applied twice.
    for key, count in data["committed_per_key"].items():
        assert data["stored_per_key"][key] == count, key
