"""Storage substrate: versioned key-value store, partitioning, directory.

Carousel provides a key-value store interface with transactional access
(§3.3).  Each record carries a version number that monotonically increases
with transactional writes; the OCC layer uses these versions to detect
conflicts.  Keys map to partitions with consistent hashing, and a directory
service (the paper points at Chubby/ZooKeeper) tracks where each partition's
replicas live.
"""

from repro.store.kvstore import Record, VersionedKVStore
from repro.store.partitioning import ConsistentHashRing, Partitioner
from repro.store.directory import DirectoryService, PartitionInfo

__all__ = [
    "Record",
    "VersionedKVStore",
    "ConsistentHashRing",
    "Partitioner",
    "DirectoryService",
    "PartitionInfo",
]
