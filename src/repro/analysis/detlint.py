"""detlint: an AST linter for determinism bugs, tuned to this codebase.

The simulator's determinism contract (see :mod:`repro.sim.kernel`) has two
rules — all randomness from ``kernel.random``, all event ordering by
``(time, seq)`` — but the bugs that break it in practice are ordinary
Python idioms: iterating a ``set`` in a send loop, reading the wall clock,
instantiating a stray RNG.  Each detlint rule encodes one such bug class:

========  =================  ========  =============================================
code      slug               severity  catches
========  =================  ========  =============================================
DL001     set-iter-send      error     ``for x in <set>`` whose body sends/schedules
DL002     set-iter           warning   any other unsorted ``set`` iteration
DL003     wallclock          error     ``time.time``/``datetime.now``/... outside the
                                       bench/perf/sweep allowlist
DL004     unseeded-random    error     module-level ``random.*`` outside kernel/workloads
DL005     values-fanout      warning   dict ``.values()/.keys()/.items()`` fan-out in a
                                       send path (ordered only if insertion order is)
DL006     set-payload        error     a mutable ``set`` passed into a CapWord
                                       (message/dataclass) constructor
DL007     nondet-source      error     ``uuid.uuid4``, ``os.urandom``, ``os.getpid``,
                                       ``secrets``
DL008     id-hash-order      error     ``id()``/``hash()`` inside ``sorted``/``min``/
                                       ``max``/``.sort`` ordering
========  =================  ========  =============================================

Deliberate exemptions keep the signal high: iterating ``sorted(s)`` is
always fine; order-insensitive reductions over sets (``sum``/``any``/
``all``/``len``/``min``/``max``/``set``/``frozenset`` of a comprehension)
are fine; building a *set* from a set is fine.  Dict iteration is
insertion-ordered in Python and therefore deterministic **iff** insertion
order is — which is why DL005 is a warning demanding a proof (a
``# detlint: ignore[values-fanout]`` annotation stating the ordering
argument) or a ``sorted()``.

Suppression syntax is documented in :mod:`repro.analysis.findings`.
Everything here is stdlib-``ast``; no third-party dependencies.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
    Rule,
    is_suppressed,
    parse_suppressions,
)

_RULE_LIST = [
    Rule("DL001", "set-iter-send", SEVERITY_ERROR,
         "iteration over a set in a send/schedule path — order is "
         "PYTHONHASHSEED-dependent; iterate sorted(...) instead"),
    Rule("DL002", "set-iter", SEVERITY_WARNING,
         "unsorted iteration over a set — order is PYTHONHASHSEED-"
         "dependent; sort, or suppress if order provably cannot escape"),
    Rule("DL003", "wallclock", SEVERITY_ERROR,
         "wall-clock time source in simulated code — all time must come "
         "from kernel.now"),
    Rule("DL004", "unseeded-random", SEVERITY_ERROR,
         "module-level random usage — all randomness must come from "
         "kernel.random or an RNG seeded from it"),
    Rule("DL005", "values-fanout", SEVERITY_WARNING,
         "dict fan-out in a send path — deterministic only if insertion "
         "order is; sort, or annotate with the ordering argument"),
    Rule("DL006", "set-payload", SEVERITY_ERROR,
         "mutable set passed into a message/record constructor — its "
         "iteration order leaks hash order into the payload"),
    Rule("DL007", "nondet-source", SEVERITY_ERROR,
         "process-environment entropy source (uuid, os.urandom, "
         "os.getpid, secrets) in simulated code"),
    Rule("DL008", "id-hash-order", SEVERITY_ERROR,
         "id()/hash()-based ordering — both vary across processes"),
]

#: All rules, by code.
RULES: Dict[str, Rule] = {rule.code: rule for rule in _RULE_LIST}
_BY_SLUG: Dict[str, Rule] = {rule.slug: rule for rule in _RULE_LIST}

#: Call names that send a message or schedule an event.  Tuned to this
#: codebase: Node.send/_send helpers, kernel scheduling, Raft propose.
SEND_NAMES = frozenset({
    "send", "_send", "schedule", "schedule_at", "set_timer", "propose",
    "broadcast", "enqueue", "dispatch_partition_message",
})

#: Order-insensitive consumers: a comprehension that feeds one of these
#: cannot leak iteration order.
_REDUCTIONS = frozenset({
    "sum", "any", "all", "len", "min", "max", "sorted", "set",
    "frozenset",
})

_WALLCLOCK_ATTRS = {
    "time": {"time", "time_ns", "perf_counter", "perf_counter_ns",
             "monotonic", "monotonic_ns", "process_time",
             "process_time_ns"},
    "datetime": {"now", "utcnow", "today"},
    "date": {"today"},
}

_NONDET_CALLS = {
    ("uuid", "uuid1"), ("uuid", "uuid4"),
    ("os", "urandom"), ("os", "getpid"),
}


@dataclass(frozen=True)
class LintConfig:
    """Path allowlists for the path-scoped rules.

    Fragments are matched against the POSIX form of the linted path, so
    ``"bench/"`` matches ``src/repro/bench/report.py``.
    """

    # perf/ is the benchmarking subsystem: timing the simulator with
    # time.perf_counter is its whole job, and its wall-clock numbers
    # never feed back into simulated behaviour (the deterministic op
    # counters cover that).  sweep/ measures and orchestrates sweeps
    # from outside the kernel (wall-clock stats, os.getpid for unique
    # temp-file names) and likewise never feeds anything back into a
    # simulation — every worker runs a fresh, fully-seeded kernel.
    # wal/ exports WAL images as host-side debugging artifacts whose
    # export timestamp is never read back into the DES (the log itself
    # runs purely on virtual time).  runtime/ is the asyncio/TCP
    # backend: the wall clock *is* its kernel.now and sockets are its
    # network, so time sources there are the design, not a leak — the
    # differential conformance harness (runtime/conformance.py) is what
    # keeps its behaviour honest against the DES.
    wallclock_allowed: Tuple[str, ...] = ("bench/", "perf/", "sweep/",
                                          "wal/", "runtime/")
    # chaos/ generates nemesis schedules and workload plans from RNGs
    # string-seeded by the run seed before the simulation starts, the
    # same pattern as workloads/.  runtime/ string-seeds one RNG per
    # logical process (`Random(f"{proc}:{seed}")`) and its conformance
    # plans (`Random(f"conform:{seed}")`) the same way.
    random_allowed: Tuple[str, ...] = ("sim/kernel.py", "workloads/",
                                       "chaos/", "runtime/")


def _path_allowed(path: str, fragments: Sequence[str]) -> bool:
    posix = Path(path).as_posix()
    return any(frag in posix for frag in fragments)


def _dotted(node: ast.AST) -> Tuple[str, ...]:
    """The dotted name chain of an Attribute/Name, e.g. ``a.b.c`` ->
    ``("a", "b", "c")``; empty when the chain roots in a non-name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return tuple(parts)
    return ()


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _contains_send(nodes: Iterable[ast.AST]) -> bool:
    for root in nodes:
        for node in ast.walk(root):
            if isinstance(node, ast.Call) and \
                    _call_name(node) in SEND_NAMES:
                return True
    return False


def _sorted_wrapped(expr: ast.AST) -> bool:
    """``sorted(...)`` — possibly through ``list()``/``tuple()``/
    ``reversed()`` — imposes a deterministic order."""
    if isinstance(expr, ast.Call):
        name = _call_name(expr)
        if name == "sorted":
            return True
        if name in {"list", "tuple", "reversed"} and len(expr.args) == 1:
            return _sorted_wrapped(expr.args[0])
    return False


def _annotation_setish(ann: Optional[ast.AST]) -> bool:
    if ann is None:
        return False
    try:
        text = ast.unparse(ann)
    except Exception:  # pragma: no cover - malformed annotation
        return False
    return "Set[" in text or text in {"set", "Set", "frozenset",
                                      "FrozenSet"}


class _Scope:
    """Names bound to set-valued expressions within one function."""

    def __init__(self, inherited: Optional[Set[str]] = None):
        self.setish: Set[str] = set(inherited or ())


def _is_setish(expr: ast.AST, scope: _Scope) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        name = _call_name(expr)
        if name in {"set", "frozenset"}:
            return True
        if name in {"union", "intersection", "difference",
                    "symmetric_difference", "copy"} and \
                isinstance(expr.func, ast.Attribute) and \
                _is_setish(expr.func.value, scope):
            return True
        return False
    if isinstance(expr, ast.Name):
        return expr.id in scope.setish
    if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)):
        return _is_setish(expr.left, scope) or \
            _is_setish(expr.right, scope)
    if isinstance(expr, ast.IfExp):
        return _is_setish(expr.body, scope) or \
            _is_setish(expr.orelse, scope)
    return False


def _collect_setish_names(fn: ast.AST, scope: _Scope) -> None:
    """Two-pass forward propagation of set-valued local assignments."""
    assigns: List[Tuple[str, ast.AST]] = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    assigns.append((target.id, node.value))
        elif isinstance(node, ast.AnnAssign) and \
                isinstance(node.target, ast.Name):
            if _annotation_setish(node.annotation):
                scope.setish.add(node.target.id)
            elif node.value is not None:
                assigns.append((node.target.id, node.value))
    if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = fn.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs):
            if _annotation_setish(arg.annotation):
                scope.setish.add(arg.arg)
    for _ in range(2):  # fixpoint for name -> name chains
        for name, value in assigns:
            if _is_setish(value, scope):
                scope.setish.add(name)


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, config: LintConfig):
        self.path = path
        self.config = config
        self.findings: List[Finding] = []
        self._scopes: List[_Scope] = [_Scope()]
        #: Comprehension nodes feeding an order-insensitive reduction.
        self._exempt: Set[int] = set()

    # -- helpers --------------------------------------------------------
    @property
    def scope(self) -> _Scope:
        return self._scopes[-1]

    def _emit(self, rule: Rule, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            rule=rule, path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message))

    # -- scoping --------------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(self, node: ast.AST) -> None:
        scope = _Scope(inherited=self.scope.setish)
        _collect_setish_names(node, scope)
        self._scopes.append(scope)
        self.generic_visit(node)
        self._scopes.pop()

    # -- DL001 / DL002 / DL005: iteration order -------------------------
    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, node.body + node.orelse,
                              is_loop=True)
        self.generic_visit(node)

    def _check_iteration(self, iter_expr: ast.AST,
                         body: Sequence[ast.AST], is_loop: bool) -> None:
        if _sorted_wrapped(iter_expr):
            return
        if _is_setish(iter_expr, self.scope):
            if is_loop and _contains_send(body):
                self._emit(RULES["DL001"], iter_expr,
                           "set iteration drives message sends; the send "
                           "order follows hash order — iterate "
                           "sorted(...) instead")
            else:
                self._emit(RULES["DL002"], iter_expr,
                           "set iteration order is hash-seed dependent; "
                           "sort, or suppress if order cannot escape")
            return
        # Unwrap order-preserving list()/tuple() copies (the common
        # "snapshot before mutating" idiom) before the dict-method check.
        while isinstance(iter_expr, ast.Call) and \
                _call_name(iter_expr) in {"list", "tuple"} and \
                len(iter_expr.args) == 1:
            iter_expr = iter_expr.args[0]
        if is_loop and isinstance(iter_expr, ast.Call) and \
                isinstance(iter_expr.func, ast.Attribute) and \
                iter_expr.func.attr in {"values", "keys", "items"} and \
                not iter_expr.args and _contains_send(body):
            self._emit(RULES["DL005"], iter_expr,
                       f"dict .{iter_expr.func.attr}() fan-out sends "
                       "messages; deterministic only if insertion order "
                       "is — sort, or annotate the ordering argument")

    def _visit_comprehension(self, node: ast.AST) -> None:
        if id(node) not in self._exempt and \
                not isinstance(node, ast.SetComp):
            for gen in node.generators:
                self._check_iteration(gen.iter, (), is_loop=False)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_SetComp = _visit_comprehension

    # -- attribute-rooted rules -----------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        chain = _dotted(node)
        if len(chain) == 2 and chain[0] == "random" and \
                not _path_allowed(self.path, self.config.random_allowed):
            self._emit(RULES["DL004"], node,
                       f"random.{chain[1]} bypasses the kernel's seeded "
                       "RNG; draw from kernel.random instead")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)
        chain = _dotted(node.func)

        if name in _REDUCTIONS:
            for arg in node.args:
                if isinstance(arg, (ast.GeneratorExp, ast.ListComp,
                                    ast.SetComp, ast.DictComp)):
                    self._exempt.add(id(arg))

        tail = chain[-2:]
        if len(tail) == 2 and tail[0] in _WALLCLOCK_ATTRS and \
                tail[1] in _WALLCLOCK_ATTRS[tail[0]] and \
                not _path_allowed(self.path,
                                  self.config.wallclock_allowed):
            self._emit(RULES["DL003"], node,
                       f"{'.'.join(tail)}() reads the wall clock; "
                       "simulated code must use kernel.now")

        if (tail in _NONDET_CALLS or (chain and chain[0] == "secrets")) \
                and not _path_allowed(self.path,
                                      self.config.wallclock_allowed):
            self._emit(RULES["DL007"], node,
                       f"{'.'.join(chain)}() draws process-environment "
                       "entropy; runs can never be reproduced")

        if name in {"sorted", "min", "max"} or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "sort"):
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call) and \
                        isinstance(sub.func, ast.Name) and \
                        sub.func.id in {"id", "hash"}:
                    self._emit(RULES["DL008"], sub,
                               f"{sub.func.id}() varies across "
                               "processes; order by a stable key")
            for kw in node.keywords:
                # key=id / key=hash passed as a bare function reference.
                if kw.arg == "key" and isinstance(kw.value, ast.Name) \
                        and kw.value.id in {"id", "hash"}:
                    self._emit(RULES["DL008"], kw.value,
                               f"key={kw.value.id} varies across "
                               "processes; order by a stable key")

        if name is not None and name[:1].isupper() and \
                not name.isupper():
            payload_args = list(node.args) + \
                [kw.value for kw in node.keywords]
            for arg in payload_args:
                if isinstance(arg, (ast.Set, ast.SetComp)) or (
                        isinstance(arg, ast.Call)
                        and _call_name(arg) == "set") or (
                        isinstance(arg, ast.Name)
                        and arg.id in self.scope.setish):
                    self._emit(RULES["DL006"], arg,
                               f"mutable set passed to {name}(); its "
                               "iteration order leaks hash order — use "
                               "a sorted tuple or frozenset")

        self.generic_visit(node)

    # -- imports --------------------------------------------------------
    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random" and \
                not _path_allowed(self.path, self.config.random_allowed):
            self._emit(RULES["DL004"], node,
                       "importing from random invites unseeded draws; "
                       "route randomness through kernel.random")
        elif node.module == "time" and any(
                alias.name in _WALLCLOCK_ATTRS["time"]
                for alias in node.names) and \
                not _path_allowed(self.path,
                                  self.config.wallclock_allowed):
            self._emit(RULES["DL003"], node,
                       "importing wall-clock functions from time; "
                       "simulated code must use kernel.now")
        elif node.module == "secrets" and \
                not _path_allowed(self.path,
                                  self.config.wallclock_allowed):
            self._emit(RULES["DL007"], node,
                       "secrets draws process entropy; runs can never "
                       "be reproduced")
        self.generic_visit(node)


def lint_source(source: str, path: str = "<string>",
                config: Optional[LintConfig] = None,
                keep_suppressed: bool = False) -> List[Finding]:
    """Lint one source text.  Returns findings, honoring ``# detlint:
    ignore`` suppressions unless ``keep_suppressed`` is set."""
    tree = ast.parse(source, filename=path)
    linter = _Linter(path, config or LintConfig())
    linter.visit(tree)
    if keep_suppressed:
        return linter.findings
    suppressions = parse_suppressions(source, tool="detlint")
    return [f for f in linter.findings
            if not is_suppressed(f, suppressions)]


def lint_file(path: str, config: Optional[LintConfig] = None,
              keep_suppressed: bool = False) -> List[Finding]:
    """Lint one file."""
    source = Path(path).read_text(encoding="utf-8")
    return lint_source(source, path=str(path), config=config,
                       keep_suppressed=keep_suppressed)


def lint_paths(paths: Sequence[str],
               config: Optional[LintConfig] = None,
               keep_suppressed: bool = False) -> List[Finding]:
    """Lint files and/or directory trees (recursing into ``*.py``)."""
    findings: List[Finding] = []
    for entry in paths:
        target = Path(entry)
        if target.is_dir():
            files = sorted(target.rglob("*.py"))
        else:
            files = [target]
        for file in files:
            findings.extend(lint_file(str(file), config=config,
                                      keep_suppressed=keep_suppressed))
    return findings
