"""End-to-end divergence bisector tests.

Each check spawns two fresh interpreters under different PYTHONHASHSEED
values and diffs their kernel digest streams.  The clean-tree half pins
the repo's cross-process determinism claim for all four systems; the
planted-bug half reintroduces PR 1's coordinator writeback set-iteration
bug and asserts the bisector localizes it to the first divergent
Writeback send, with a causal chain leading back to the transaction.
"""

import pytest

from repro.analysis.digest import parse_send_fields
from repro.analysis.divergence import compare_digests, run_divergence


@pytest.mark.parametrize("system", ["basic", "fast", "tapir", "layered"])
def test_no_divergence_across_hash_seeds(system):
    report = run_divergence(system=system, seed=42, n_txns=2,
                            hash_seeds=(1, 2))
    assert not report.diverged, report.render()
    assert report.n_records[0] == report.n_records[1] > 0


def test_planted_set_bug_is_localized_to_writeback():
    # A different hash seed pair can, rarely, yield the same iteration
    # order for the writeback fan-out set; retry over pairs to kill the
    # residual flake probability.
    report = None
    for hash_seeds in ((1, 2), (3, 4), (5, 6)):
        report = run_divergence(system="basic", seed=42, n_txns=4,
                                hash_seeds=hash_seeds, plant_set_bug=True)
        if report.diverged:
            break
    assert report is not None and report.diverged, \
        "planted set-iteration bug produced no divergence"
    # The first divergent record must be the writeback fan-out itself:
    # same time, seq, source, and transaction — different destination.
    fields_a = parse_send_fields(report.record_a)
    fields_b = parse_send_fields(report.record_b)
    assert fields_a.get("type") == "Writeback", report.render()
    assert fields_b.get("type") == "Writeback", report.render()
    src_a = fields_a["route"].split("->")[0]
    src_b = fields_b["route"].split("->")[0]
    assert src_a == src_b
    assert fields_a["t"] == fields_b["t"]
    assert fields_a["tid"] == fields_b["tid"]
    # Causal context reaches back to the transaction's earlier hops.
    assert report.causal_chain
    assert report.causal_chain[-1] == report.record_a
    chain_tids = [parse_send_fields(r).get("tid")
                  for r in report.causal_chain]
    assert all(tid == fields_a["tid"] for tid in chain_tids)


def test_compare_digests_reports_first_difference():
    a = ["E t=1 seq=1", "S x", "S y", "S z"]
    b = ["E t=1 seq=1", "S x", "S DIFFERENT", "S z"]
    first, context = compare_digests(a, b, context=2)
    assert first == 2
    assert context == ["E t=1 seq=1", "S x"]


def test_compare_digests_length_mismatch():
    a = ["r1", "r2", "r3"]
    b = ["r1", "r2"]
    first, _ = compare_digests(a, b)
    assert first == 2


def test_compare_digests_identical():
    a = ["r1", "r2"]
    first, context = compare_digests(a, list(a))
    assert first is None
    assert context == []
