"""Unit tests for client-side behaviour of both systems."""

import pytest

from repro.bench.cluster import CarouselCluster, DeploymentSpec, TapirCluster
from repro.core.config import BASIC, FAST, CarouselConfig
from repro.sim.topology import ec2_five_regions, uniform_topology
from repro.txn import TID, TransactionSpec


def carousel(mode=BASIC, topology=None, seed=2, **kwargs):
    # One partition per datacenter, as in the paper's deployment.
    topology = topology or uniform_topology(3, 4.0)
    spec = DeploymentSpec(topology=topology,
                          n_partitions=len(topology.datacenters),
                          seed=seed, jitter_fraction=0.0)
    cluster = CarouselCluster(spec, CarouselConfig(mode=mode, **kwargs))
    cluster.run(300)
    return cluster


class TestTids:
    def test_tids_are_client_scoped_and_monotone(self):
        cluster = carousel()
        client = cluster.clients[0]
        t1 = client.begin()
        t2 = client.begin()
        assert t1.client_id == t2.client_id == client.node_id
        assert t2.seq == t1.seq + 1
        assert t1 < t2

    def test_tids_unique_across_clients(self):
        cluster = carousel()
        a = cluster.clients[0].begin()
        b = cluster.clients[1].begin()
        assert a != b


class TestCoordinatorChoice:
    def test_prefers_local_participant_leader(self):
        cluster = carousel(topology=ec2_five_regions(), seed=3)
        client = cluster.client("us-west")
        # Find a key whose partition leader is in us-west.
        key = None
        for i in range(3000):
            candidate = f"local{i}"
            pid = cluster.ring.partition_for(candidate)
            if cluster.directory.lookup(pid).leader_datacenter() == \
                    "us-west":
                key = candidate
                local_pid = pid
                break
        assert key is not None
        results = []
        tid = client.submit(TransactionSpec(
            read_keys=(key,), write_keys=(key,),
            compute_writes=lambda r: {key: 1}), results.append)
        txn = client._active[tid]
        assert txn.coord_group_id == local_pid
        cluster.run(3000)
        assert results[0].committed

    def test_falls_back_to_any_local_leader(self):
        cluster = carousel(topology=ec2_five_regions(), seed=3)
        client = cluster.client("us-west")
        # A key whose leader is remote: the coordinator should still be a
        # group led from us-west (§3.3).
        key = None
        for i in range(3000):
            candidate = f"remote{i}"
            pid = cluster.ring.partition_for(candidate)
            if cluster.directory.lookup(pid).leader_datacenter() != \
                    "us-west":
                key = candidate
                break
        tid = client.submit(TransactionSpec(
            read_keys=(key,), write_keys=(key,),
            compute_writes=lambda r: {key: 1}))
        txn = client._active[tid]
        coord_dc = cluster.directory.lookup(
            txn.coord_group_id).leader_datacenter()
        assert coord_dc == "us-west"


class TestReadMerging:
    def test_first_reply_wins_in_fast_mode(self):
        cluster = carousel(mode=FAST, topology=ec2_five_regions(), seed=5)
        client = cluster.client("us-west")
        # A partition with a local replica and a remote leader: the local
        # replica's reply must be used (it arrives first).
        key = None
        for i in range(3000):
            candidate = f"merge{i}"
            pid = cluster.ring.partition_for(candidate)
            info = cluster.directory.lookup(pid)
            if info.leader_datacenter() != "us-west" and \
                    info.replica_in("us-west"):
                key = candidate
                break
        # Different values at leader vs local replica (same version, so no
        # stale abort): whichever the client uses shows in its reads.
        pid = cluster.ring.partition_for(key)
        info = cluster.directory.lookup(pid)
        for server in cluster.replicas_of(pid):
            value = ("local" if server.dc == "us-west" else "leader")
            server.partitions[pid].store.write(key, value, 1)
        results = []
        client.submit(TransactionSpec(read_keys=(key,), write_keys=(key,),
                                      compute_writes=lambda r: {key: "x"}),
                      results.append)
        cluster.run(5000)
        assert results[0].reads[key] == "local"


class TestStatsCounters:
    def test_committed_and_aborted_counts(self):
        cluster = carousel()
        client = cluster.clients[0]
        results = []
        client.submit(TransactionSpec(
            read_keys=("s1",), write_keys=("s1",),
            compute_writes=lambda r: {"s1": 1}), results.append)
        cluster.run(2000)
        client.submit(TransactionSpec(
            read_keys=("s1",), write_keys=("s1",),
            compute_writes=lambda r: None), results.append)
        cluster.run(2000)
        assert client.submitted == 2
        assert client.committed == 1
        assert client.aborted == 1

    def test_result_hook_called(self):
        hooked = []
        spec = DeploymentSpec(topology=uniform_topology(3, 4.0),
                              n_partitions=3, seed=2, jitter_fraction=0.0)
        cluster = CarouselCluster(spec, CarouselConfig(),
                                  result_hook=hooked.append)
        cluster.run(300)
        cluster.clients[0].submit(TransactionSpec(
            read_keys=("h",), write_keys=()))
        cluster.run(2000)
        assert len(hooked) == 1


class TestReadOnlyToggle:
    def test_disabled_read_only_goes_through_coordinator(self):
        cluster = carousel(read_only_optimization=False)
        client = cluster.clients[0]
        results = []
        client.submit(TransactionSpec(read_keys=("ro",), write_keys=()),
                      results.append)
        cluster.run(3000)
        assert results[0].committed
        # The commit path was used: some coordinator decided this txn.
        decided = sum(len(s.coordinator.finished)
                      for s in cluster.servers.values())
        assert decided >= 1


class TestTapirClientDetails:
    def test_reads_go_to_closest_replica(self):
        spec = DeploymentSpec(topology=ec2_five_regions(), seed=2,
                              jitter_fraction=0.0)
        cluster = TapirCluster(spec)
        cluster.run(100)
        client = cluster.client("europe")
        # closest replica of each partition from europe
        for pid in cluster.partition_ids:
            replica = client._closest_replica(pid)
            info = cluster.directory.lookup(pid)
            dcs = dict(zip(info.replicas, info.datacenters))
            best = min(info.datacenters,
                       key=lambda dc: cluster.topology.rtt("europe", dc))
            assert cluster.topology.rtt("europe", dcs[replica]) == \
                cluster.topology.rtt("europe", best)

    def test_empty_transaction_commits(self):
        cluster = TapirCluster(DeploymentSpec(
            topology=uniform_topology(3, 4.0), n_partitions=3, seed=2,
            jitter_fraction=0.0))
        results = []
        cluster.clients[0].submit(
            TransactionSpec(read_keys=(), write_keys=()), results.append)
        cluster.run(100)
        assert results and results[0].committed
