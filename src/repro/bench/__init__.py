"""Benchmark harness: deployments, experiment runners, reports.

* :mod:`repro.bench.cluster` — builds the paper's deployments (5 regions,
  5 partitions, replication factor 3; or the uniform local cluster).
* :mod:`repro.bench.runner` — drives a workload against a deployment and
  collects latency/throughput/abort/bandwidth measurements.
* :mod:`repro.bench.experiments` — one entry per paper table/figure.
* :mod:`repro.bench.report` — text rendering of the measured series.

Submodules are imported directly (``from repro.bench.cluster import ...``)
to keep optional pieces decoupled.
"""

from repro.bench.cluster import (
    CarouselCluster,
    DeploymentSpec,
    LayeredCluster,
    TapirCluster,
)

__all__ = ["CarouselCluster", "TapirCluster", "LayeredCluster",
           "DeploymentSpec"]
