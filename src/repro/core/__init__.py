"""Carousel's transaction protocol: the paper's primary contribution.

The package implements both evaluated variants (§5):

* **Carousel Basic** (§4.1) — prepares run concurrently with the Read and
  Commit phases; prepare decisions are made by participant leaders and
  replicated through Raft before reaching the coordinator.
* **Carousel Fast** (§4.2, §4.4) — adds the Carousel Prepare Consensus
  (CPC) protocol, a Fast-Paxos-style fast path executed *in parallel* with
  the slow path, plus reads from local replicas and the read-only
  transaction optimization.

Entry points:

* :class:`~repro.core.client.CarouselClient` — the client-side library
  exposing the paper's Figure 1 interface.
* :class:`~repro.core.server.CarouselServer` — a Carousel data server (CDS)
  that plays participant leader, participant follower, and transaction
  coordinator roles.
* :class:`~repro.core.config.CarouselConfig` — protocol mode and timing.
"""

from repro.core.config import BASIC, FAST, CarouselConfig
from repro.core.client import CarouselClient
from repro.core.server import CarouselServer
from repro.core.occ import PendingList, PendingTxn

__all__ = [
    "BASIC",
    "FAST",
    "CarouselConfig",
    "CarouselClient",
    "CarouselServer",
    "PendingList",
    "PendingTxn",
]
