"""Known-bug planting, to validate that the chaos oracles catch bugs.

Each plant is a context-manager factory that monkeypatches a protocol
handler for the duration of a run and restores the original on exit
(the pattern :mod:`repro.analysis.divergence` uses for its demo bug).
``run_chaos(..., planted_bug=...)`` keeps the patch active for the whole
run, so the harness can demonstrate end to end that a seeded nemesis
schedule finds the bug and minimizes to a small counterexample.
"""

from __future__ import annotations

from contextlib import contextmanager


@contextmanager
def planted_writeback_bug():
    """Revert the Carousel participant's writeback idempotence.

    With this patch, a duplicate ``Writeback`` for an already-resolved
    transaction re-applies the writes *directly* to the leader's store
    (bypassing Raft) instead of just re-acking.  Any duplicate delivery
    — a network-duplicated writeback, or a retransmission after a lost
    ``WritebackAck`` — then bumps the leader's version past its
    followers', which the ``replica-divergence`` and ``value-parity``
    oracles both catch.  Only affects the Carousel systems.
    """
    from repro.core import participant as participant_mod

    original = participant_mod.PartitionComponent.on_writeback

    def buggy(self, msg):
        if (not self.recovering and self.is_leader
                and msg.tid in self.resolved
                and msg.decision == participant_mod.COMMIT):
            for key, value in msg.writes.items():
                self.store.write(key, value, self.store.version(key) + 1)
        original(self, msg)

    participant_mod.PartitionComponent.on_writeback = buggy
    try:
        yield
    finally:
        participant_mod.PartitionComponent.on_writeback = original


@contextmanager
def planted_lost_commit_bug():
    """Skip the Carousel coordinator's decision journaling.

    With this patch, a commit decision is externalized to the client
    without first being written to the coordinator's WAL.  A power-cycle
    of the coordinator then loses the decision: nothing re-drives the
    transaction's writebacks, and if a RAM-wiped restarted replica later
    wins the group's election, the mirrored coordinator state is gone
    everywhere.  Caught by the ``durability-lost-commit`` oracle (and,
    depending on timing, decision-consistency/value-parity).  Only
    affects the Carousel systems — and only under a nemesis schedule
    that actually restarts the coordinator at the wrong moment, which is
    the point: the oracle, not luck, must find it.
    """
    from repro.core import coordinator as coordinator_mod

    original = coordinator_mod.CoordinatorComponent._persist_decision

    def buggy(self, state):
        return None

    coordinator_mod.CoordinatorComponent._persist_decision = buggy
    try:
        yield
    finally:
        coordinator_mod.CoordinatorComponent._persist_decision = original


#: Name -> context-manager factory, for the CLI's ``--plant-bug``.
PLANTABLE_BUGS = {"writeback-dup": planted_writeback_bug,
                  "lost-commit": planted_lost_commit_bug}
