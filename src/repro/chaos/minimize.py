"""Schedule minimization: shrink a failing nemesis timeline.

Given a schedule whose run violates an oracle, find a small *subsequence*
that still fails.  Events keep their original absolute times — a
subsequence is the same timeline with some faults simply not injected —
so each candidate replays deterministically through
:func:`repro.chaos.runner.run_chaos`.

The strategy mirrors :mod:`repro.analysis.divergence`'s bisection: try
each event alone (most planted bugs need exactly one fault window), then
bisect halves, then greedily drop one event at a time until the result
is 1-minimal (removing any single remaining event makes the failure
disappear).
"""

from __future__ import annotations

from typing import Callable, List, Sequence, TypeVar

Event = TypeVar("Event")


def minimize_schedule(events: Sequence[Event],
                      still_fails: Callable[[List[Event]], bool]
                      ) -> List[Event]:
    """Shrink ``events`` to a 1-minimal failing subsequence.

    ``still_fails(candidate)`` re-runs the scenario with only the
    candidate events injected and reports whether an oracle still
    trips.  The caller must already know the full schedule fails; an
    empty input returns empty.
    """
    current = list(events)
    if len(current) <= 1:
        return current
    # Fast path: one event alone often reproduces the failure.
    for event in current:
        if still_fails([event]):
            return [event]
    # Bisection: keep whichever half still fails, while one does.
    while len(current) > 2:
        half = len(current) // 2
        first, second = current[:half], current[half:]
        if still_fails(first):
            current = first
        elif still_fails(second):
            current = second
        else:
            break
    # Greedy pass: drop single events until 1-minimal.
    changed = True
    while changed and len(current) > 1:
        changed = False
        for i in range(len(current)):
            candidate = current[:i] + current[i + 1:]
            if still_fails(candidate):
                current = candidate
                changed = True
                break
    return current
