"""Integration tests for the layered (sequential 2PC) baseline."""

import pytest

from repro.bench.cluster import (
    CarouselCluster,
    DeploymentSpec,
    LayeredCluster,
)
from repro.core.config import BASIC, CarouselConfig
from repro.txn import REASON_CLIENT_ABORT, TransactionSpec


def make_cluster(seed=1):
    cluster = LayeredCluster(DeploymentSpec(seed=seed,
                                            jitter_fraction=0.0))
    cluster.run(500)
    return cluster


def submit_and_run(cluster, client, spec, ms=5000):
    results = []
    client.submit(spec, results.append)
    cluster.run(ms)
    assert results, "transaction did not complete"
    return results[0]


def transfer_spec():
    def compute(reads):
        return {"alice": (reads["alice"] or 0) - 5,
                "bob": (reads["bob"] or 0) + 5}
    return TransactionSpec(read_keys=("alice", "bob"),
                           write_keys=("alice", "bob"),
                           compute_writes=compute)


class TestLayeredCorrectness:
    def test_multi_partition_commit(self):
        cluster = make_cluster()
        cluster.populate({"alice": 100, "bob": 0})
        result = submit_and_run(cluster, cluster.client("us-west"),
                                transfer_spec())
        assert result.committed
        readback = submit_and_run(
            cluster, cluster.client("asia"),
            TransactionSpec(read_keys=("alice", "bob"), write_keys=()))
        assert readback.reads == {"alice": 95, "bob": 5}

    def test_writes_reach_all_replicas(self):
        cluster = make_cluster()
        result = submit_and_run(
            cluster, cluster.client("europe"),
            TransactionSpec(read_keys=(), write_keys=("w",),
                            compute_writes=lambda r: {"w": 7}))
        assert result.committed
        cluster.run(3000)
        pid = cluster.ring.partition_for("w")
        for server in cluster.replicas_of(pid):
            assert server.partitions[pid].store.read("w").value == 7

    def test_client_abort(self):
        cluster = make_cluster()
        result = submit_and_run(
            cluster, cluster.client("us-east"),
            TransactionSpec(read_keys=("a",), write_keys=("a",),
                            compute_writes=lambda r: None))
        assert not result.committed
        assert result.reason == REASON_CLIENT_ABORT

    def test_stale_read_aborts(self):
        # Another writer commits between our read round and our prepare:
        # version validation at prepare must abort us (no lost update).
        cluster = make_cluster()
        cluster.populate({"hot": 0})
        results = []
        spec = TransactionSpec(
            read_keys=("hot",), write_keys=("hot",),
            compute_writes=lambda r: {"hot": (r["hot"] or 0) + 1})
        spec2 = TransactionSpec(
            read_keys=("hot",), write_keys=("hot",),
            compute_writes=lambda r: {"hot": (r["hot"] or 0) + 1})
        cluster.client("us-west").submit(spec, results.append)
        cluster.client("europe").submit(spec2, results.append)
        cluster.run(15_000)
        assert len(results) == 2
        final = submit_and_run(
            cluster, cluster.client("asia"),
            TransactionSpec(read_keys=("hot",), write_keys=()))
        committed = sum(1 for r in results if r.committed)
        assert final.reads["hot"] == committed  # no lost updates

    def test_no_lost_updates_under_contention(self):
        cluster = make_cluster(seed=3)
        results = []
        spec = lambda: TransactionSpec(
            read_keys=("ctr",), write_keys=("ctr",),
            compute_writes=lambda r: {"ctr": (r["ctr"] or 0) + 1})
        for i in range(20):
            client = cluster.clients[i % len(cluster.clients)]
            cluster.kernel.schedule(i * 120.0, client.submit, spec(),
                                    results.append)
        cluster.run(60_000)
        assert len(results) == 20
        committed = sum(1 for r in results if r.committed)
        final = submit_and_run(
            cluster, cluster.client("us-west"),
            TransactionSpec(read_keys=("ctr",), write_keys=()))
        assert (final.reads["ctr"] or 0) == committed


class TestLayeredIsSlower:
    """The paper's motivating claim: layering 2PC on consensus costs more
    sequential WANRTs than Carousel's overlapped design (§1, §2.2)."""

    def test_carousel_beats_layered_on_remote_partition_txn(self):
        latencies = {}
        for name in ("layered", "carousel"):
            if name == "layered":
                cluster = make_cluster(seed=11)
            else:
                cluster = CarouselCluster(
                    DeploymentSpec(seed=11, jitter_fraction=0.0),
                    CarouselConfig(mode=BASIC))
                cluster.run(500)
            cluster.populate({"alice": 1, "bob": 2})
            result = submit_and_run(cluster, cluster.client("us-west"),
                                    transfer_spec())
            assert result.committed
            latencies[name] = result.latency_ms
        # Carousel Basic overlaps prepare with read+commit; the layered
        # baseline pays for them sequentially.
        assert latencies["carousel"] < latencies["layered"]
        assert latencies["layered"] > 1.3 * latencies["carousel"]
