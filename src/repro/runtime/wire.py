"""Length-prefixed wire codec for the protocol ``Message`` dataclasses.

The asyncio/TCP backend ships the *existing* message dataclasses — no
parallel protobuf schema to drift from the simulator's types.  A message
is encoded as a compact JSON envelope::

    {"t": "ReadReply", "src": ..., "dst": ..., "at": 12.5, "p": {...}}

framed with a 4-byte big-endian length prefix.  Field payloads use a
tagged encoding that round-trips every value shape the protocols put in
messages (the determinism linter already bans sets in payloads, but the
codec still handles them for completeness):

=============  =======================================================
JSON shape     Python value
=============  =======================================================
null/bool/str  as themselves
number         ``int`` or finite ``float`` (JSON distinguishes 1/1.0)
array          ``list``
{"__t": [...]} ``tuple``
{"__b": s}     ``bytes`` (base64)
{"__f": s}     non-finite ``float`` (``"inf"``/``"-inf"``/``"nan"``)
{"__s"/"__fs"} ``set`` / ``frozenset`` (sorted by repr)
{"__d": [[k,v],...]}  ``dict`` (keys may be any encodable value)
{"__dc": name, "f": {...}}  registered dataclass (``TID``,
               ``PartitionSets``, ``LogEntry``, WAL/Raft records...)
=============  =======================================================

The type registry is built by importing the protocol message modules and
collecting every dataclass they define; the round-trip property suite
(``tests/property/test_wire_roundtrip.py``) cross-checks the registry
against the static message graph (:mod:`repro.analysis.msggraph`) so a
newly added message type cannot silently miss wire coverage.
"""

from __future__ import annotations

import base64
import dataclasses
import importlib
import json
import math
import struct
from typing import Any, Dict, Optional, Tuple, Type

from repro.sim.message import Message

#: Modules whose dataclasses go on the wire: the four protocols' message
#: modules plus the payload dataclasses they embed (transaction ids,
#: partition key sets, Raft log entries and the commands they carry —
#: including the new-leader no-op from ``repro.raft.node`` — and the
#: replicated command records).
PAYLOAD_MODULES = (
    "repro.txn",
    "repro.raft.log",
    "repro.raft.node",
    "repro.raft.messages",
    "repro.core.messages",
    "repro.core.records",
    "repro.layered.messages",
    "repro.tapir.messages",
)

#: Frames above this size are refused on both ends — a corrupted length
#: prefix must not make the reader try to buffer gigabytes.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LEN = struct.Struct(">I")


class WireError(ValueError):
    """Unknown type tag, oversized frame, or malformed payload."""


def _collect_registry() -> Dict[str, Type]:
    registry: Dict[str, Type] = {}
    for module_name in PAYLOAD_MODULES:
        module = importlib.import_module(module_name)
        for name, obj in sorted(vars(module).items()):
            if not (isinstance(obj, type) and dataclasses.is_dataclass(obj)):
                continue
            if obj.__module__ != module_name:
                continue  # re-exported from elsewhere (e.g. PartitionSets)
            existing = registry.get(name)
            if existing is not None and existing is not obj:
                raise WireError(
                    f"wire type name collision: {name} defined in both "
                    f"{existing.__module__} and {module_name}")
            registry[name] = obj
    return registry


_REGISTRY: Optional[Dict[str, Type]] = None


def registry() -> Dict[str, Type]:
    """Type-name -> dataclass for every wire-encodable type (cached)."""
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = _collect_registry()
    return _REGISTRY


def register_extra(cls: Type) -> Type:
    """Register a dataclass outside :data:`PAYLOAD_MODULES` (used by the
    runtime's control frames).  Returns ``cls`` so it works as a
    decorator."""
    if not dataclasses.is_dataclass(cls):
        raise WireError(f"{cls!r} is not a dataclass")
    reg = registry()
    existing = reg.get(cls.__name__)
    if existing is not None and existing is not cls:
        raise WireError(f"wire type name collision: {cls.__name__}")
    reg[cls.__name__] = cls
    return cls


def message_type_names() -> Tuple[str, ...]:
    """Names of the registered :class:`Message` subclasses, sorted."""
    return tuple(sorted(name for name, cls in registry().items()
                        if issubclass(cls, Message)))


# ---------------------------------------------------------------------------
# Value encoding
# ---------------------------------------------------------------------------

def encode_value(value: Any) -> Any:
    """Recursively encode ``value`` into the tagged JSON-safe form."""
    if value is None or value is True or value is False:
        return value
    if isinstance(value, str):
        return value
    if isinstance(value, bool):  # pragma: no cover - caught above
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if math.isfinite(value):
            return value
        return {"__f": repr(value)}
    if isinstance(value, bytes):
        return {"__b": base64.b64encode(value).decode("ascii")}
    if isinstance(value, list):
        return [encode_value(item) for item in value]
    if isinstance(value, tuple):
        return {"__t": [encode_value(item) for item in value]}
    if isinstance(value, dict):
        # Insertion-order pairs; keys need not be strings (TID keys).
        return {"__d": [[encode_value(k), encode_value(v)]
                        for k, v in value.items()]}
    if isinstance(value, frozenset):
        return {"__fs": [encode_value(item)
                         for item in sorted(value, key=repr)]}
    if isinstance(value, set):
        return {"__s": [encode_value(item)
                        for item in sorted(value, key=repr)]}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__
        if registry().get(name) is not type(value):
            raise WireError(f"unregistered dataclass on the wire: "
                            f"{type(value).__module__}.{name}")
        fields = {f.name: encode_value(getattr(value, f.name))
                  for f in dataclasses.fields(value)}
        return {"__dc": name, "f": fields}
    raise WireError(f"unencodable value on the wire: {value!r} "
                    f"({type(value).__name__})")


def decode_value(obj: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, list):
        return [decode_value(item) for item in obj]
    if isinstance(obj, dict):
        if "__t" in obj:
            return tuple(decode_value(item) for item in obj["__t"])
        if "__d" in obj:
            return {decode_value(k): decode_value(v)
                    for k, v in obj["__d"]}
        if "__b" in obj:
            return base64.b64decode(obj["__b"])
        if "__f" in obj:
            return float(obj["__f"])
        if "__s" in obj:
            return {decode_value(item) for item in obj["__s"]}
        if "__fs" in obj:
            return frozenset(decode_value(item) for item in obj["__fs"])
        if "__dc" in obj:
            cls = registry().get(obj["__dc"])
            if cls is None:
                raise WireError(f"unknown wire dataclass {obj['__dc']!r}")
            return cls(**{name: decode_value(v)
                          for name, v in obj["f"].items()})
        raise WireError(f"malformed tagged value: {sorted(obj)}")
    raise WireError(f"undecodable JSON shape: {obj!r}")


# ---------------------------------------------------------------------------
# Message envelopes and framing
# ---------------------------------------------------------------------------

def encode_message(msg: Message) -> bytes:
    """Serialize one message (payload fields plus routing envelope)."""
    name = type(msg).__name__
    cls = registry().get(name)
    if cls is not type(msg):
        raise WireError(f"unregistered message type on the wire: "
                        f"{type(msg).__module__}.{name}")
    payload = {f.name: encode_value(getattr(msg, f.name))
               for f in dataclasses.fields(msg)}
    envelope = {"t": name, "src": msg.src, "dst": msg.dst,
                "at": msg.sent_at, "p": payload}
    return json.dumps(envelope, separators=(",", ":"),
                      allow_nan=False).encode("utf-8")


def decode_message(data: bytes) -> Message:
    """Inverse of :func:`encode_message`."""
    try:
        envelope = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"malformed frame: {exc}") from None
    if not isinstance(envelope, dict) or "t" not in envelope:
        raise WireError("frame has no message type")
    cls = registry().get(envelope["t"])
    if cls is None:
        raise WireError(f"unknown wire message type {envelope['t']!r}")
    msg = cls(**{name: decode_value(v)
                 for name, v in envelope.get("p", {}).items()})
    msg.src = envelope.get("src")
    msg.dst = envelope.get("dst")
    msg.sent_at = envelope.get("at")
    return msg


def frame(data: bytes) -> bytes:
    """Prefix ``data`` with its 4-byte big-endian length."""
    if len(data) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(data)} bytes exceeds the "
                        f"{MAX_FRAME_BYTES}-byte cap")
    return _LEN.pack(len(data)) + data


async def read_frame(reader) -> Optional[bytes]:
    """Read one length-prefixed frame; ``None`` on clean EOF."""
    import asyncio

    try:
        header = await reader.readexactly(_LEN.size)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"incoming frame of {length} bytes exceeds the "
                        f"{MAX_FRAME_BYTES}-byte cap")
    try:
        return await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None


def roundtrip(msg: Message) -> Message:
    """Encode then decode (test helper)."""
    return decode_message(encode_message(msg))
