"""protolint rule tests: every rule PL001-PL008 fires on a fixture, the
real tree is clean, and the planted-bug self-checks detect the plants.

Fixtures are minimal protocol modules under a ``core/`` path (so they
land in the ``carousel`` protocol) checked against purpose-built
contracts; the tree-level tests run the shipped contracts against the
real protocol packages.
"""

import textwrap
from pathlib import Path

import pytest

from repro.analysis.fsm import FSMSpec
from repro.analysis.msggraph import build_graph
from repro.analysis.protolint import (CATALOG_BEGIN, CATALOG_END,
                                      MessageContract, PROTOCOLS,
                                      apply_plant, default_paths,
                                      embed_catalog, extract_doc_catalog,
                                      lint_paths, lint_sources,
                                      render_catalog)

MESSAGES = textwrap.dedent("""
    from dataclasses import dataclass

    @dataclass
    class Req(Message):
        tid: int = 0

    @dataclass
    class Rep(Message):
        tid: int = 0
""")

#: A complete, conformant fixture protocol: Client sends Req (with a
#: retry timer), Server handles it behind a dedup guard and replies Rep,
#: Client handles Rep.
CLEAN_NODE = textwrap.dedent("""
    class Server:
        def handle_app_message(self, msg):
            if isinstance(msg, Req):
                self.on_req(msg)

        def on_req(self, msg):
            if msg.tid in self.seen:
                return
            self.seen.add(msg.tid)
            self.send(msg.src, Rep(tid=msg.tid))

    class Client:
        def handle_message(self, msg):
            if isinstance(msg, Rep):
                self.on_rep(msg)

        def on_rep(self, msg):
            self.done[msg.tid] = msg

        def go(self, dst):
            self.send(dst, Req(tid=1))
            self.set_timer(10.0, self.go)
""")

CONTRACT = {"carousel": {
    "Req": MessageContract(("Server",), replies=("Rep",),
                           retried=True, dedup=True),
    "Rep": MessageContract(("Client",)),
}}

#: FSM specs that never match fixture paths, so fixture tests exercise
#: exactly the rule under test.
NO_SPECS = ()


def run(contracts=CONTRACT, specs=NO_SPECS, **modules):
    """Lint fixture modules, return sorted (code, path:line) pairs."""
    sources = {f"fx/core/{name}.py": textwrap.dedent(text)
               for name, text in modules.items()}
    findings = lint_sources(sources, contracts=contracts, specs=specs)
    return sorted((f.rule.code, f.message) for f in findings)


def codes(contracts=CONTRACT, specs=NO_SPECS, **modules):
    return sorted(code for code, _ in
                  run(contracts=contracts, specs=specs, **modules))


def test_clean_fixture_protocol_has_no_findings():
    assert run(messages=MESSAGES, node=CLEAN_NODE) == []


# ----------------------------------------------------------------------
# PL001 dead-letter
# ----------------------------------------------------------------------
def test_pl001_receiver_without_branch():
    node = CLEAN_NODE.replace(
        "        if isinstance(msg, Req):\n"
        "            self.on_req(msg)\n",
        "        pass\n")
    found = run(messages=MESSAGES, node=node)
    assert any(code == "PL001" and "Server has no dispatch branch" in msg
               for code, msg in found)


def test_pl001_message_missing_from_contract():
    contracts = {"carousel": {"Req": CONTRACT["carousel"]["Req"]}}
    found = run(contracts=contracts, messages=MESSAGES, node=CLEAN_NODE)
    assert any(code == "PL001" and
               "Rep is not declared in the carousel contract" in msg
               for code, msg in found)


def test_pl001_contract_entry_without_message():
    contracts = {"carousel": dict(CONTRACT["carousel"],
                                  Ghost=MessageContract(("Server",)))}
    found = run(contracts=contracts, messages=MESSAGES, node=CLEAN_NODE)
    assert any(code == "PL001" and "Ghost" in msg for code, msg in found)


def test_pl001_tuple_dispatch_with_dropped_inner_branch():
    """The outer tuple branch still matches, but the inner dispatcher
    lost its branch — protolint must follow the redirect."""
    node = textwrap.dedent("""
        _ALL = (Req, Rep)

        class Server:
            def handle_app_message(self, msg):
                if isinstance(msg, _ALL):
                    self.dispatch_partition_message(msg)

            def dispatch_partition_message(self, msg):
                if isinstance(msg, Rep):
                    self.on_rep(msg)

            def on_rep(self, msg):
                self.done.add(msg.tid)
    """)
    contracts = {"carousel": {
        "Req": MessageContract(("Server",)),
        "Rep": MessageContract(("Server",)),
    }}
    found = run(contracts=contracts, messages=MESSAGES, node=node)
    assert any(code == "PL001" and msg.startswith("Req is declared")
               for code, msg in found)
    assert not any("Rep is declared" in msg for code, msg in found
                   if code == "PL001")


# ----------------------------------------------------------------------
# PL002 dead-handler
# ----------------------------------------------------------------------
def test_pl002_branch_in_non_receiver_class():
    node = CLEAN_NODE + textwrap.dedent("""
        class Bystander:
            def handle_message(self, msg):
                if isinstance(msg, Rep):
                    self.on_rep(msg)

            def on_rep(self, msg):
                self.x = msg
    """)
    found = run(messages=MESSAGES, node=node)
    assert any(code == "PL002" and "Bystander" in msg
               for code, msg in found)


def test_pl002_branch_for_never_sent_type():
    node = CLEAN_NODE.replace("        self.send(dst, Req(tid=1))\n",
                              "")
    found = run(messages=MESSAGES, node=node)
    assert any(code == "PL002" and "never sent anywhere" in msg
               for code, msg in found)


# ----------------------------------------------------------------------
# PL003 never-sent
# ----------------------------------------------------------------------
def test_pl003_constructed_but_never_sent():
    node = CLEAN_NODE.replace(
        "        self.send(dst, Req(tid=1))\n",
        "        queued = Req(tid=1)\n"
        "        self.backlog.append(queued)\n")
    found = run(messages=MESSAGES, node=node)
    assert any(code == "PL003" and "constructed but never sent" in msg
               for code, msg in found)


def test_pl003_never_constructed():
    node = CLEAN_NODE.replace("        self.send(dst, Req(tid=1))\n",
                              "")
    found = run(messages=MESSAGES, node=node)
    assert any(code == "PL003" and "never constructed" in msg
               for code, msg in found)


# ----------------------------------------------------------------------
# PL004 missing-reply
# ----------------------------------------------------------------------
def test_pl004_handler_path_without_reply():
    node = CLEAN_NODE.replace(
        "        self.send(msg.src, Rep(tid=msg.tid))\n",
        "        self.log.append(msg)\n")
    # Keep Rep constructible/sendable elsewhere so only PL004 fires.
    node += textwrap.dedent("""
        class Other:
            def poke(self, dst):
                self.send(dst, Rep(tid=9))
                self.set_timer(1.0, self.poke)
    """)
    found = run(messages=MESSAGES, node=node)
    assert any(code == "PL004" and "Req" in msg for code, msg in found)


def test_pl004_reply_through_helper_closure_is_clean():
    node = CLEAN_NODE.replace(
        "        self.send(msg.src, Rep(tid=msg.tid))\n",
        "        self.finish(msg)\n") + textwrap.dedent("""
        class ServerHelpers:
            def finish(self, msg):
                def replicated(_):
                    self.send(msg.src, Rep(tid=msg.tid))
                self.propose(replicated)
    """)
    assert run(messages=MESSAGES, node=node) == []


# ----------------------------------------------------------------------
# PL005 no-retry-coverage
# ----------------------------------------------------------------------
def test_pl005_retried_sender_without_timer():
    node = CLEAN_NODE.replace(
        "        self.set_timer(10.0, self.go)\n", "")
    found = run(messages=MESSAGES, node=node)
    assert found == [("PL005",
                      "Req is declared retried, but Client sends it with "
                      "no timer/RetryPolicy machinery in the class")]


def test_pl005_retry_policy_reference_counts_as_cover():
    node = CLEAN_NODE.replace(
        "        self.set_timer(10.0, self.go)\n",
        "        self.config.retry_policy.delay_ms(0)\n")
    assert run(messages=MESSAGES, node=node) == []


# ----------------------------------------------------------------------
# PL006 handler-mutation
# ----------------------------------------------------------------------
def test_pl006_unguarded_mutation_in_dedup_handler():
    node = CLEAN_NODE.replace(
        "        if msg.tid in self.seen:\n"
        "            return\n", "")
    found = run(messages=MESSAGES, node=node)
    assert any(code == "PL006" and "duplicate-delivery guard" in msg
               for code, msg in found)


def test_pl006_guard_anywhere_on_path_is_clean():
    assert run(messages=MESSAGES, node=CLEAN_NODE) == []


def test_pl006_not_checked_without_dedup_contract():
    contracts = {"carousel": {
        "Req": MessageContract(("Server",), replies=("Rep",),
                               retried=True, dedup=False),
        "Rep": MessageContract(("Client",)),
    }}
    node = CLEAN_NODE.replace(
        "        if msg.tid in self.seen:\n"
        "            return\n", "")
    assert not any(code == "PL006" for code, _ in
                   run(contracts=contracts, messages=MESSAGES, node=node))


# ----------------------------------------------------------------------
# PL007 field-mismatch
# ----------------------------------------------------------------------
RECORDS = textwrap.dedent("""
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class Decision:
        tid: int
        verdict: str
        writes: tuple = ()
""")


def pl007(body):
    contracts = {"carousel": {}}
    return [msg for code, msg in
            run(contracts=contracts, records=RECORDS,
                node="def build(extra):\n" + textwrap.indent(
                    textwrap.dedent(body), "    "))
            if code == "PL007"]


def test_pl007_unknown_keyword():
    (msg,) = pl007('return Decision(tid=1, verdict="c", extra_field=2)')
    assert "unknown field(s) extra_field" in msg


def test_pl007_missing_required_field():
    (msg,) = pl007("return Decision(tid=1)")
    assert "omits required field(s) verdict" in msg


def test_pl007_too_many_positionals():
    (msg,) = pl007('return Decision(1, "c", (), "extra")')
    assert "4 positional arguments" in msg


def test_pl007_valid_and_star_calls_are_clean():
    assert pl007('a = Decision(1, "c")\n'
                 'b = Decision(tid=2, verdict="a", writes=())\n'
                 'c = Decision(**extra)\n'
                 'return a, b, c') == []


# ----------------------------------------------------------------------
# PL008 fsm-conformance
# ----------------------------------------------------------------------
FSM_FIXTURE_SPEC = (FSMSpec(
    name="fixture", path_fragment="core/machine.py", attr="phase",
    states=("idle", "busy", "done"), initial=("idle",),
    transitions={"idle": ("busy",), "busy": ("done",)}),)

FSM_HEADER = """
    IDLE = "idle"
    BUSY = "busy"
    DONE = "done"
    WEIRD = "weird"
"""


def fsm_run(body):
    sources = {"fx/core/machine.py":
               textwrap.dedent(FSM_HEADER) + textwrap.dedent(body)}
    findings = lint_sources(sources, contracts={},
                            specs=FSM_FIXTURE_SPEC)
    return sorted(f.message for f in findings
                  if f.rule.code == "PL008")


def test_pl008_clean_machine():
    assert fsm_run("""
        class M:
            phase: str = IDLE

            def start(self):
                if self.phase == IDLE:
                    self.phase = BUSY

            def finish(self):
                if self.phase == BUSY:
                    self.phase = DONE
    """) == []


def test_pl008_undeclared_assigned_state():
    (msg,) = fsm_run("""
        class M:
            phase: str = IDLE

            def boom(self):
                self.phase = WEIRD

            def a(self):
                self.phase = BUSY

            def b(self):
                self.phase = DONE
    """)
    assert "undeclared state 'weird'" in msg


def test_pl008_undeclared_compared_state():
    messages = fsm_run("""
        class M:
            phase: str = IDLE

            def check(self):
                return self.phase == WEIRD

            def a(self):
                self.phase = BUSY

            def b(self):
                self.phase = DONE
    """)
    assert any("compares .phase against undeclared state 'weird'" in m
               for m in messages)


def test_pl008_undeclared_transition():
    (msg,) = fsm_run("""
        class M:
            phase: str = IDLE

            def skip(self):
                if self.phase == IDLE:
                    self.phase = DONE

            def a(self):
                self.phase = BUSY
    """)
    assert "transition 'idle' -> 'done' is not declared" in msg


def test_pl008_bad_initial_default():
    messages = fsm_run("""
        class M:
            phase: str = BUSY

            def a(self):
                if self.phase == BUSY:
                    self.phase = DONE

            def b(self):
                self.phase = IDLE
    """)
    assert any("class default 'busy' is not a declared initial state"
               in m for m in messages)


def test_pl008_bad_init_assignment():
    messages = fsm_run("""
        class M:
            def __init__(self):
                self.phase = BUSY

            def a(self):
                if self.phase == BUSY:
                    self.phase = DONE

            def b(self):
                self.phase = IDLE
    """)
    assert any("__init__ sets .phase to 'busy'" in m for m in messages)


def test_pl008_never_entered_state():
    (msg,) = fsm_run("""
        class M:
            phase: str = IDLE

            def a(self):
                if self.phase == IDLE:
                    self.phase = BUSY
    """)
    assert "declared state 'done' is never entered" in msg


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def test_protolint_suppression_by_code_and_slug():
    node = CLEAN_NODE.replace(
        "        self.set_timer(10.0, self.go)\n", "")
    suppressed = node.replace(
        "        self.send(dst, Req(tid=1))\n",
        "        self.send(dst, Req(tid=1))  "
        "# protolint: ignore[PL005]\n")
    sources = {"fx/core/messages.py": MESSAGES,
               "fx/core/node.py": suppressed}
    assert lint_sources(sources, contracts=CONTRACT, specs=NO_SPECS) == []
    kept = lint_sources(sources, contracts=CONTRACT, specs=NO_SPECS,
                        keep_suppressed=True)
    assert [f.rule.code for f in kept] == ["PL005"]


def test_detlint_comment_does_not_silence_protolint():
    node = CLEAN_NODE.replace(
        "        self.set_timer(10.0, self.go)\n", "")
    annotated = node.replace(
        "        self.send(dst, Req(tid=1))\n",
        "        self.send(dst, Req(tid=1))  "
        "# detlint: ignore[PL005]\n")
    sources = {"fx/core/messages.py": MESSAGES,
               "fx/core/node.py": annotated}
    findings = lint_sources(sources, contracts=CONTRACT, specs=NO_SPECS)
    assert [f.rule.code for f in findings] == ["PL005"]


# ----------------------------------------------------------------------
# Tree-level checks and planted-bug self-checks
# ----------------------------------------------------------------------
def test_real_tree_is_clean():
    assert lint_paths() == []


def test_plant_dead_handler_fires_pl001():
    findings = lint_paths(plant="dead-handler")
    assert any(f.rule.code == "PL001" and "ClientHeartbeat" in f.message
               for f in findings)


def test_plant_missing_reply_fires_pl004():
    findings = lint_paths(plant="missing-reply")
    assert any(f.rule.code == "PL004" and "TapirRead" in f.message
               for f in findings)


def test_unknown_plant_rejected():
    with pytest.raises(ValueError, match="unknown plant"):
        apply_plant({"core/x.py": ""}, "nonsense")


def test_plant_anchor_drift_raises():
    with pytest.raises(ValueError, match="anchor not found"):
        apply_plant({"fx/core/server.py": "nothing here\n"},
                    "dead-handler")


def test_coordinator_dispatch_tuple_matches_contract():
    """Regression for making ``_COORDINATOR_MESSAGES`` load-bearing:
    the dispatch tuples must cover exactly the contracted
    CarouselServer-bound message types."""
    from repro.core.server import (_COORDINATOR_MESSAGES,
                                   _PARTITION_MESSAGES)
    dispatched = {t.__name__ for t in _COORDINATOR_MESSAGES}
    dispatched |= {t.__name__ for t in _PARTITION_MESSAGES}
    contracted = {name for name, c in PROTOCOLS["carousel"].items()
                  if "CarouselServer" in c.receivers}
    assert dispatched == contracted


def test_catalog_matches_protocol_md_byte_for_byte():
    graph = build_graph(
        {p: Path(p).read_text(encoding="utf-8")
         for paths in [default_paths()]
         for d in paths for p in map(str, sorted(Path(d).rglob("*.py")))})
    catalog = render_catalog(graph)
    doc = Path("PROTOCOL.md").read_text(encoding="utf-8")
    assert extract_doc_catalog(doc) == catalog


def test_embed_catalog_round_trip():
    doc = (f"# Title\n\n{CATALOG_BEGIN}\nold\n{CATALOG_END}\n\ntail\n")
    updated = embed_catalog(doc, "new catalog\n")
    assert extract_doc_catalog(updated) == "new catalog\n"
    assert updated.startswith("# Title")
    assert updated.endswith("tail\n")
    with pytest.raises(ValueError, match="no .* section"):
        embed_catalog("no markers", "x\n")
