#!/usr/bin/env python
"""A Retwis-style social network on Carousel (the paper's §6.2 workload).

Simulates users around the world adding friends, posting tweets, and
loading timelines against a five-region deployment, then prints per-type
latency statistics — showing the read-only optimization (§4.4.2) and CPC
(§4.2) at work.  Run with::

    python examples/retwis_social_network.py
"""

from repro.bench.cluster import CarouselCluster, DeploymentSpec
from repro.core.config import BASIC, FAST, CarouselConfig
from repro.workloads.driver import WorkloadDriver
from repro.workloads.retwis import RetwisWorkload


def run_mode(mode: str):
    cluster = CarouselCluster(
        DeploymentSpec(seed=3, clients_per_dc=4),
        CarouselConfig(mode=mode))
    workload = RetwisWorkload(n_keys=200_000, seed=11)
    driver = WorkloadDriver(cluster, workload, target_tps=100,
                            duration_ms=12_000, warmup_ms=2_000,
                            cooldown_ms=2_000)
    return driver.run()


def main() -> None:
    for mode in (BASIC, FAST):
        stats = run_mode(mode)
        print(f"\nCarousel {mode.capitalize()} — Retwis at 100 tps "
              f"({stats.latency.count} committed transactions)")
        print(f"  overall median latency: {stats.latency.median():6.1f} ms, "
              f"p95: {stats.latency.p(95):6.1f} ms, "
              f"abort rate: {stats.abort_rate * 100:.1f}%")
        for txn_type in sorted(stats.by_type):
            recorder = stats.by_type[txn_type]
            print(f"  {txn_type:16s} median {recorder.median():6.1f} ms "
                  f"({recorder.count} txns)")
    print("\nLoad Timeline (read-only, 50% of traffic) commits in one "
          "wide-area round trip;\nwith CPC, read-write transactions get "
          "close to one round trip when local replicas exist.")


if __name__ == "__main__":
    main()
