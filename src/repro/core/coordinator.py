"""Transaction-coordinator logic.

Carousel's coordinators are consensus group leaders, so their state is
fault tolerant (§3.3): the transaction's read/write sets, its write data,
and its final decision are all replicated to the coordinating group.  The
coordinator may reveal a commit decision to the client as soon as all
participants prepared and the write data is replicated — the decision is
then recomputable by any successor (§4.3).

Fast-path accounting (§4.2): for each participant partition the coordinator
accepts a prepare decision from CPC's fast path only when a supermajority
(⌈3f/2⌉+1) of that partition's replicas — including its leader — voted the
same decision with the leader's data versions and term.  Otherwise it waits
for the slow path's :class:`~repro.core.messages.PrepareResult`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set, Tuple

from repro.core.messages import (
    ClientHeartbeat,
    CommitRequest,
    CoordPrepareRequest,
    FastVote,
    PartitionSets,
    PrepareQuery,
    PrepareResult,
    TxnReply,
    Writeback,
    WritebackAck,
)
from repro.core.occ import ABORT, PREPARED
from repro.trace.tracer import (
    SPAN_CPC_FAST,
    SPAN_CPC_SLOW,
    SPAN_RECOVERY,
    SPAN_WRITEBACK,
)
from repro.core.records import (
    CoordDecisionRecord,
    CoordSetsRecord,
    CoordWriteDataRecord,
)
from repro.txn import (
    REASON_CLIENT_ABORT,
    REASON_COMMITTED,
    REASON_CONFLICT,
    REASON_STALE_READ,
    REASON_TIMEOUT,
    TID,
)
from repro.wal.records import CoordDecisionWal, CoordFinishWal

COMMIT = "commit"

#: Coordinator durability FSM: normal operation vs. WAL replay after a
#: power cycle (decisions are journaled in ACTIVE, re-driven in RECOVERY).
WAL_ACTIVE = "active"
WAL_RECOVERY = "recovery"


def supermajority(group_size: int) -> int:
    """CPC's fast-quorum size: ⌈3f/2⌉+1 for a 2f+1 group (§4.2)."""
    f = (group_size - 1) // 2
    return math.ceil(1.5 * f) + 1


@dataclass
class CoordTxnState:
    """Everything the coordinator tracks for one transaction."""

    tid: TID
    client_id: str = ""
    group_id: str = ""
    participants: Dict[str, PartitionSets] = field(default_factory=dict)
    sets_replicated: bool = False
    #: Final per-partition prepare outcome: pid -> (decision, versions).
    decisions: Dict[str, Tuple[str, Tuple[Tuple[str, int], ...]]] = \
        field(default_factory=dict)
    #: Raw fast votes: pid -> replica -> (decision, versions, term, leader?).
    fast_votes: Dict[str, Dict[str, Tuple[str, tuple, int, bool]]] = \
        field(default_factory=dict)
    fast_path_partitions: Set[str] = field(default_factory=set)
    commit_requested: bool = False
    client_abort: bool = False
    writes: Dict[str, Any] = field(default_factory=dict)
    client_read_versions: Dict[str, int] = field(default_factory=dict)
    write_data_replicated: bool = False
    decision: Optional[str] = None
    reason: str = ""
    replied: bool = False
    #: Rebuilt from the coordinator's decision WAL after a power cycle:
    #: the writeback phase is re-driven even before (re)winning leadership,
    #: because the durable decision is this node's own obligation.
    wal_recovered: bool = False
    writeback_acks: Set[str] = field(default_factory=set)
    #: Retransmission counters driving the backoff schedules.
    requery_attempts: int = 0
    writeback_attempts: int = 0
    last_heartbeat_ms: float = 0.0
    heartbeat_timer: Any = None
    writeback_timer: Any = None
    requery_timer: Any = None
    #: Tracing: virtual time of the first fast vote seen per partition.
    trace_first_ms: Dict[str, float] = field(default_factory=dict)
    #: Tracing: the open writeback span, if any.
    trace_writeback_span: Any = None

    def all_prepared(self) -> bool:
        """Every participant partition reported a prepared decision."""
        return (bool(self.participants)
                and all(pid in self.decisions for pid in self.participants)
                and all(d == PREPARED
                        for d, __ in self.decisions.values()))

    def any_aborted(self) -> bool:
        """At least one participant partition failed to prepare."""
        return any(d == ABORT for d, __ in self.decisions.values())


class CoordinatorComponent:
    """Coordinator role of one Carousel data server.

    The same component exists on every server; followers of a coordinating
    group keep their mirror of transaction state up to date through the
    Raft apply path, ready to take over on leader failure.
    """

    def __init__(self, server):
        self.server = server
        self.states: Dict[TID, CoordTxnState] = {}
        #: Outcomes of finished transactions, for late/duplicate messages.
        self.finished: Dict[TID, str] = {}
        self.wal_state = WAL_ACTIVE
        self.fast_path_decisions = 0
        self.slow_path_decisions = 0

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _member_for(self, group_id: str):
        return self.server.members.get(group_id)

    def _is_leader_of(self, group_id: str) -> bool:
        member = self._member_for(group_id)
        return member is not None and member.is_leader

    def _state(self, tid: TID) -> Optional[CoordTxnState]:
        return self.states.get(tid)

    def _send(self, dst: str, msg) -> None:
        self.server.send(dst, msg)

    @property
    def config(self):
        return self.server.config

    # ------------------------------------------------------------------
    # Client-facing handlers (leader of the coordinating group)
    # ------------------------------------------------------------------
    def on_coord_prepare(self, msg: CoordPrepareRequest) -> None:
        """Register a transaction and replicate its read/write sets (§4.1.4)."""
        if msg.tid in self.finished:
            self._reply_finished(msg.src, msg.tid)
            return
        if not self._is_leader_of(msg.group_id):
            return  # stale directory; the client will retry
        state = self.states.get(msg.tid)
        if state is None:
            state = CoordTxnState(tid=msg.tid)
            self.states[msg.tid] = state
        if state.sets_replicated or state.participants:
            # Duplicate registration.  If the transaction was already
            # decided (e.g. a heartbeat-timeout abort whose TxnReply was
            # lost), retransmit the reply so the client can terminate.
            if state.decision is not None:
                self._reply(state, force=True)
            return
        state.client_id = msg.client_id
        state.group_id = msg.group_id
        state.participants = dict(msg.participants)
        state.last_heartbeat_ms = self.server.kernel.now
        self._arm_heartbeat_monitor(state)
        record = CoordSetsRecord(
            tid=msg.tid, client_id=msg.client_id,
            participants=tuple(sorted(msg.participants.items())))
        member = self._member_for(msg.group_id)
        member.propose(record,
                       on_committed=lambda __: self._maybe_decide(state))

    def on_commit_request(self, msg: CommitRequest) -> None:
        """Handle the client's commit or abort request (§4.1.2)."""
        if msg.tid in self.finished:
            self._reply_finished(msg.src, msg.tid)
            return
        state = self._state(msg.tid)
        if state is None or not self._is_leader_of(state.group_id):
            return  # unknown here; client retry will find the new leader
        if state.decision is not None:
            # A retransmitted commit request after the decision was made
            # usually means the original TxnReply was lost: re-send it
            # even though `replied` is already set.
            self._reply(state, force=True)
            return
        if state.commit_requested:
            # Retransmission — possibly to a successor coordinator that
            # adopted the replicated state.  Make sure the decision is
            # being actively driven.
            self._maybe_decide(state)
            if state.decision is None and state.requery_timer is None:
                self._requery_prepares(state)
            return
        state.commit_requested = True
        if msg.abort:
            # The application chose to abort: the coordinator may abort
            # immediately, without waiting for prepares (§4.1.2).
            state.client_abort = True
            self._decide(state, ABORT, REASON_CLIENT_ABORT)
            return
        state.writes = dict(msg.writes)
        state.client_read_versions = dict(msg.read_versions)
        record = CoordWriteDataRecord(
            tid=msg.tid, writes=tuple(sorted(msg.writes.items())),
            read_versions=tuple(sorted(msg.read_versions.items())))
        member = self._member_for(state.group_id)

        def replicated(__):
            # write_data_replicated is set by the apply path; this callback
            # only triggers the decision check at the leader.
            self._maybe_decide(state)

        member.propose(record, on_committed=replicated)
        # If prepare results go missing (a participant leader died mid
        # prepare), re-solicit them from the current leaders.
        self._arm_requery(state)

    def on_heartbeat(self, msg: ClientHeartbeat) -> None:
        """Note a client heartbeat (§4.3.1)."""
        state = self._state(msg.tid)
        if state is not None:
            state.last_heartbeat_ms = self.server.kernel.now

    # ------------------------------------------------------------------
    # Participant-facing handlers
    # ------------------------------------------------------------------
    def on_fast_vote(self, msg: FastVote) -> None:
        """Accumulate a CPC fast-path vote and evaluate the quorum (§4.2)."""
        if msg.tid in self.finished:
            return
        state = self._state(msg.tid)
        if state is None:
            # Votes can arrive before the client's CoordPrepareRequest.
            state = CoordTxnState(tid=msg.tid)
            self.states[msg.tid] = state
        votes = state.fast_votes.setdefault(msg.partition_id, {})
        votes.setdefault(msg.replica_id,
                         (msg.decision, msg.read_versions, msg.term,
                          msg.is_leader))
        state.trace_first_ms.setdefault(msg.partition_id,
                                        self.server.kernel.now)
        self._evaluate_fast_path(state, msg.partition_id)

    def _evaluate_fast_path(self, state: CoordTxnState,
                            partition_id: str) -> None:
        """Apply CPC's two fast-path conditions (§4.2)."""
        if partition_id in state.decisions:
            return
        votes = state.fast_votes.get(partition_id, {})
        leader_vote = None
        for vote in votes.values():
            if vote[3]:  # is_leader
                leader_vote = vote
                break
        if leader_vote is None:
            return  # condition 2: the leader must be in the supermajority
        decision, versions, term, __ = leader_vote
        matching = sum(
            1 for v in votes.values()
            if v[0] == decision and v[1] == versions and v[2] == term)
        group_size = len(
            self.server.directory.lookup(partition_id).replicas)
        if matching >= supermajority(group_size):
            state.decisions[partition_id] = (decision, versions)
            state.fast_path_partitions.add(partition_id)
            self.fast_path_decisions += 1
            tracer = self.server.tracer
            if tracer.enabled:
                tracer.add_span(
                    state.tid, SPAN_CPC_FAST, self.server.node_id,
                    self.server.dc,
                    start_ms=state.trace_first_ms.get(partition_id),
                    detail=(f"{partition_id} {decision} "
                            f"votes={matching}/{group_size}"))
            self._maybe_decide(state)

    def on_prepare_result(self, msg: PrepareResult) -> None:
        """Record a slow-path prepare decision from a participant leader."""
        if msg.tid in self.finished:
            return
        state = self._state(msg.tid)
        if state is None:
            state = CoordTxnState(tid=msg.tid)
            self.states[msg.tid] = state
        if msg.partition_id in state.decisions:
            return  # fast path (or an earlier result) already decided
        state.decisions[msg.partition_id] = (msg.decision, msg.read_versions)
        self.slow_path_decisions += 1
        tracer = self.server.tracer
        if tracer.enabled and self.config.fast_path_enabled:
            # In fast mode, a leader PrepareResult arriving before a fast
            # quorum formed means this partition took CPC's slow path.
            tracer.add_span(
                state.tid, SPAN_CPC_SLOW, self.server.node_id,
                self.server.dc,
                start_ms=state.trace_first_ms.get(msg.partition_id),
                detail=f"{msg.partition_id} {msg.decision}")
        self._maybe_decide(state)

    def on_writeback_ack(self, msg: WritebackAck) -> None:
        """Track writeback completion; finish the transaction when all ack."""
        state = self._state(msg.tid)
        if state is None:
            return
        state.writeback_acks.add(msg.partition_id)
        if state.writeback_acks >= set(state.participants):
            self._finish(state)

    # ------------------------------------------------------------------
    # Decision logic
    # ------------------------------------------------------------------
    def _maybe_decide(self, state: CoordTxnState) -> None:
        if state.decision is not None or not state.participants:
            return
        if not self._is_leader_of(state.group_id):
            return
        if state.any_aborted():
            # A participant failed to prepare; the coordinator may abort
            # and reply immediately (§4.1.2).
            self._decide(state, ABORT, REASON_CONFLICT)
            return
        if not (state.commit_requested and state.write_data_replicated):
            return
        if not state.all_prepared():
            return
        if self._stale_read(state):
            self._decide(state, ABORT, REASON_STALE_READ)
            return
        self._decide(state, COMMIT, REASON_COMMITTED)

    def _stale_read(self, state: CoordTxnState) -> bool:
        """Did the client read older versions than the leaders prepared
        with (§4.4.1)?"""
        if not state.client_read_versions:
            return False
        for __, versions in state.decisions.values():
            for key, leader_version in versions:
                client_version = state.client_read_versions.get(key)
                if client_version is not None and \
                        client_version != leader_version:
                    return True
        return False

    def _arm_requery(self, state: CoordTxnState) -> None:
        self._cancel_timer(state, "requery_timer")
        delay = self.config.retry_policy.delay_ms(
            state.requery_attempts, self.server.kernel.random)
        state.requery_timer = self.server.set_timer(
            delay, self._requery_prepares, state)

    def _requery_prepares(self, state: CoordTxnState) -> None:
        if state.decision is not None or \
                not self._is_leader_of(state.group_id):
            return
        state.requery_attempts += 1
        # Sorted so query order never depends on dict insertion history.
        for pid, sets in sorted(state.participants.items()):
            if pid in state.decisions:
                continue
            leader = self.server.directory.lookup(pid).leader
            self._send(leader, PrepareQuery(
                tid=state.tid, partition_id=pid,
                coordinator_id=self.server.node_id,
                coord_group_id=state.group_id,
                read_keys=sets.read_keys, write_keys=sets.write_keys))
        self._arm_requery(state)

    def _decide(self, state: CoordTxnState, decision: str,
                reason: str) -> None:
        state.decision = decision
        state.reason = reason
        self._cancel_timer(state, "requery_timer")
        self._cancel_timer(state, "heartbeat_timer")
        # Fsync the decision BEFORE the reply externalizes it: a committed
        # answer the client has seen must survive a power cycle here.
        self._persist_decision(state)
        self._reply(state)
        member = self._member_for(state.group_id)
        if member is not None and member.is_leader:
            member.propose(CoordDecisionRecord(tid=state.tid,
                                               decision=decision))
        self._send_writebacks(state)

    def _reply(self, state: CoordTxnState, force: bool = False) -> None:
        """Send the client its TxnReply.  ``force`` retransmits even when
        one was already sent (the client asked again, so it was lost)."""
        if (state.replied and not force) or not state.client_id:
            return
        if state.decision is None:
            return
        state.replied = True
        self._send(state.client_id, TxnReply(
            tid=state.tid, committed=state.decision == COMMIT,
            reason=state.reason))

    def _reply_finished(self, client_id: str, tid: TID) -> None:
        decision = self.finished[tid]
        self._send(client_id, TxnReply(
            tid=tid, committed=decision == COMMIT,
            reason=REASON_COMMITTED if decision == COMMIT
            else REASON_CONFLICT))

    # ------------------------------------------------------------------
    # Writeback phase (§4.1.3)
    # ------------------------------------------------------------------
    def _send_writebacks(self, state: CoordTxnState) -> None:
        outstanding = set(state.participants) - state.writeback_acks
        if not outstanding:
            self._finish(state)
            return
        tracer = self.server.tracer
        if tracer.enabled and state.trace_writeback_span is None:
            state.trace_writeback_span = tracer.span_begin(
                state.tid, SPAN_WRITEBACK, self.server.node_id,
                self.server.dc, detail=state.decision or "")
        # Sorted: set iteration order is hash-dependent and would make
        # message order (and trace output) vary across processes.
        for pid in sorted(outstanding):
            sets = state.participants[pid]
            writes = {k: state.writes[k] for k in sets.write_keys
                      if k in state.writes} \
                if state.decision == COMMIT else {}
            leader = self.server.directory.lookup(pid).leader
            self._send(leader, Writeback(
                tid=state.tid, partition_id=pid,
                decision=state.decision, writes=writes))
        self._cancel_timer(state, "writeback_timer")
        delay = self.config.retry_policy.delay_ms(
            state.writeback_attempts, self.server.kernel.random)
        state.writeback_timer = self.server.set_timer(
            delay, self._retry_writebacks, state)

    def _retry_writebacks(self, state: CoordTxnState) -> None:
        if state.tid in self.finished:
            return
        # WAL-recovered decisions are this node's own durable obligation:
        # keep re-driving them even as a follower (a concurrent re-drive by
        # the current leader is harmless — writebacks are idempotent).
        if self._is_leader_of(state.group_id) or state.wal_recovered:
            state.writeback_attempts += 1
            self._send_writebacks(state)

    def _finish(self, state: CoordTxnState) -> None:
        tracer = self.server.tracer
        if tracer.enabled:
            tracer.span_end(state.trace_writeback_span)
            state.trace_writeback_span = None
        self._cancel_timer(state, "heartbeat_timer")
        self._cancel_timer(state, "writeback_timer")
        self._cancel_timer(state, "requery_timer")
        self.finished[state.tid] = state.decision or ABORT
        self.states.pop(state.tid, None)
        wal = self.server.wal
        if wal is not None and state.decision is not None:
            wal.append(CoordFinishWal(tid=state.tid))

    # ------------------------------------------------------------------
    # Durability (decision WAL; §4.3 made crash-proof, not just fail-stop)
    # ------------------------------------------------------------------
    def _persist_decision(self, state: CoordTxnState) -> None:
        """Journal the 2PC outcome with everything needed to re-drive its
        writeback phase from a cold start."""
        wal = self.server.wal
        if wal is None:
            return
        wal.append(CoordDecisionWal(
            tid=state.tid, group_id=state.group_id,
            client_id=state.client_id,
            decision=state.decision or ABORT, reason=state.reason,
            participants=tuple(sorted(state.participants.items())),
            writes=tuple(sorted(state.writes.items()))))

    def restore_from_wal(self, records) -> None:
        """Rebuild decided-but-unfinished transactions after a power cycle.

        Runs in the RECOVERY state: each journaled decision without a
        matching finish record is re-instantiated (participants, writes,
        outcome) and its writeback phase re-driven immediately — the
        client already saw the reply, so the writes are owed to the
        participant partitions no matter who leads the group now.
        """
        if self.wal_state == WAL_ACTIVE:
            self.wal_state = WAL_RECOVERY
        decided: Dict[TID, CoordDecisionWal] = {}
        done = set()
        for record in records:
            if isinstance(record, CoordDecisionWal):
                decided[record.tid] = record
            elif isinstance(record, CoordFinishWal):
                done.add(record.tid)
        redriven = 0
        # Replay order is WAL append order (dict insertion order), itself
        # deterministic under a fixed seed.  detlint: ignore[values-fanout]
        for tid, record in decided.items():
            if tid in done:
                self.finished[tid] = record.decision
                continue
            state = CoordTxnState(
                tid=tid, client_id=record.client_id,
                group_id=record.group_id,
                participants=dict(record.participants),
                sets_replicated=True, commit_requested=True,
                writes=dict(record.writes), write_data_replicated=True,
                decision=record.decision, reason=record.reason,
                replied=True, wal_recovered=True)
            self.states[tid] = state
            self._send_writebacks(state)
            redriven += 1
        tracer = self.server.tracer
        if tracer.enabled:
            tracer.point(None, SPAN_RECOVERY, self.server.node_id,
                         self.server.dc,
                         detail=(f"coordinator wal-restore "
                                 f"redriven={redriven} "
                                 f"finished={len(done)}"))
        if self.wal_state == WAL_RECOVERY:
            self.wal_state = WAL_ACTIVE

    # ------------------------------------------------------------------
    # Client-failure handling (§4.3.1)
    # ------------------------------------------------------------------
    def _arm_heartbeat_monitor(self, state: CoordTxnState) -> None:
        interval = self.config.heartbeat_interval_ms
        state.heartbeat_timer = self.server.set_timer(
            interval, self._check_heartbeat, state)

    def _check_heartbeat(self, state: CoordTxnState) -> None:
        if state.decision is not None or state.commit_requested:
            return  # after the commit request, commit regardless (§4.3.1)
        deadline = (self.config.heartbeat_interval_ms
                    * self.config.heartbeat_misses)
        if self.server.kernel.now - state.last_heartbeat_ms > deadline:
            self._decide(state, ABORT, REASON_TIMEOUT)
            return
        self._arm_heartbeat_monitor(state)

    def _cancel_timer(self, state: CoordTxnState, name: str) -> None:
        timer = getattr(state, name)
        if timer is not None:
            timer.cancel()
            setattr(state, name, None)

    # ------------------------------------------------------------------
    # Raft integration
    # ------------------------------------------------------------------
    def apply(self, command, group_id: str) -> None:
        """Mirror replicated coordinator state (runs on every group
        member)."""
        if isinstance(command, CoordSetsRecord):
            state = self.states.get(command.tid)
            if state is None:
                state = CoordTxnState(tid=command.tid)
                self.states[command.tid] = state
            state.client_id = command.client_id
            state.group_id = group_id
            if not state.participants:
                state.participants = dict(command.participants)
            state.sets_replicated = True
        elif isinstance(command, CoordWriteDataRecord):
            state = self.states.get(command.tid)
            if state is None:
                state = CoordTxnState(tid=command.tid, group_id=group_id)
                self.states[command.tid] = state
            state.writes = dict(command.writes)
            state.client_read_versions = dict(command.read_versions)
            state.commit_requested = True
            state.write_data_replicated = True
            # A successor coordinator may only learn of the commit request
            # through this replay (the election-time adoption ran before
            # the log was applied): drive the decision from here too.
            if self._is_leader_of(group_id):
                self._maybe_decide(state)
                if state.decision is None and state.requery_timer is None:
                    self._arm_requery(state)
        elif isinstance(command, CoordDecisionRecord):
            state = self.states.get(command.tid)
            if state is not None and state.decision is None:
                state.decision = command.decision
                state.reason = (REASON_COMMITTED
                                if command.decision == COMMIT
                                else REASON_CONFLICT)
        else:  # pragma: no cover - routing bug
            raise TypeError(f"unexpected coordinator record {command!r}")

    # ------------------------------------------------------------------
    # Coordinator failover (§4.3)
    # ------------------------------------------------------------------
    def on_leadership(self, group_id: str) -> None:
        """Adopt in-flight transactions coordinated by this group."""
        # Adoption order follows dict insertion order: transaction arrival
        # order, which is itself deterministic under a fixed kernel seed.
        # detlint: ignore[values-fanout]
        for state in list(self.states.values()):
            if state.group_id != group_id:
                continue
            if state.decision is not None:
                # Decision already made (and, if commit, recomputable):
                # re-reply and resume the writeback phase.
                self._reply(state)
                self._send_writebacks(state)
            elif state.write_data_replicated:
                # Re-acquire prepare results from participant leaders; their
                # replies re-enter on_prepare_result and drive the decision.
                state.last_heartbeat_ms = self.server.kernel.now
                self._arm_heartbeat_monitor(state)
                self._arm_requery(state)
                # Sorted like _requery_prepares: stable re-query order.
                for pid, sets in sorted(state.participants.items()):
                    if pid in state.decisions:
                        continue
                    leader = self.server.directory.lookup(pid).leader
                    self._send(leader, PrepareQuery(
                        tid=state.tid, partition_id=pid,
                        coordinator_id=self.server.node_id,
                        coord_group_id=group_id,
                        read_keys=sets.read_keys,
                        write_keys=sets.write_keys))
                self._maybe_decide(state)
            elif state.sets_replicated:
                # Still waiting on the client; restart the heartbeat clock.
                state.last_heartbeat_ms = self.server.kernel.now
                self._arm_heartbeat_monitor(state)
