"""Zipfian key popularity, YCSB-style.

Implements the Gray et al. "quickly generating billion-record synthetic
databases" algorithm used by YCSB's ``ZipfianGenerator``: draw a rank with
probability proportional to ``1 / rank^theta``.  The paper configures
``theta = 0.75`` over 10 million keys (§6.2).

The zeta constant is computed once per ``(n, theta)`` and cached, since the
computation is O(n).
"""

from __future__ import annotations

import random
from typing import Dict, Tuple


_ZETA_CACHE: Dict[Tuple[int, float], float] = {}


def zeta(n: int, theta: float) -> float:
    """The generalized harmonic number ``sum_{i=1..n} 1/i^theta``."""
    key = (n, theta)
    if key not in _ZETA_CACHE:
        _ZETA_CACHE[key] = sum(1.0 / (i ** theta) for i in range(1, n + 1))
    return _ZETA_CACHE[key]


class ZipfianGenerator:
    """Draws integers in ``[0, n)`` with Zipfian popularity.

    Rank 0 is the most popular item.  Deterministic given the ``rng``.
    """

    def __init__(self, n: int, theta: float = 0.75,
                 rng: random.Random = None):
        if n < 1:
            raise ValueError("n must be positive")
        if not 0.0 < theta < 1.0:
            raise ValueError("theta must be in (0, 1)")
        self.n = n
        self.theta = theta
        self.rng = rng or random.Random(0)
        self._zeta_n = zeta(n, theta)
        self._zeta_2 = zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        denom = 1.0 - self._zeta_2 / self._zeta_n
        # With n <= 2 every draw resolves in the first two branches of
        # next(), so eta is never consulted — and its denominator is 0.
        self._eta = 0.0 if denom == 0.0 else (
            (1.0 - (2.0 / n) ** (1.0 - theta)) / denom)

    def next(self) -> int:
        """Draw one Zipfian rank in [0, n)."""
        u = self.rng.random()
        uz = u * self._zeta_n
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.n * ((self._eta * u - self._eta + 1.0)
                             ** self._alpha))

    def next_key(self, prefix: str = "key") -> str:
        """A key string for the drawn rank."""
        return f"{prefix}:{self.next()}"

    def distinct_keys(self, count: int, prefix: str = "key") -> list:
        """``count`` distinct keys (rejection-sampled)."""
        if count > self.n:
            raise ValueError("cannot draw more distinct keys than exist")
        seen = set()
        keys = []
        while len(keys) < count:
            key = self.next_key(prefix)
            if key not in seen:
                seen.add(key)
                keys.append(key)
        return keys
