"""The TAPIR client: transaction coordinator on the application server.

The client reads from the closest replica of each partition, buffers
writes, then runs IR consensus on the prepare: one round trip to all
replicas on the fast path (matching fast quorum of ⌈3f/2⌉+1), or — after a
fast-path **timeout** — a finalize round installing the majority result
(the slow path).  The outcome is reported to the application as soon as
every partition's prepare is decided; commit messages then propagate
asynchronously, but a subsequent transaction from the same client that
touches overlapping keys is held until those commits are acknowledged
(§6.3's "fully committed on TAPIR servers" rule).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.sim.message import Message
from repro.sim.node import Node
from repro.trace.tracer import SPAN_PREPARE, SPAN_READ
from repro.store.directory import DirectoryService
from repro.store.partitioning import Partitioner
from repro.tapir.config import TapirConfig
from repro.tapir.messages import (
    PREPARE_ABORT,
    PREPARE_ABSTAIN,
    PREPARE_OK,
    TapirCommit,
    TapirCommitAck,
    TapirFinalize,
    TapirFinalizeAck,
    TapirPrepare,
    TapirPrepareReply,
    TapirRead,
    TapirReadReply,
)
from repro.txn import (
    REASON_CLIENT_ABORT,
    REASON_COMMITTED,
    REASON_CONFLICT,
    REASON_STALE_READ,
    TID,
    TransactionSpec,
    TxnResult,
)

PHASE_READ = "read"
PHASE_PREPARE = "prepare"
PHASE_DONE = "done"

CompletionCallback = Callable[[TxnResult], None]


def fast_quorum(group_size: int) -> int:
    """IR's fast quorum: ⌈3f/2⌉+1 of 2f+1 replicas."""
    f = (group_size - 1) // 2
    return math.ceil(1.5 * f) + 1


def slow_quorum(group_size: int) -> int:
    """IR's classic quorum: f+1."""
    return (group_size - 1) // 2 + 1


@dataclass
class _Partition:
    """Per-partition prepare bookkeeping."""

    pid: str
    replicas: List[str]
    read_keys: Tuple[str, ...] = ()
    write_keys: Tuple[str, ...] = ()
    votes: Dict[str, str] = field(default_factory=dict)
    decided: Optional[str] = None
    via_fast_path: bool = False
    finalize_acks: Set[str] = field(default_factory=set)
    finalizing: bool = False


@dataclass
class _TapirTxn:
    tid: TID
    spec: TransactionSpec
    on_complete: Optional[CompletionCallback]
    started_ms: float
    phase: str = PHASE_READ
    partitions: Dict[str, _Partition] = field(default_factory=dict)
    awaiting_reads: Set[str] = field(default_factory=set)
    values: Dict[str, Any] = field(default_factory=dict)
    versions: Dict[str, int] = field(default_factory=dict)
    writes: Dict[str, Any] = field(default_factory=dict)
    fast_timer: Any = None
    retry_timer: Any = None
    retries: int = 0
    committed: Optional[bool] = None
    abort_reason: str = ""
    #: Tracing: the open client phase span (read/prepare).
    phase_span: Any = None
    #: Tracing: the deepest causal context among prepare votes, for the
    #: slow-path timeout join (see :meth:`Tracer.absorb`).
    vote_ctx: Any = None


class TapirClient(Node):
    """An application server running the TAPIR client library."""

    def __init__(self, node_id: str, dc: str, kernel, network,
                 directory: DirectoryService, partitioner: Partitioner,
                 config: TapirConfig,
                 result_hook: Optional[CompletionCallback] = None):
        super().__init__(node_id, dc, kernel, network)
        self.directory = directory
        self.partitioner = partitioner
        self.config = config
        self.result_hook = result_hook
        self._counter = 0
        self._active: Dict[TID, _TapirTxn] = {}
        #: Keys of our own committed-but-unacknowledged transactions.
        self._locked_keys: Dict[str, int] = {}
        self._commit_acks_pending: Dict[TID, Set[Tuple[str, str]]] = {}
        #: Retransmission state for the asynchronous commit round:
        #: payloads, timers and attempt counts per unacknowledged tid.
        self._commit_payload: Dict[
            TID, Tuple[bool, Dict[str, Dict], Dict[str, Dict[str, int]]]] = {}
        self._commit_timers: Dict[TID, Any] = {}
        self._commit_attempts: Dict[TID, int] = {}
        self._locked_writes: Dict[TID, Tuple[str, ...]] = {}
        self._queued: List[Tuple[TransactionSpec,
                                 Optional[CompletionCallback]]] = []
        self.submitted = 0
        self.committed = 0
        self.aborted = 0
        self.slow_paths = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def submit(self, spec: TransactionSpec,
               on_complete: Optional[CompletionCallback] = None
               ) -> Optional[TID]:
        """Run one transaction; returns its TID, or ``None`` if it was
        queued behind a conflicting uncommitted predecessor (§6.3)."""
        if self._blocked_by_own(spec):
            self._queued.append((spec, on_complete))
            return None
        return self._start(spec, on_complete)

    def _blocked_by_own(self, spec: TransactionSpec) -> bool:
        keys = spec.all_keys()
        if any(key in self._locked_keys for key in keys):
            return True
        # Also hold behind our own in-flight transactions: a client may not
        # run two of its own conflicting transactions concurrently.
        wanted = set(keys)
        return any(wanted & set(txn.spec.all_keys())
                   for txn in self._active.values())

    def _start(self, spec: TransactionSpec,
               on_complete: Optional[CompletionCallback]) -> TID:
        self._counter += 1
        tid = TID(self.node_id, self._counter)
        txn = _TapirTxn(tid=tid, spec=spec, on_complete=on_complete,
                        started_ms=self.kernel.now)
        self._active[tid] = txn
        self.submitted += 1
        tracer = self.tracer
        if tracer.enabled:
            tracer.txn_begin(tid, system="tapir", client=self.node_id,
                             dc=self.dc)
        read_groups = self.partitioner.group_by_partition(spec.read_keys)
        write_groups = self.partitioner.group_by_partition(spec.write_keys)
        for pid in sorted(set(read_groups) | set(write_groups)):
            info = self.directory.lookup(pid)
            txn.partitions[pid] = _Partition(
                pid=pid, replicas=list(info.replicas),
                read_keys=tuple(read_groups.get(pid, ())),
                write_keys=tuple(write_groups.get(pid, ())))
        if not txn.partitions:
            self._complete(txn, True, REASON_COMMITTED)
            return tid
        txn.awaiting_reads = {pid for pid, p in txn.partitions.items()
                              if p.read_keys}
        if txn.awaiting_reads:
            if tracer.enabled:
                txn.phase_span = tracer.span_begin(
                    tid, SPAN_READ, self.node_id, self.dc)
            self._send_reads(txn)
        else:
            self._enter_prepare(txn)
        self._arm_retry(txn)
        return tid

    # ------------------------------------------------------------------
    # Read phase: closest replica per partition
    # ------------------------------------------------------------------
    def _closest_replica(self, pid: str) -> str:
        info = self.directory.lookup(pid)
        best = min(range(len(info.replicas)),
                   key=lambda i: self.network.topology.rtt(
                       self.dc, info.datacenters[i]))
        return info.replicas[best]

    def _send_reads(self, txn: _TapirTxn) -> None:
        for pid in sorted(txn.awaiting_reads):
            part = txn.partitions[pid]
            self.send(self._closest_replica(pid), TapirRead(
                tid=txn.tid, partition_id=pid, keys=part.read_keys))

    def _on_read_reply(self, msg: TapirReadReply) -> None:
        txn = self._active.get(msg.tid)
        if txn is None or txn.phase != PHASE_READ:
            return
        if msg.partition_id not in txn.awaiting_reads:
            return
        txn.awaiting_reads.discard(msg.partition_id)
        for key, (value, version) in msg.values.items():
            txn.values[key] = value
            txn.versions[key] = version
        if not txn.awaiting_reads:
            self._enter_prepare(txn)

    # ------------------------------------------------------------------
    # Prepare phase: IR consensus
    # ------------------------------------------------------------------
    def _enter_prepare(self, txn: _TapirTxn) -> None:
        reads = {k: txn.values.get(k) for k in txn.spec.read_keys}
        writes = txn.spec.run_write_function(reads)
        if writes is None:
            self._complete(txn, False, REASON_CLIENT_ABORT)
            return
        txn.writes = writes
        txn.phase = PHASE_PREPARE
        tracer = self.tracer
        if tracer.enabled:
            tracer.span_end(txn.phase_span)
            txn.phase_span = tracer.span_begin(
                txn.tid, SPAN_PREPARE, self.node_id, self.dc)
        self._send_prepares(txn)
        txn.fast_timer = self.set_timer(
            self.config.fast_path_timeout_ms, self._fast_path_timeout, txn)

    def _send_prepares(self, txn: _TapirTxn) -> None:
        # Ordered: partitions is populated over sorted(pids) in begin(),
        # so insertion order is the sorted order.
        # detlint: ignore[values-fanout]
        for part in txn.partitions.values():
            if part.decided is not None:
                continue
            versions = tuple(sorted(
                (k, txn.versions.get(k, 0)) for k in part.read_keys))
            for replica in part.replicas:
                self.send(replica, TapirPrepare(
                    tid=txn.tid, partition_id=part.pid,
                    read_versions=versions, write_keys=part.write_keys))

    def _on_prepare_reply(self, msg: TapirPrepareReply) -> None:
        txn = self._active.get(msg.tid)
        if txn is None or txn.phase != PHASE_PREPARE:
            return
        part = txn.partitions.get(msg.partition_id)
        if part is None or part.decided is not None or part.finalizing:
            return
        tracer = self.tracer
        if tracer.enabled:
            # Remember the deepest vote context: if the fast path fails,
            # the timeout handler's decision causally depends on it.
            ctx = tracer.current
            if ctx is not None and (txn.vote_ctx is None
                                    or ctx.wan_hops > txn.vote_ctx.wan_hops):
                txn.vote_ctx = ctx
        part.votes[msg.replica_id] = msg.result
        needed = fast_quorum(len(part.replicas))
        counts: Dict[str, int] = {}
        for result in part.votes.values():
            counts[result] = counts.get(result, 0) + 1
        for result, count in counts.items():
            if count >= needed:
                part.decided = result
                part.via_fast_path = True
                self._maybe_finish_prepare(txn)
                return

    def _fast_path_timeout(self, txn: _TapirTxn) -> None:
        """The fast path did not decide in time; run IR's slow path for
        every undecided partition."""
        if txn.phase != PHASE_PREPARE:
            return
        tracer = self.tracer
        if tracer.enabled:
            # Join: this timer fires with an empty context, but the slow
            # path's decision is computed from the votes received so far.
            tracer.absorb(txn.vote_ctx)
        # Ordered: partitions insertion order is sorted(pids); see begin().
        # detlint: ignore[values-fanout]
        for part in txn.partitions.values():
            if part.decided is not None or part.finalizing:
                continue
            quorum = slow_quorum(len(part.replicas))
            if len(part.votes) < quorum:
                # Not enough votes even for the slow path (failures):
                # rearm and let retransmission gather more votes.
                txn.fast_timer = self.set_timer(
                    self.config.fast_path_timeout_ms,
                    self._fast_path_timeout, txn)
                return
            ok_votes = sum(1 for r in part.votes.values()
                           if r == PREPARE_OK)
            result = PREPARE_OK if ok_votes >= quorum else PREPARE_ABORT
            part.finalizing = True
            self.slow_paths += 1
            if tracer.enabled:
                tracer.point(txn.tid, "tapir-finalize", self.node_id,
                             self.dc, detail=f"{part.pid} {result}")
            for replica in part.replicas:
                self.send(replica, TapirFinalize(
                    tid=txn.tid, partition_id=part.pid, result=result))
            part.decided = result  # provisional until f+1 acks
            part.finalize_acks = set()

    def _on_finalize_ack(self, msg: TapirFinalizeAck) -> None:
        txn = self._active.get(msg.tid)
        if txn is None or txn.phase != PHASE_PREPARE:
            return
        part = txn.partitions.get(msg.partition_id)
        if part is None or not part.finalizing:
            return
        part.finalize_acks.add(msg.replica_id)
        if len(part.finalize_acks) >= slow_quorum(len(part.replicas)):
            part.finalizing = False
            self._maybe_finish_prepare(txn)

    def _maybe_finish_prepare(self, txn: _TapirTxn) -> None:
        if any(p.decided is None or p.finalizing
               for p in txn.partitions.values()):
            return
        commit = all(p.decided == PREPARE_OK
                     for p in txn.partitions.values())
        results = {p.decided for p in txn.partitions.values()}
        reason = REASON_COMMITTED if commit else (
            REASON_STALE_READ if PREPARE_ABORT in results
            else REASON_CONFLICT)
        self._send_commits(txn, commit)
        self._complete(txn, commit, reason)

    # ------------------------------------------------------------------
    # Commit phase (asynchronous; locks the keys until acknowledged)
    # ------------------------------------------------------------------
    def _send_commits(self, txn: _TapirTxn, commit: bool) -> None:
        pending: Set[Tuple[str, str]] = set()
        writes_by_pid: Dict[str, Dict] = {}
        versions_by_pid: Dict[str, Dict[str, int]] = {}
        # Ordered: partitions insertion order is sorted(pids); see begin().
        # detlint: ignore[values-fanout]
        for part in txn.partitions.values():
            writes = {k: txn.writes[k] for k in part.write_keys
                      if k in txn.writes} if commit else {}
            # The write's installation version is read version + 1 (the
            # transaction's timestamp) so replicas apply commits
            # order-independently; blind writes omit the version.
            versions = {k: txn.versions[k] + 1 for k in writes
                        if k in txn.versions}
            writes_by_pid[part.pid] = writes
            versions_by_pid[part.pid] = versions
            for replica in part.replicas:
                pending.add((part.pid, replica))
                self.send(replica, TapirCommit(
                    tid=txn.tid, partition_id=part.pid,
                    commit=commit, writes=writes, write_versions=versions))
        if pending:
            # Track every outstanding (partition, replica) ack and
            # retransmit until all arrive: a lost TapirCommit would
            # otherwise strand the replica's prepared entry (aborts) or
            # this client's key locks (commits) forever.
            self._commit_acks_pending[txn.tid] = pending
            self._commit_payload[txn.tid] = (commit, writes_by_pid,
                                             versions_by_pid)
            self._arm_commit_retry(txn.tid)
        if commit and pending:
            keys = txn.spec.all_keys()
            self._locked_writes[txn.tid] = keys
            for key in keys:
                self._locked_keys[key] = self._locked_keys.get(key, 0) + 1

    def _arm_commit_retry(self, tid: TID) -> None:
        attempts = self._commit_attempts.get(tid, 0)
        delay = self.config.retry_policy.delay_ms(attempts,
                                                  self.kernel.random)
        self._commit_timers[tid] = self.set_timer(
            delay, self._retry_commits, tid)

    def _retry_commits(self, tid: TID) -> None:
        pending = self._commit_acks_pending.get(tid)
        if not pending:
            return
        self._commit_attempts[tid] = self._commit_attempts.get(tid, 0) + 1
        commit, writes_by_pid, versions_by_pid = self._commit_payload[tid]
        # Sorted so retransmission order never depends on set history.
        for pid, replica in sorted(pending):
            self.send(replica, TapirCommit(
                tid=tid, partition_id=pid, commit=commit,
                writes=writes_by_pid[pid],
                write_versions=versions_by_pid[pid]))
        self._arm_commit_retry(tid)

    def _on_commit_ack(self, msg: TapirCommitAck) -> None:
        pending = self._commit_acks_pending.get(msg.tid)
        if pending is None:
            return
        pending.discard((msg.partition_id, msg.replica_id))
        if not pending:
            del self._commit_acks_pending[msg.tid]
            timer = self._commit_timers.pop(msg.tid, None)
            if timer is not None:
                timer.cancel()
            self._commit_payload.pop(msg.tid, None)
            self._commit_attempts.pop(msg.tid, None)
            self._release_locks(msg.tid)

    def _release_locks(self, tid: TID) -> None:
        for key in self._locked_writes.pop(tid, ()):
            count = self._locked_keys.get(key, 0) - 1
            if count <= 0:
                self._locked_keys.pop(key, None)
            else:
                self._locked_keys[key] = count
        self._drain_queue()

    def _drain_queue(self) -> None:
        still_queued = []
        for spec, on_complete in self._queued:
            if self._blocked_by_own(spec):
                still_queued.append((spec, on_complete))
            else:
                self._start(spec, on_complete)
        self._queued = still_queued

    # ------------------------------------------------------------------
    # Completion and timers
    # ------------------------------------------------------------------
    def _complete(self, txn: _TapirTxn, committed: bool,
                  reason: str) -> None:
        if txn.phase == PHASE_DONE:
            return
        txn.phase = PHASE_DONE
        tracer = self.tracer
        if tracer.enabled:
            tracer.span_end(txn.phase_span)
            txn.phase_span = None
            tracer.txn_end(txn.tid, committed, reason)
        for name in ("fast_timer", "retry_timer"):
            timer = getattr(txn, name)
            if timer is not None:
                timer.cancel()
                setattr(txn, name, None)
        self._active.pop(txn.tid, None)
        if committed:
            self.committed += 1
        else:
            self.aborted += 1
        result = TxnResult(
            tid=txn.tid, committed=committed,
            latency_ms=self.kernel.now - txn.started_ms,
            reason=reason, txn_type=txn.spec.txn_type,
            reads=dict(txn.values))
        if txn.on_complete is not None:
            txn.on_complete(result)
        if self.result_hook is not None:
            self.result_hook(result)
        self._drain_queue()

    def _arm_retry(self, txn: _TapirTxn) -> None:
        delay = self.config.retry_policy.delay_ms(txn.retries,
                                                  self.kernel.random)
        txn.retry_timer = self.set_timer(delay, self._retry, txn)

    def _retry(self, txn: _TapirTxn) -> None:
        txn.retries += 1
        if txn.phase == PHASE_READ:
            self._send_reads(txn)
        elif txn.phase == PHASE_PREPARE:
            self._send_prepares(txn)
            self._resend_finalizes(txn)
        if txn.phase != PHASE_DONE:
            self._arm_retry(txn)

    def _resend_finalizes(self, txn: _TapirTxn) -> None:
        """Retransmit finalize messages for stalled slow paths: a lost
        TapirFinalize (or ack) would otherwise never reach its quorum —
        replicas re-ack duplicates idempotently."""
        # Ordered: partitions insertion order is sorted(pids); see begin().
        # detlint: ignore[values-fanout]
        for part in txn.partitions.values():
            if not part.finalizing:
                continue
            for replica in part.replicas:
                if replica in part.finalize_acks:
                    continue
                self.send(replica, TapirFinalize(
                    tid=txn.tid, partition_id=part.pid,
                    result=part.decided))

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def handle_message(self, msg: Message) -> None:
        if isinstance(msg, TapirReadReply):
            self._on_read_reply(msg)
        elif isinstance(msg, TapirPrepareReply):
            self._on_prepare_reply(msg)
        elif isinstance(msg, TapirFinalizeAck):
            self._on_finalize_ack(msg)
        elif isinstance(msg, TapirCommitAck):
            self._on_commit_ack(msg)
        else:  # pragma: no cover - routing bug
            raise TypeError(f"unexpected TAPIR client message {msg!r}")
