"""In-memory versioned key-value store.

Each record has a version number that monotonically increases with
transactional writes (§3.3).  Reads of absent keys return version 0 and a
``None`` value, so OCC validation can detect a conflict even on keys that
did not exist when a transaction read them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Tuple


@dataclass(frozen=True)
class Record:
    """One versioned record: the value and the version that wrote it."""

    value: Any
    version: int


class VersionedKVStore:
    """A dictionary of :class:`Record` with monotonic version enforcement.

    The store itself is not thread- or transaction-aware: concurrency
    control lives in the OCC layer (:mod:`repro.core.occ`).  The store's
    contract is only that a key's version never decreases.
    """

    #: Version reported for keys that have never been written.
    MISSING_VERSION = 0

    def __init__(self) -> None:
        self._records: Dict[str, Record] = {}
        self.writes_applied = 0

    def read(self, key: str) -> Record:
        """The current record for ``key``; absent keys read as
        ``Record(None, 0)``."""
        record = self._records.get(key)
        if record is None:
            return Record(None, self.MISSING_VERSION)
        return record

    def version(self, key: str) -> int:
        """Current version of ``key`` (0 when absent)."""
        return self.read(key).version

    def write(self, key: str, value: Any, version: int) -> None:
        """Install ``value`` at ``version``.

        Versions must strictly increase per key; an equal or lower version
        indicates a protocol bug (e.g. applying a writeback twice), so it
        raises rather than silently keeping either value.
        """
        current = self.version(key)
        if version <= current:
            raise ValueError(
                f"non-monotonic write to {key!r}: version {version} "
                f"<= current {current}")
        self._records[key] = Record(value, version)
        self.writes_applied += 1

    def write_if_newer(self, key: str, value: Any, version: int) -> bool:
        """Install the record only if ``version`` is newer; returns whether
        the write was applied.

        Used by writeback paths that may legitimately race with a newer
        committed transaction (e.g. a participant applying an old commit
        after a leader change).
        """
        if version <= self.version(key):
            return False
        self._records[key] = Record(value, version)
        self.writes_applied += 1
        return True

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def items(self) -> Iterator[Tuple[str, Record]]:
        """Iterate over (key, record) pairs."""
        return iter(self._records.items())

    def snapshot(self) -> Dict[str, Record]:
        """A shallow copy of the store contents (records are frozen)."""
        return dict(self._records)
