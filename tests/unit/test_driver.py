"""Unit tests for the workload driver."""

import pytest

from repro.bench.cluster import CarouselCluster, DeploymentSpec
from repro.core.config import CarouselConfig
from repro.sim.topology import uniform_topology
from repro.txn import TransactionSpec
from repro.workloads.driver import WorkloadDriver
from repro.workloads.retwis import RetwisWorkload


class OneKeyWorkload:
    """Every transaction is an increment of the same key — maximally
    contended, for closed-loop tests."""

    name = "one-key"

    def next_spec(self):
        return TransactionSpec(
            read_keys=("only",), write_keys=("only",),
            compute_writes=lambda r: {"only": (r["only"] or 0) + 1})


def make_cluster(clients_per_dc=2):
    spec = DeploymentSpec(topology=uniform_topology(3, 2.0),
                          n_partitions=3, seed=4, jitter_fraction=0.0,
                          clients_per_dc=clients_per_dc)
    return CarouselCluster(spec, CarouselConfig())


class TestDriverValidation:
    def test_rejects_bad_parameters(self):
        cluster = make_cluster()
        wl = RetwisWorkload(n_keys=1000, seed=1)
        with pytest.raises(ValueError):
            WorkloadDriver(cluster, wl, target_tps=0, duration_ms=1000)
        with pytest.raises(ValueError):
            WorkloadDriver(cluster, wl, target_tps=10, duration_ms=1000,
                           warmup_ms=600, cooldown_ms=600)


class TestOpenLoop:
    def test_runs_and_measures(self):
        cluster = make_cluster()
        wl = RetwisWorkload(n_keys=10_000, seed=2)
        driver = WorkloadDriver(cluster, wl, target_tps=100,
                                duration_ms=3_000, warmup_ms=500,
                                cooldown_ms=500)
        stats = driver.run(settle_ms=200)
        assert stats.latency.count > 50
        assert stats.submitted > 200
        assert 0.0 <= stats.abort_rate < 0.5
        assert stats.committed_tps > 50

    def test_rate_approximates_target(self):
        cluster = make_cluster()
        wl = RetwisWorkload(n_keys=10_000, seed=3)
        driver = WorkloadDriver(cluster, wl, target_tps=200,
                                duration_ms=4_000, warmup_ms=500,
                                cooldown_ms=500)
        stats = driver.run(settle_ms=200)
        total_rate = (stats.outcomes.rate_per_second("committed")
                      + stats.outcomes.rate_per_second("aborted"))
        assert total_rate == pytest.approx(200, rel=0.25)

    def test_per_type_breakdown_present(self):
        cluster = make_cluster()
        wl = RetwisWorkload(n_keys=10_000, seed=4)
        driver = WorkloadDriver(cluster, wl, target_tps=150,
                                duration_ms=3_000, warmup_ms=500,
                                cooldown_ms=500)
        stats = driver.run(settle_ms=200)
        assert "load_timeline" in stats.by_type


class TestClosedLoop:
    def test_one_outstanding_reduces_contention(self):
        # A single closed-loop client serializes its submissions; the only
        # conflicts left come from the writeback window of the previous
        # transaction (its pending entry clears when the commit record
        # replicates, §4.1.3).  An open-loop client at the same target
        # floods the key and aborts far more.
        def run(closed_loop):
            spec = DeploymentSpec(topology=uniform_topology(3, 2.0),
                                  n_partitions=3, seed=4,
                                  jitter_fraction=0.0, clients_per_dc=1)
            cluster = CarouselCluster(spec, CarouselConfig())
            cluster.clients = cluster.clients[:1]
            driver = WorkloadDriver(cluster, OneKeyWorkload(),
                                    target_tps=500, duration_ms=2_000,
                                    warmup_ms=250, cooldown_ms=250,
                                    closed_loop=closed_loop)
            return driver.run(settle_ms=200)

        closed = run(True)
        open_loop = run(False)
        assert closed.latency.count > 10
        assert closed.abort_rate < open_loop.abort_rate

    def test_closed_loop_throttles_at_saturation(self):
        # target >> what one client can do serially: committed throughput
        # must cap near 1/latency rather than collapse.
        spec = DeploymentSpec(topology=uniform_topology(3, 2.0),
                              n_partitions=3, seed=4, jitter_fraction=0.0,
                              clients_per_dc=1)
        cluster = CarouselCluster(spec, CarouselConfig())
        cluster.clients = cluster.clients[:1]
        driver = WorkloadDriver(cluster, OneKeyWorkload(),
                                target_tps=10_000, duration_ms=2_000,
                                warmup_ms=250, cooldown_ms=250,
                                closed_loop=True)
        stats = driver.run(settle_ms=200)
        # One txn at a time at ~6-10 ms each: roughly 100-200 tps.
        assert 30 < stats.committed_tps < 400

    def test_open_loop_would_conflict(self):
        # Control for the closed-loop test: the same overload in open loop
        # floods the key and aborts heavily.
        spec = DeploymentSpec(topology=uniform_topology(3, 2.0),
                              n_partitions=3, seed=4, jitter_fraction=0.0,
                              clients_per_dc=2)
        cluster = CarouselCluster(spec, CarouselConfig())
        driver = WorkloadDriver(cluster, OneKeyWorkload(),
                                target_tps=2_000, duration_ms=2_000,
                                warmup_ms=250, cooldown_ms=250,
                                closed_loop=False)
        stats = driver.run(settle_ms=200)
        assert stats.abort_rate > 0.5
