"""Base class for simulated processes.

A :class:`Node` is an event-driven state machine attached to a network.  It
receives messages through :meth:`handle_message`, sends with :meth:`send`,
and sets timers with :meth:`set_timer`.

CPU model
---------
Each node is a single server with a FIFO queue: a message delivered at time
``t`` begins processing at ``max(t, busy_until)`` and occupies the node for a
per-message service time.  With ``service_time_ms=0`` (the default, used by
protocol-correctness tests) messages are handled on delivery.  The throughput
experiments (Figures 5 and 6) set a nonzero service time on servers so that
queues grow under load and committed throughput saturates — the mechanism the
paper identifies for TAPIR's collapse in §6.4.1.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.kernel import Event, Kernel
from repro.sim.message import Message
from repro.sim.network import Network


class Node:
    """A simulated process: data server, coordinator group member, or client.

    Subclasses override :meth:`handle_message` (and usually dispatch on the
    message dataclass type) and may override :meth:`on_crash` /
    :meth:`on_recover` to reset volatile state.
    """

    def __init__(self, node_id: str, dc: str, kernel: Kernel,
                 network: Network, service_time_ms: float = 0.0):
        self.node_id = node_id
        self.dc = dc
        self.kernel = kernel
        self.network = network
        self.service_time_ms = service_time_ms
        self.crashed = False
        self._busy_until = 0.0
        self.messages_handled = 0
        #: Incarnation counter: bumped on every crash so timers armed by a
        #: previous incarnation are dead on arrival after recovery.
        self.epoch = 0
        #: How many times this node has been power-cycled (WAL restarts).
        self.restarts = 0
        #: Durable write-ahead log, or ``None`` for purely volatile nodes
        #: (clients, bare test hosts).  Subclasses that support restart
        #: attach a :class:`repro.wal.log.WriteAheadLog` here.
        self.wal = None
        network.register(self)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(self, dst_id: str, msg: Message) -> None:
        """Send a message to another node (or to self, via the network)."""
        self.network.send(self, dst_id, msg)

    def service_time_for(self, msg: Message) -> float:
        """Per-message CPU cost in ms.  Subclasses may make this depend on
        message type or internal state (e.g. OCC validation scans the
        pending-transaction list, so its cost grows with backlog)."""
        return self.service_time_ms

    def enqueue(self, msg: Message) -> None:
        """Called by the network on delivery; applies the CPU queue model."""
        if self.crashed:
            return
        service = self.service_time_for(msg)
        if service <= 0:
            self._process(msg)
            return
        start = max(self.kernel.now, self._busy_until)
        finish = start + service
        self._busy_until = finish
        self.kernel.schedule(finish - self.kernel.now, self._process, msg)

    def _process(self, msg: Message) -> None:
        if self.crashed:
            return
        self.messages_handled += 1
        self.handle_message(msg)

    def handle_message(self, msg: Message) -> None:
        """Handle a delivered message. Subclasses must override."""
        raise NotImplementedError

    @property
    def queue_delay_ms(self) -> float:
        """Current backlog: how long a new arrival would wait for the CPU."""
        return max(0.0, self._busy_until - self.kernel.now)

    @property
    def tracer(self):
        """The kernel's attached tracer (the disabled default when off)."""
        return self.kernel.tracer

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def set_timer(self, delay_ms: float, callback: Callable[..., None],
                  *args) -> Event:
        """Run ``callback(*args)`` after ``delay_ms`` unless cancelled.

        Timers are suppressed while the node is crashed, and a timer armed
        before a crash never fires on the recovered incarnation: the arming
        epoch is captured here and checked at fire time.
        """
        epoch = self.epoch

        def fire(*fire_args):
            if not self.crashed and self.epoch == epoch:
                callback(*fire_args)

        return self.kernel.schedule(delay_ms, fire, *args)

    # ------------------------------------------------------------------
    # Failure model
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Fail-stop: drop all queued work and stop responding.

        Power loss also truncates the WAL to its durable image at this
        instant — a later :meth:`restart` replays exactly what had been
        fsynced before the crash.
        """
        if self.crashed:
            return
        self.crashed = True
        self.epoch += 1
        self._busy_until = 0.0
        if self.wal is not None:
            self.wal.crash(self.kernel.now)
        self.on_crash()

    def recover(self) -> None:
        """Resume the node with its in-memory state intact (fail-stop
        recovery; volatile state was reset by :meth:`on_crash`)."""
        if not self.crashed:
            return
        self.crashed = False
        self.on_recover()

    def restart(self) -> None:
        """Power-cycle: crash (if not already down), discard ALL in-memory
        state, and re-instantiate from the WAL image via :meth:`on_restart`
        before rejoining through the normal :meth:`on_recover` path."""
        if self.wal is None:
            raise RuntimeError(
                f"{self.node_id} has no WAL; restart requires durable state")
        if not self.crashed:
            self.crash()
        self.restarts += 1
        self.on_restart()
        self.crashed = False
        self.on_recover()

    def on_crash(self) -> None:
        """Hook for subclasses to clear volatile state. Default: no-op."""

    def on_recover(self) -> None:
        """Hook for subclasses to restart timers etc. Default: no-op."""

    def on_restart(self) -> None:
        """Hook: wipe in-memory state and rebuild it from ``self.wal``.
        Subclasses that attach a WAL must override."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement WAL restart")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.node_id} @{self.dc}>"
