"""Messages for the layered (sequential 2PC over consensus) baseline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

from repro.core.messages import PartitionSets
from repro.sim.message import Message
from repro.txn import TID


@dataclass
class LayeredRead(Message):
    """Client -> participant leader: plain read round (no piggybacking)."""

    tid: TID = None
    partition_id: str = ""
    keys: Tuple[str, ...] = ()


@dataclass
class LayeredReadReply(Message):
    tid: TID = None
    partition_id: str = ""
    values: Dict[str, Tuple[Any, int]] = field(default_factory=dict)


@dataclass
class LayeredCommitRequest(Message):
    """Client -> coordinator: begin 2PC after the read round completes."""

    tid: TID = None
    client_id: str = ""
    group_id: str = ""
    participants: Dict[str, PartitionSets] = field(default_factory=dict)
    writes: Dict[str, Any] = field(default_factory=dict)
    read_versions: Dict[str, int] = field(default_factory=dict)


@dataclass
class LayeredPrepare(Message):
    """Coordinator -> participant leader: 2PC phase one."""

    tid: TID = None
    partition_id: str = ""
    read_versions: Tuple[Tuple[str, int], ...] = ()
    write_keys: Tuple[str, ...] = ()


@dataclass
class LayeredPrepareAck(Message):
    """Participant leader -> coordinator, after replicating its vote."""

    tid: TID = None
    partition_id: str = ""
    decision: str = ""  # "prepared" or "abort"


@dataclass
class LayeredReply(Message):
    """Coordinator -> client, after the decision is replicated."""

    tid: TID = None
    committed: bool = False
    reason: str = ""


@dataclass
class LayeredWriteback(Message):
    """Coordinator -> participant leader: 2PC phase two."""

    tid: TID = None
    partition_id: str = ""
    decision: str = ""  # "commit" or "abort"
    writes: Dict[str, Any] = field(default_factory=dict)


@dataclass
class LayeredWritebackAck(Message):
    tid: TID = None
    partition_id: str = ""


# Replicated log records -------------------------------------------------

@dataclass(frozen=True)
class LayeredPrepareRecord:
    """Participant group: the leader's 2PC vote."""

    tid: TID
    partition_id: str
    decision: str
    read_keys: Tuple[str, ...]
    write_keys: Tuple[str, ...]
    read_versions: Tuple[Tuple[str, int], ...]


@dataclass(frozen=True)
class LayeredCommitRecord:
    """Participant group: 2PC phase two — decision plus updates."""

    tid: TID
    partition_id: str
    decision: str
    writes: Tuple[Tuple[str, Any], ...] = ()


@dataclass(frozen=True)
class LayeredDecisionRecord:
    """Coordinating group: the transaction's decision (replicated before
    the client learns it — the layered architecture's extra round trip)."""

    tid: TID
    decision: str
