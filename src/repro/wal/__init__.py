"""Simulated-durable write-ahead logging.

The fail-stop model in :mod:`repro.sim.failure` lets a node crash and
later resume with its in-memory state intact.  The production-relevant
failure class — power-cycle a machine and bring it back with only what
it fsynced — needs a durability boundary.  :class:`WriteAheadLog` is
that boundary: protocol code appends records and fsyncs them; a crash
truncates everything that was not durable at the instant of power loss
(optionally leaving a torn tail of the in-flight sync window); a restart
replays the surviving image into a freshly constructed node.

Everything is deterministic and charged to virtual time: fsync latency
is billed to the host node's CPU-queue model, never to the kernel's
event heap, so a run with the WAL enabled at the default zero latency
is byte-identical to one without it.
"""

from repro.wal.log import WriteAheadLog
from repro.wal.records import (
    CoordDecisionWal,
    CoordFinishWal,
    LayeredDecisionWal,
    LayeredFinishWal,
    OccPrepareWal,
    RaftAppendRecord,
    RaftTermRecord,
    TapirFinalizeWal,
    TapirPrepareWal,
    TapirResolveWal,
)

__all__ = [
    "WriteAheadLog",
    "RaftTermRecord",
    "RaftAppendRecord",
    "CoordDecisionWal",
    "CoordFinishWal",
    "LayeredDecisionWal",
    "LayeredFinishWal",
    "OccPrepareWal",
    "TapirPrepareWal",
    "TapirFinalizeWal",
    "TapirResolveWal",
]
