"""Unit tests for measurement utilities."""

import pytest

from repro.sim.stats import LatencyRecorder, SeriesRecorder, percentile


class TestPercentile:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_single_value(self):
        assert percentile([42.0], 0) == 42.0
        assert percentile([42.0], 100) == 42.0

    def test_median_odd(self):
        assert percentile([1.0, 2.0, 3.0], 50) == 2.0

    def test_median_even_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 5.0

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -1)

    def test_unsorted_input_ok(self):
        assert percentile([9.0, 1.0, 5.0], 50) == 5.0


class TestLatencyRecorder:
    def test_record_and_summary(self):
        rec = LatencyRecorder("test")
        for v in [10.0, 20.0, 30.0]:
            rec.record(v)
        summary = rec.summary()
        assert summary["count"] == 3
        assert summary["median_ms"] == 20.0
        assert summary["mean_ms"] == 20.0

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-1.0)

    def test_window_excludes_outside_samples(self):
        rec = LatencyRecorder()
        rec.set_window(100.0, 200.0)
        rec.record(5.0, at_ms=50.0)    # before window
        rec.record(6.0, at_ms=150.0)   # inside
        rec.record(7.0, at_ms=250.0)   # after window
        assert rec.samples == [6.0]

    def test_window_boundaries_inclusive(self):
        rec = LatencyRecorder()
        rec.set_window(100.0, 200.0)
        rec.record(1.0, at_ms=100.0)
        rec.record(2.0, at_ms=200.0)
        assert rec.count == 2

    def test_no_timestamp_always_recorded_despite_window(self):
        rec = LatencyRecorder()
        rec.set_window(100.0, 200.0)
        rec.record(1.0)
        assert rec.count == 1

    def test_invalid_window_raises(self):
        with pytest.raises(ValueError):
            LatencyRecorder().set_window(10.0, 5.0)

    def test_cdf_is_monotone_and_ends_at_one(self):
        rec = LatencyRecorder()
        for v in [3.0, 1.0, 2.0, 2.0]:
            rec.record(v)
        cdf = rec.cdf()
        xs = [x for x, _ in cdf]
        ys = [y for _, y in cdf]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert ys[-1] == 1.0

    def test_cdf_downsampling_keeps_last_point(self):
        rec = LatencyRecorder()
        for i in range(1000):
            rec.record(float(i))
        cdf = rec.cdf(points=50)
        assert len(cdf) <= 52
        assert cdf[-1] == (999.0, 1.0)

    def test_cdf_empty(self):
        assert LatencyRecorder().cdf() == []

    def test_cdf_more_points_than_samples_returns_all(self):
        rec = LatencyRecorder()
        for v in [1.0, 2.0, 3.0]:
            rec.record(v)
        cdf = rec.cdf(points=50)
        assert cdf == [(1.0, 1 / 3), (2.0, 2 / 3), (3.0, 1.0)]

    def test_cdf_points_equal_to_samples_returns_all(self):
        rec = LatencyRecorder()
        for v in [1.0, 2.0]:
            rec.record(v)
        assert len(rec.cdf(points=2)) == 2

    def test_count_property_matches_len(self):
        rec = LatencyRecorder()
        assert rec.count == 0
        rec.record(1.0)
        rec.record(2.0)
        assert rec.count == len(rec) == 2

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            LatencyRecorder().mean()


class TestSeriesRecorder:
    def test_counts(self):
        rec = SeriesRecorder()
        rec.record("committed")
        rec.record("committed")
        rec.record("aborted")
        assert rec.count("committed") == 2
        assert rec.total() == 3
        assert rec.total(["aborted"]) == 1

    def test_window_filtering(self):
        rec = SeriesRecorder()
        rec.set_window(10.0, 20.0)
        rec.record("committed", at_ms=5.0)
        rec.record("committed", at_ms=15.0)
        assert rec.count("committed") == 1

    def test_rate_per_second(self):
        rec = SeriesRecorder()
        rec.set_window(0.0, 2000.0)
        for __ in range(100):
            rec.record("committed", at_ms=1000.0)
        assert rec.rate_per_second("committed") == 50.0

    def test_rate_without_window_raises(self):
        rec = SeriesRecorder()
        rec.record("committed")
        with pytest.raises(ValueError):
            rec.rate_per_second("committed")

    def test_fraction(self):
        rec = SeriesRecorder()
        rec.record("aborted")
        rec.record("committed")
        rec.record("committed")
        rec.record("committed")
        assert rec.fraction("aborted") == 0.25
        assert rec.fraction("aborted", of=["aborted", "committed"]) == 0.25

    def test_fraction_zero_denominator(self):
        assert SeriesRecorder().fraction("aborted") == 0.0

    def test_invalid_window_raises(self):
        with pytest.raises(ValueError):
            SeriesRecorder().set_window(5.0, 1.0)
