"""Failure-handling integration tests (§4.3).

The paper's prototype does not implement fault tolerance; this reproduction
does, so these tests exercise client, follower, participant-leader and
coordinator failures end to end, including CPC's five-step leader recovery.
"""

import pytest

from repro.bench.cluster import CarouselCluster, DeploymentSpec
from repro.core.config import BASIC, FAST, CarouselConfig
from repro.raft.node import RaftConfig
from repro.sim.failure import FailureInjector
from repro.txn import TransactionSpec


def make_cluster(mode=BASIC, seed=1, retry_ms=800.0,
                 heartbeat_interval_ms=200.0):
    config = CarouselConfig(
        mode=mode,
        client_retry_ms=retry_ms,
        heartbeat_interval_ms=heartbeat_interval_ms,
        heartbeat_misses=3,
        raft=RaftConfig(election_timeout_min_ms=400.0,
                        election_timeout_max_ms=800.0,
                        heartbeat_interval_ms=100.0))
    spec = DeploymentSpec(seed=seed, jitter_fraction=0.0)
    cluster = CarouselCluster(spec, config)
    cluster.run(500)
    return cluster


def key_with_remote_leader(cluster, client_dc, require_local_replica=False):
    """A key whose partition leader is outside ``client_dc``."""
    for i in range(2000):
        key = f"k{i}"
        pid = cluster.ring.partition_for(key)
        info = cluster.directory.lookup(pid)
        if info.leader_datacenter() == client_dc:
            continue
        if require_local_replica and not info.replica_in(client_dc):
            continue
        return key, pid
    raise AssertionError("no suitable key found")


def increment_spec(key):
    return TransactionSpec(
        read_keys=(key,), write_keys=(key,),
        compute_writes=lambda r: {key: (r[key] or 0) + 1})


class TestFollowerFailures:
    @pytest.mark.parametrize("mode", [BASIC, FAST])
    def test_commit_with_one_follower_down(self, mode):
        cluster = make_cluster(mode)
        key, pid = key_with_remote_leader(cluster, "us-west")
        info = cluster.directory.lookup(pid)
        follower = info.followers()[0]
        cluster.servers[follower].crash()
        results = []
        cluster.client("us-west").submit(increment_spec(key),
                                         results.append)
        cluster.run(6000)
        assert results and results[0].committed

    def test_commit_blocked_without_majority_until_recovery(self):
        cluster = make_cluster(BASIC)
        key, pid = key_with_remote_leader(cluster, "us-west")
        info = cluster.directory.lookup(pid)
        for follower in info.followers():
            cluster.servers[follower].crash()
        results = []
        cluster.client("us-west").submit(increment_spec(key),
                                         results.append)
        cluster.run(3000)
        assert not results  # prepare cannot replicate without a majority
        for follower in info.followers():
            cluster.servers[follower].recover()
        cluster.run(8000)
        assert results and results[0].committed


class TestParticipantLeaderFailures:
    def test_leader_crash_before_transaction(self):
        cluster = make_cluster(BASIC)
        key, pid = key_with_remote_leader(cluster, "us-west")
        old_leader = cluster.directory.lookup(pid).leader
        cluster.servers[old_leader].crash()
        cluster.run(3000)  # election + directory update
        assert cluster.directory.lookup(pid).leader != old_leader
        results = []
        cluster.client("us-west").submit(increment_spec(key),
                                         results.append)
        cluster.run(8000)
        assert results and results[0].committed

    def test_leader_crash_mid_prepare_basic(self):
        """Prepare dies with the leader; the client's retransmission runs a
        fresh prepare at the new leader."""
        cluster = make_cluster(BASIC)
        key, pid = key_with_remote_leader(cluster, "us-west")
        old_leader = cluster.directory.lookup(pid).leader
        results = []
        cluster.client("us-west").submit(increment_spec(key),
                                         results.append)
        # Crash the leader just after the prepare lands (one-way WAN delay)
        # but before its replication round trip completes.
        leader_dc = cluster.directory.lookup(pid).leader_datacenter()
        land = cluster.topology.one_way("us-west", leader_dc)
        injector = FailureInjector(cluster.kernel, cluster.network)
        injector.crash_at(old_leader, cluster.kernel.now + land + 1.0)
        cluster.run(15_000)
        assert results and results[0].committed
        new_pid_leader = cluster.directory.lookup(pid).leader
        assert new_pid_leader != old_leader
        value = cluster.servers[new_pid_leader].partitions[pid] \
            .store.read(key).value
        assert value == 1

    def test_fast_path_prepared_survives_leader_crash(self):
        """§4.3.3: a transaction whose fast-path prepare was exposed to the
        coordinator must reach the same decision under the new leader."""
        cluster = make_cluster(FAST)
        key, pid = key_with_remote_leader(cluster, "us-west",
                                          require_local_replica=True)
        old_leader = cluster.directory.lookup(pid).leader
        results = []
        cluster.client("us-west").submit(increment_spec(key),
                                         results.append)
        leader_dc = cluster.directory.lookup(pid).leader_datacenter()
        land = cluster.topology.one_way("us-west", leader_dc)
        injector = FailureInjector(cluster.kernel, cluster.network)
        # Crash right after the leader cast its fast vote, before the slow
        # path's replication round trip can finish.
        injector.crash_at(old_leader, cluster.kernel.now + land + 0.5)
        cluster.run(20_000)
        assert results and results[0].committed
        cluster.run(5_000)
        new_leader = cluster.directory.lookup(pid).leader
        assert new_leader != old_leader
        # The recovered leader replicated the same prepare and applied the
        # writeback exactly once.
        store = cluster.servers[new_leader].partitions[pid].store
        assert store.read(key).value == 1


class TestCoordinatorFailures:
    def test_coordinator_crash_after_commit_request(self):
        """The new coordinator re-acquires prepare results and reaches the
        same decision (§4.3.3)."""
        cluster = make_cluster(BASIC, retry_ms=1500.0)
        client = cluster.client("us-west")
        key, pid = key_with_remote_leader(cluster, "us-west")
        # Coordinator is the leader of a partition group local to us-west.
        coord_group = cluster.directory.leaders_in("us-west")[0]
        coordinator = cluster.directory.lookup(coord_group).leader
        results = []
        client.submit(increment_spec(key), results.append)
        # Crash the coordinator while the transaction is in flight: after
        # the remote read round trip, while prepares are still arriving.
        leader_dc = cluster.directory.lookup(pid).leader_datacenter()
        rtt = cluster.topology.rtt("us-west", leader_dc)
        injector = FailureInjector(cluster.kernel, cluster.network)
        injector.crash_at(coordinator, cluster.kernel.now + rtt + 2.0)
        cluster.run(30_000)
        assert results, "transaction never completed after coordinator crash"
        if results[0].committed:
            cluster.run(5_000)
            new_pid_leader = cluster.directory.lookup(pid).leader
            store = cluster.servers[new_pid_leader].partitions[pid].store
            assert store.read(key).value == 1

    def test_exactly_once_apply_across_coordinator_retry(self):
        cluster = make_cluster(BASIC, retry_ms=1000.0)
        client = cluster.client("us-east")
        key, pid = key_with_remote_leader(cluster, "us-east")
        results = []
        client.submit(increment_spec(key), results.append)
        cluster.run(20_000)
        assert results and results[0].committed
        # Duplicate writebacks (coordinator retries) must not double-apply.
        leader = cluster.directory.lookup(pid).leader
        assert cluster.servers[leader].partitions[pid].store \
            .read(key).value == 1


class TestClientFailures:
    def test_coordinator_aborts_after_missed_heartbeats(self):
        cluster = make_cluster(BASIC, heartbeat_interval_ms=150.0)
        client = cluster.client("us-west")
        key, pid = key_with_remote_leader(cluster, "us-west")
        results = []
        client.submit(increment_spec(key), results.append)
        # Kill the client while the transaction is still reading.
        injector = FailureInjector(cluster.kernel, cluster.network)
        injector.crash_at(client.node_id, cluster.kernel.now + 5.0)
        cluster.run(10_000)
        assert not results  # the dead client never hears back
        # The pending entry must have been cleaned up: another client can
        # now write the same key.
        other = cluster.client("europe")
        other_results = []
        other.submit(increment_spec(key), other_results.append)
        cluster.run(10_000)
        assert other_results and other_results[0].committed

    def test_commit_proceeds_despite_client_crash_after_commit_request(self):
        cluster = make_cluster(BASIC)
        client = cluster.client("us-west")
        key, pid = key_with_remote_leader(cluster, "us-west")
        results = []
        client.submit(increment_spec(key), results.append)
        # Crash after the commit request is (comfortably) sent: reads take
        # one RTT; add slack, then crash before the reply lands.
        leader_dc = cluster.directory.lookup(pid).leader_datacenter()
        rtt = cluster.topology.rtt("us-west", leader_dc)
        injector = FailureInjector(cluster.kernel, cluster.network)
        injector.crash_at(client.node_id, cluster.kernel.now + rtt + 2.0)
        cluster.run(15_000)
        # §4.3.1: after receiving the commit request the coordinator
        # commits regardless of the client's fate.
        leader = cluster.directory.lookup(pid).leader
        assert cluster.servers[leader].partitions[pid].store \
            .read(key).value == 1
