"""Shared test helpers: small Raft clusters and message recorders."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.raft.node import RaftConfig, RaftHost, RaftMember
from repro.sim.kernel import Kernel
from repro.sim.network import Network
from repro.sim.topology import Topology, uniform_topology


class ApplyRecorder:
    """Records commands applied by one Raft member, in order."""

    def __init__(self) -> None:
        self.commands: List[Any] = []

    def __call__(self, entry) -> None:
        self.commands.append(entry.command)


class PlainRaftHost(RaftHost):
    """A host whose only job is Raft; app messages are unexpected."""

    def handle_app_message(self, msg) -> None:  # pragma: no cover
        raise AssertionError(f"unexpected app message {msg!r}")


class RaftCluster:
    """An n-member single-group Raft cluster for tests.

    Nodes are named ``n0 .. n{n-1}``; ``n0`` is the bootstrap leader unless
    ``bootstrap`` is ``None`` (in which case the cluster starts leaderless
    and must elect).
    """

    def __init__(self, n: int = 3, seed: int = 1,
                 rtt_ms: float = 10.0,
                 config: Optional[RaftConfig] = None,
                 bootstrap: Optional[str] = "n0",
                 topology: Optional[Topology] = None):
        self.kernel = Kernel(seed=seed)
        topo = topology or uniform_topology(n, rtt_ms)
        self.network = Network(self.kernel, topo, jitter_fraction=0.0)
        self.config = config or RaftConfig(
            election_timeout_min_ms=150.0,
            election_timeout_max_ms=300.0,
            heartbeat_interval_ms=40.0,
        )
        member_ids = [f"n{i}" for i in range(n)]
        self.hosts: Dict[str, PlainRaftHost] = {}
        self.members: Dict[str, RaftMember] = {}
        self.applied: Dict[str, ApplyRecorder] = {}
        self.leadership_events: List[tuple] = []
        for i, node_id in enumerate(member_ids):
            dc = topo.datacenters[i % len(topo.datacenters)]
            host = PlainRaftHost(node_id, dc, self.kernel, self.network)
            recorder = ApplyRecorder()
            member = RaftMember(
                host, "g0", member_ids, config=self.config,
                apply_fn=recorder,
                on_leadership=self._record_leadership,
                bootstrap_leader=bootstrap,
            )
            self.hosts[node_id] = host
            self.members[node_id] = member
            self.applied[node_id] = recorder

    def _record_leadership(self, member: RaftMember,
                           payloads: Dict[str, Any]) -> None:
        self.leadership_events.append(
            (self.kernel.now, member.node_id, member.current_term, payloads))

    def start(self) -> None:
        for host in self.hosts.values():
            host.start_raft()

    def run(self, ms: float) -> None:
        self.kernel.run(until=self.kernel.now + ms)

    def leader(self) -> Optional[RaftMember]:
        """The unique live leader with the highest term, if any."""
        leaders = [m for m in self.members.values()
                   if m.is_leader and not m.host.crashed]
        if not leaders:
            return None
        return max(leaders, key=lambda m: m.current_term)

    def live_members(self) -> List[RaftMember]:
        return [m for m in self.members.values() if not m.host.crashed]
