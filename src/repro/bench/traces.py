"""Protocol message traces, reproducing Figures 2 and 3.

The paper's Figures 2 and 3 are message sequence diagrams of the basic
protocol and of CPC's fast/slow paths.  This module runs a single
transaction with the network's trace hook armed and renders the captured
messages as a timeline, so the benchmarks can regenerate (a textual form
of) those figures and assert their structural properties — which messages
flow, between which roles, in which order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.bench.cluster import CarouselCluster, DeploymentSpec
from repro.core.config import BASIC, FAST, CarouselConfig
from repro.sim.topology import ec2_five_regions
from repro.txn import TransactionSpec


@dataclass
class TracedMessage:
    """One captured protocol message."""

    sent_at_ms: float
    src: str
    dst: str
    msg_type: str
    cross_dc: bool

    def __str__(self) -> str:
        span = "WAN" if self.cross_dc else "local"
        return (f"{self.sent_at_ms:8.1f}ms  {self.src:18s} -> "
                f"{self.dst:18s}  {self.msg_type} [{span}]")


#: Raft message types, filtered out of protocol traces by default (the
#: figures draw replication as shaded boxes rather than message arrows).
RAFT_TYPES = frozenset({"RequestVote", "RequestVoteReply", "AppendEntries",
                        "AppendEntriesReply"})


def trace_transaction(mode: str = BASIC, seed: int = 42,
                      client_dc: str = "us-west",
                      keys: Optional[tuple] = None,
                      include_raft: bool = False,
                      conflicting_writer: bool = False
                      ) -> List[TracedMessage]:
    """Run one two-partition 2FI transaction and capture its messages.

    With ``conflicting_writer`` a second transaction on the same keys is
    started from another datacenter just before, reproducing Figure 3(b)'s
    conflicting-prepare scenario.
    """
    cluster = CarouselCluster(
        DeploymentSpec(seed=seed, jitter_fraction=0.0),
        CarouselConfig(mode=mode))
    cluster.run(500)
    if keys is None:
        keys = _pick_two_partition_keys(cluster, client_dc)
    trace: List[TracedMessage] = []
    nodes = cluster.network.nodes

    def hook(msg, delay_ms):
        msg_type = type(msg).__name__
        if not include_raft and msg_type in RAFT_TYPES:
            return
        src_dc = nodes[msg.src].dc
        dst_dc = nodes[msg.dst].dc
        trace.append(TracedMessage(
            sent_at_ms=cluster.kernel.now, src=msg.src, dst=msg.dst,
            msg_type=msg_type, cross_dc=src_dc != dst_dc))

    results = []
    spec = TransactionSpec(
        read_keys=keys, write_keys=keys,
        compute_writes=lambda r: {k: "traced" for k in r},
        txn_type="traced")
    cluster.network.trace_hook = hook
    if conflicting_writer:
        other = cluster.client("europe")
        other_spec = TransactionSpec(
            read_keys=keys, write_keys=keys,
            compute_writes=lambda r: {k: "rival" for k in r},
            txn_type="rival")
        other.submit(other_spec, results.append)
        cluster.run(1.0)
    cluster.client(client_dc).submit(spec, results.append)
    cluster.run(5_000)
    cluster.network.trace_hook = None
    if not results:
        raise RuntimeError("traced transaction did not complete")
    return trace


def _pick_two_partition_keys(cluster, client_dc: str) -> tuple:
    """One key on a partition with a local leader, one on a remote one —
    the Figure 2 scenario (participants in DC1 and DC2)."""
    local_key = remote_key = None
    for i in range(5000):
        key = f"trace{i}"
        pid = cluster.ring.partition_for(key)
        leader_dc = cluster.directory.lookup(pid).leader_datacenter()
        if leader_dc == client_dc and local_key is None:
            local_key = key
        elif leader_dc != client_dc and remote_key is None:
            remote_key = key
        if local_key and remote_key:
            return (local_key, remote_key)
    raise RuntimeError("could not find suitable trace keys")


def render_trace(trace: List[TracedMessage], title: str) -> str:
    lines = [title, "=" * len(title)]
    lines.extend(str(msg) for msg in trace)
    return "\n".join(lines)


def message_types(trace: List[TracedMessage]) -> List[str]:
    return [msg.msg_type for msg in trace]
