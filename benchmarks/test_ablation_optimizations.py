"""Optimization ablation (E12): what each Carousel design choice buys.

The paper evaluates two bundles (Basic, Fast).  This ablation separates
the levers DESIGN.md calls out: the read-only optimization (§4.4.2) and
CPC + local-replica reads (§4.2/§4.4.1), measuring Retwis medians on the
EC2 topology at light load.
"""

import pytest

from repro.bench.cluster import CarouselCluster, DeploymentSpec
from repro.bench.report import format_table
from repro.core.config import BASIC, FAST, CarouselConfig
from repro.sim.topology import ec2_five_regions
from repro.workloads.driver import WorkloadDriver
from repro.workloads.retwis import RetwisWorkload

CONFIGS = {
    "basic, no read-only opt": CarouselConfig(
        mode=BASIC, read_only_optimization=False),
    "basic": CarouselConfig(mode=BASIC),
    "fast, no read-only opt": CarouselConfig(
        mode=FAST, read_only_optimization=False),
    "fast": CarouselConfig(mode=FAST),
}


@pytest.fixture(scope="module")
def ablation_results():
    results = {}
    for label, config in CONFIGS.items():
        cluster = CarouselCluster(
            DeploymentSpec(topology=ec2_five_regions(), seed=12,
                           clients_per_dc=8), config)
        workload = RetwisWorkload(n_keys=1_000_000, seed=13)
        driver = WorkloadDriver(cluster, workload, target_tps=200.0,
                                duration_ms=8_000.0, warmup_ms=2_000.0,
                                cooldown_ms=2_000.0)
        results[label] = driver.run()
    return results


def test_ablation_medians(ablation_results, benchmark):
    medians = benchmark.pedantic(
        lambda: {label: stats.latency.median()
                 for label, stats in ablation_results.items()},
        rounds=1, iterations=1)

    rows = [[label, f"{median:.0f}",
             f"{ablation_results[label].abort_rate * 100:.1f}%"]
            for label, median in medians.items()]
    print("\nE12: Carousel optimization ablation "
          "(Retwis, EC2 topology, 200 tps)")
    print(format_table(["configuration", "median (ms)", "abort rate"],
                       rows))

    # The read-only optimization lowers the overall median (50% of Retwis
    # is read-only).
    assert medians["basic"] < medians["basic, no read-only opt"]
    assert medians["fast"] < medians["fast, no read-only opt"]

    # CPC + local reads lower the median further.
    assert medians["fast"] < medians["basic"]


def test_ablation_read_only_latency_reduction(ablation_results, benchmark):
    def timeline_medians():
        with_opt = ablation_results["basic"].by_type["load_timeline"]
        without = ablation_results["basic, no read-only opt"] \
            .by_type["load_timeline"]
        return with_opt.median(), without.median()

    with_opt, without = benchmark.pedantic(timeline_medians, rounds=1,
                                           iterations=1)
    print(f"\nload_timeline median: {with_opt:.0f} ms with read-only "
          f"optimization, {without:.0f} ms without")
    # One round trip versus a full commit path: a large reduction.
    assert with_opt < 0.8 * without


def test_ablation_fast_path_share(benchmark):
    """How often CPC's fast path decides a partition, vs the slow path."""
    def measure():
        cluster = CarouselCluster(
            DeploymentSpec(topology=ec2_five_regions(), seed=14,
                           clients_per_dc=8),
            CarouselConfig(mode=FAST))
        workload = RetwisWorkload(n_keys=1_000_000, seed=15)
        driver = WorkloadDriver(cluster, workload, target_tps=200.0,
                                duration_ms=6_000.0, warmup_ms=1_500.0,
                                cooldown_ms=1_500.0)
        driver.run()
        fast = sum(s.coordinator.fast_path_decisions
                   for s in cluster.servers.values())
        slow = sum(s.coordinator.slow_path_decisions
                   for s in cluster.servers.values())
        return fast, slow

    fast, slow = benchmark.pedantic(measure, rounds=1, iterations=1)
    total = fast + slow
    print(f"\nfast-path partition decisions: {fast}/{total} "
          f"({100 * fast / total:.0f}%)")
    # The fast path must be doing real work under the EC2 topology.
    assert fast > 0.2 * total
