"""Unit tests for the sweep executor, specs, digests, and cache.

The contract under test: a sweep's merged output is byte-identical
regardless of worker count, the cache invalidates on any spec or
result-relevant code change, and a failing spec surfaces as a
``SweepError`` naming it — never a hang or a silent gap.
"""

import pytest

from repro.sweep import (
    ResultCache,
    RunSpec,
    SweepError,
    SweepExecutor,
    canonical_json,
    code_fingerprint,
    register_kind,
)
from repro.chaos.minimize import minimize_schedule


# ----------------------------------------------------------------------
# RunSpec canonicalization and digests


def test_specs_equal_regardless_of_param_order():
    a = RunSpec.make("figure", {"system": "tapir", "seed": 4})
    b = RunSpec.make("figure", {"seed": 4, "system": "tapir"})
    assert a == b
    assert hash(a) == hash(b)
    assert a.digest("fp") == b.digest("fp")


def test_label_is_display_only():
    a = RunSpec.make("figure", {"seed": 4}, label="one")
    b = RunSpec.make("figure", {"seed": 4}, label="two")
    assert a.payload == b.payload
    assert a.digest("fp") == b.digest("fp")


def test_digest_separates_kind_payload_and_code():
    spec = RunSpec.make("figure", {"seed": 4})
    assert spec.digest("fp") != spec.digest("fp2")
    assert spec.digest("fp") != RunSpec.make("other", {"seed": 4}) \
        .digest("fp")
    assert spec.digest("fp") != RunSpec.make("figure", {"seed": 5}) \
        .digest("fp")


def test_canonical_json_is_sorted_and_compact():
    assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'


# ----------------------------------------------------------------------
# code fingerprint


def test_code_fingerprint_tracks_covered_files(tmp_path):
    (tmp_path / "sim").mkdir()
    (tmp_path / "bench").mkdir()
    covered = tmp_path / "sim" / "kernel.py"
    uncovered = tmp_path / "bench" / "report.py"
    covered.write_text("A = 1\n")
    uncovered.write_text("B = 1\n")

    from repro.sweep import spec as spec_module

    def fingerprint():
        spec_module._FINGERPRINTS.clear()
        return code_fingerprint(tmp_path)

    base = fingerprint()
    # Editing plot/report code keeps the fingerprint (cache stays warm).
    uncovered.write_text("B = 2\n")
    assert fingerprint() == base
    # Editing simulator code changes it (cache invalidates wholesale).
    covered.write_text("A = 2\n")
    assert fingerprint() != base


def test_code_fingerprint_is_cached_per_root(tmp_path):
    (tmp_path / "sim").mkdir()
    (tmp_path / "sim" / "kernel.py").write_text("A = 1\n")
    from repro.sweep import spec as spec_module

    spec_module._FINGERPRINTS.clear()
    first = code_fingerprint(tmp_path)
    # A second call must not re-read the tree (same process, cached).
    (tmp_path / "sim" / "kernel.py").write_text("A = 2\n")
    assert code_fingerprint(tmp_path) == first


# ----------------------------------------------------------------------
# result cache


def test_cache_roundtrip_and_miss(tmp_path):
    cache = ResultCache(tmp_path)
    spec = RunSpec.make("test-kind", {"x": 1})
    assert cache.get("ab" * 32) is None
    digest = spec.digest("fp")
    cache.put(digest, spec, {"value": 42})
    assert digest in cache
    assert cache.get(digest) == {"value": 42}
    assert len(cache) == 1


def test_cache_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    spec = RunSpec.make("test-kind", {"x": 1})
    digest = spec.digest("fp")
    cache.put(digest, spec, {"value": 42})
    cache._path(digest).write_text("not json{")
    assert cache.get(digest) is None


def test_cache_spec_change_changes_digest(tmp_path):
    fp = "fp"
    a = RunSpec.make("test-kind", {"x": 1}).digest(fp)
    b = RunSpec.make("test-kind", {"x": 2}).digest(fp)
    assert a != b


# ----------------------------------------------------------------------
# executor

# A tiny deterministic kind for executor tests: result is a pure
# function of the spec, so parallel and sequential runs must agree.
register_kind(
    "test-square",
    lambda params: {"square": params["n"] * params["n"]},
    encode=lambda record: record,
    decode=lambda doc: doc,
)

register_kind(
    "test-boom",
    lambda params: (_ for _ in ()).throw(RuntimeError("boom")),
)


def _square_specs(n=6):
    return [RunSpec.make("test-square", {"n": i}, label=f"sq{i}")
            for i in range(n)]


def test_executor_results_in_spec_order_any_job_count():
    specs = _square_specs()
    seq = SweepExecutor(jobs=1).run(specs)
    par = SweepExecutor(jobs=2).run(specs)
    expected = [{"square": i * i} for i in range(6)]
    assert seq == expected
    assert par == expected


def test_executor_unknown_kind_raises():
    with pytest.raises(ValueError, match="unknown run kind"):
        SweepExecutor().run([RunSpec.make("no-such-kind", {})])


def test_executor_failing_spec_raises_sweep_error():
    specs = _square_specs(2) + [RunSpec.make("test-boom", {},
                                             label="the-bad-one")]
    for jobs in (1, 2):
        with pytest.raises(SweepError) as excinfo:
            SweepExecutor(jobs=jobs).run(specs)
        assert len(excinfo.value.failures) == 1
        spec, tb_text = excinfo.value.failures[0]
        assert spec.label == "the-bad-one"
        assert "RuntimeError" in tb_text


def test_executor_cache_hits_second_run(tmp_path):
    cache = ResultCache(tmp_path)
    specs = _square_specs(4)
    ex = SweepExecutor(jobs=1, cache=cache)
    first = ex.run(specs)
    assert (ex.stats.hits, ex.stats.misses) == (0, 4)
    second = ex.run(specs)
    assert (ex.stats.hits, ex.stats.misses) == (4, 4)
    assert first == second


def test_executor_uncacheable_kind_counts_no_cache_traffic(tmp_path):
    register_kind("test-nocodec", lambda params: params["n"])
    ex = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
    ex.run([RunSpec.make("test-nocodec", {"n": 3})])
    assert (ex.stats.hits, ex.stats.misses) == (0, 0)


def test_executor_stats_track_jobs_and_wall():
    ex = SweepExecutor(jobs=2)
    ex.run(_square_specs(3))
    assert ex.stats.jobs == 2
    assert ex.stats.wall_seconds > 0


def test_first_failing_matches_sequential_scan():
    register_kind("test-verdict", lambda params: params["fails"])

    def specs(flags):
        return [RunSpec.make("test-verdict", {"fails": flag, "i": i})
                for i, flag in enumerate(flags)]

    ex = SweepExecutor(jobs=2)
    assert ex.first_failing(specs([False, True, True])) == 1
    assert ex.first_failing(specs([True, False, False])) == 0
    assert ex.first_failing(specs([False, False])) is None


# ----------------------------------------------------------------------
# minimizer equivalence: lazy scan vs batch-parallel first_failing


def _batch_first_failing(still_fails):
    """An eager batch evaluator with the executor's selection rule:
    evaluate everything, return the smallest failing index."""

    def first_failing(candidates):
        verdicts = [still_fails(c) for c in candidates]
        return next((i for i, v in enumerate(verdicts) if v), None)

    return first_failing


@pytest.mark.parametrize("bad", [{3}, {1, 4}, {0, 2, 5}, {2, 3, 4}])
def test_minimize_identical_with_batch_first_failing(bad):
    events = list(range(8))

    def still_fails(candidate):
        # Fails whenever every "bad" event is present.
        return bad <= set(candidate)

    lazy = minimize_schedule(events, still_fails)
    batch = minimize_schedule(
        events, still_fails,
        first_failing=_batch_first_failing(still_fails))
    assert lazy == batch
    assert set(lazy) == bad
