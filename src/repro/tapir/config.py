"""TAPIR tuning parameters."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TapirConfig:
    """Client/replica behaviour knobs.

    Parameters
    ----------
    fast_path_timeout_ms:
        How long the client waits for a unanimous fast quorum before
        starting IR's slow path.  The Carousel paper singles this wait out
        as a cause of TAPIR's long tail (§6.3).  Sized for the EC2
        topology by default; the local-cluster experiments lower it.
    retry_ms:
        Client retransmission timeout for lost messages.
    """

    fast_path_timeout_ms: float = 250.0
    retry_ms: float = 10_000.0

    def __post_init__(self) -> None:
        if self.fast_path_timeout_ms <= 0:
            raise ValueError("fast_path_timeout_ms must be positive")
        if self.retry_ms <= 0:
            raise ValueError("retry_ms must be positive")
