"""Edge-case tests: RaftHost routing, node CPU hooks, failure injector."""

import pytest

from repro.raft.messages import AppendEntries
from repro.raft.node import RaftConfig, RaftHost, RaftMember
from repro.sim.failure import FailureInjector
from repro.sim.kernel import Kernel
from repro.sim.message import Message
from repro.sim.network import Network
from repro.sim.topology import single_datacenter, uniform_topology
from tests.support import PlainRaftHost, RaftCluster


class TestRaftHostRouting:
    def test_duplicate_group_rejected(self):
        kernel = Kernel()
        network = Network(kernel, single_datacenter(), jitter_fraction=0.0)
        host = PlainRaftHost("h", "dc0", kernel, network)
        RaftMember(host, "g", ["h"])
        with pytest.raises(ValueError, match="already a member"):
            RaftMember(host, "g", ["h"])

    def test_host_must_be_group_member(self):
        kernel = Kernel()
        network = Network(kernel, single_datacenter(), jitter_fraction=0.0)
        host = PlainRaftHost("h", "dc0", kernel, network)
        with pytest.raises(ValueError, match="host must be"):
            RaftMember(host, "g", ["other"])

    def test_duplicate_member_ids_rejected(self):
        kernel = Kernel()
        network = Network(kernel, single_datacenter(), jitter_fraction=0.0)
        host = PlainRaftHost("h", "dc0", kernel, network)
        with pytest.raises(ValueError, match="duplicate member"):
            RaftMember(host, "g", ["h", "h"])

    def test_message_for_unknown_group_dropped(self):
        kernel = Kernel()
        network = Network(kernel, single_datacenter(), jitter_fraction=0.0)
        host = PlainRaftHost("h", "dc0", kernel, network)
        RaftMember(host, "g", ["h"])
        other = PlainRaftHost("o", "dc0", kernel, network)
        other.send("h", AppendEntries(group_id="nope", term=1,
                                      leader_id="o"))
        kernel.run()  # must not raise

    def test_two_groups_on_one_host_are_independent(self):
        kernel = Kernel(seed=2)
        network = Network(kernel, uniform_topology(1, 1.0),
                          jitter_fraction=0.0)
        host = PlainRaftHost("h", "dc0", kernel, network)
        config = RaftConfig(election_timeout_min_ms=100,
                            election_timeout_max_ms=200,
                            heartbeat_interval_ms=30)
        applied = {"a": [], "b": []}
        member_a = RaftMember(host, "a", ["h"], config=config,
                              apply_fn=lambda e: applied["a"].append(
                                  e.command), bootstrap_leader="h")
        member_b = RaftMember(host, "b", ["h"], config=config,
                              apply_fn=lambda e: applied["b"].append(
                                  e.command), bootstrap_leader="h")
        host.start_raft()
        kernel.run(until=50)
        member_a.propose("only-a")
        member_b.propose("only-b")
        kernel.run(until=100)
        assert applied["a"] == ["only-a"]
        assert applied["b"] == ["only-b"]


class TestCrashRecoveryOfRaftState:
    def test_crash_preserves_log_and_term(self):
        cluster = RaftCluster(n=3, seed=4)
        cluster.start()
        cluster.run(100)
        cluster.leader().propose("persist-me")
        cluster.run(200)
        n1 = cluster.members["n1"]
        log_before = [e.command for e in n1.log.all_entries()]
        term_before = n1.current_term
        cluster.hosts["n1"].crash()
        cluster.run(100)
        cluster.hosts["n1"].recover()
        assert [e.command for e in n1.log.all_entries()] == log_before
        assert n1.current_term >= term_before

    def test_crashed_leader_loses_volatile_leadership(self):
        cluster = RaftCluster(n=3, seed=4)
        cluster.start()
        cluster.run(100)
        leader = cluster.leader()
        leader.host.crash()
        assert not leader.is_leader


class TestFailureInjector:
    def test_log_records_actions(self):
        kernel = Kernel()
        network = Network(kernel, uniform_topology(2, 5.0),
                          jitter_fraction=0.0)
        a = PlainRaftHost("a", "dc0", kernel, network)
        injector = FailureInjector(kernel, network)
        injector.crash_at("a", 10.0)
        injector.recover_at("a", 20.0)
        kernel.run(until=30.0)
        actions = [(action, subject) for __, action, subject
                   in injector.log]
        assert actions == [("crash", "a"), ("recover", "a")]
        assert not a.crashed

    def test_partition_and_heal(self):
        kernel = Kernel()
        network = Network(kernel, uniform_topology(2, 5.0),
                          jitter_fraction=0.0)
        PlainRaftHost("a", "dc0", kernel, network)
        PlainRaftHost("b", "dc1", kernel, network)
        injector = FailureInjector(kernel, network)
        injector.partition_at(["a"], ["b"], 5.0)
        injector.heal_at(["a"], ["b"], 15.0)
        kernel.run(until=10.0)
        assert network.is_partitioned("a", "b")
        kernel.run(until=20.0)
        assert not network.is_partitioned("a", "b")

    def test_crash_now(self):
        kernel = Kernel()
        network = Network(kernel, uniform_topology(1, 1.0),
                          jitter_fraction=0.0)
        a = PlainRaftHost("a", "dc0", kernel, network)
        FailureInjector(kernel, network).crash_now("a")
        assert a.crashed


class TestServiceTimeHook:
    def test_subclass_hook_controls_queueing(self):
        class Slow(PlainRaftHost):
            def handle_app_message(self, msg):
                self.handled_at = self.kernel.now

            def service_time_for(self, msg):
                return 7.0

        class Probe(Message):
            pass

        kernel = Kernel()
        network = Network(kernel, single_datacenter(), jitter_fraction=0.0)
        slow = Slow("s", "dc0", kernel, network)
        probe_sender = PlainRaftHost("p", "dc0", kernel, network)
        probe_sender.send("s", Probe())
        kernel.run()
        # Delivery at 0.25 ms + 7 ms modeled service.
        assert slow.handled_at == pytest.approx(7.25)
