"""Command-line runner: regenerate any paper table or figure.

Usage::

    python -m repro table1
    python -m repro table2
    python -m repro trace-basic          # Figure 2
    python -m repro trace-cpc            # Figure 3 (a and b)
    python -m repro trace --system basic # full span/WANRT trace

    python -m repro lint src/            # determinism linter (detlint)
    python -m repro protolint            # protocol-conformance analyzer
    python -m repro divergence --system basic   # dual-run hash-seed check
    python -m repro chaos --system carousel-fast --seeds 0..9  # nemesis
    python -m repro perf run --quick     # benchmark suites -> BENCH_*.json
    python -m repro perf compare BENCH_seed.json BENCH_pr.json

    python -m repro fig4 [--scale full] [--jobs N]
    python -m repro fig5 [--scale full]  # shares the sweep with fig6
    python -m repro fig6 [--scale full]
    python -m repro fig7 [--scale full]
    python -m repro fig8 [--scale full]
    python -m repro all  [--scale full]

``--json PATH`` additionally writes the measured series to a JSON file.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, Optional

from repro.bench import experiments
from repro.bench.report import (
    format_table,
    render_bandwidth,
    render_cdf,
    render_latency_table,
    render_throughput_sweep,
)
from repro.bench.runner import SYSTEM_LABELS
from repro.bench.traces import render_trace, trace_transaction
from repro.core.config import BASIC, FAST


def _emit_json(path: Optional[str], payload: dict) -> None:
    if path is None:
        return
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, default=str)
    print(f"\n[written {path}]")


def cmd_table1(args) -> None:
    from repro.sim.topology import FIVE_REGIONS, TABLE_1_RTT_MS
    rows = [[a, b, f"{rtt:.0f}"]
            for (a, b), rtt in sorted(TABLE_1_RTT_MS.items())]
    print("Table 1: roundtrip network latencies between datacenters (ms)")
    print(format_table(["from", "to", "rtt (ms)"], rows))
    _emit_json(args.json, {f"{a}-{b}": rtt
                           for (a, b), rtt in TABLE_1_RTT_MS.items()})


def cmd_table2(args) -> None:
    from collections import Counter
    from repro.workloads.retwis import RetwisWorkload
    workload = RetwisWorkload(n_keys=100_000, seed=2)
    counts = Counter(workload.next_spec().txn_type for __ in range(20_000))
    total = sum(counts.values())
    rows = [[t, f"{c / total * 100:.1f}%"]
            for t, c in sorted(counts.items())]
    print("Table 2: Retwis transaction mix (measured over 20k draws)")
    print(format_table(["transaction type", "share"], rows))
    _emit_json(args.json, {t: c / total for t, c in counts.items()})


def cmd_trace_basic(args) -> None:
    trace = trace_transaction(mode=BASIC, seed=42)
    print(render_trace(trace, "Figure 2: Carousel basic protocol"))


def cmd_trace(args) -> None:
    from repro.trace.export import render_timeline, to_chrome_trace
    from repro.trace.harness import run_traced
    from repro.trace.invariants import check_transaction

    if args.txn_id < 1:
        raise SystemExit("--txn-id must be >= 1")
    run = run_traced(args.system, n_txns=args.txn_id,
                     read_only=args.read_only,
                     force_slow_path=args.slow_path)
    txn = run.txn_traces[args.txn_id - 1]
    print(render_timeline(txn))
    print()
    print(check_transaction(txn))
    _emit_json(args.json, to_chrome_trace(run.tracer))


def cmd_trace_cpc(args) -> None:
    trace = trace_transaction(mode=FAST, seed=42)
    print(render_trace(trace, "Figure 3(a): CPC without conflicts"))
    print()
    trace_b = trace_transaction(mode=FAST, seed=42,
                                conflicting_writer=True)
    print(render_trace(trace_b, "Figure 3(b): CPC with conflicts"))


def _ops_table(ops_by_label: Dict[str, Dict[str, int]]) -> str:
    rows = [[label,
             f"{ops['events_executed']:,}",
             f"{ops['events_cancelled']:,}",
             f"{ops['messages_delivered']:,}"]
            for label, ops in ops_by_label.items()]
    return format_table(
        ["system", "events", "cancelled", "messages"], rows)


def _sweep_summary(args) -> None:
    """One-line executor summary after each figure command: worker
    count, cache hit/miss counts, and sweep wall-clock."""
    executor = getattr(args, "_executor", None)
    if executor is None:
        return
    stats = executor.stats
    print(f"\n[sweep] jobs={stats.jobs} cache hits={stats.hits} "
          f"misses={stats.misses} wall={stats.wall_seconds:.2f}s")


def _latency_figure(args, name: str, runner: Callable) -> None:
    results = runner(args.scale, executor=getattr(args, "_executor",
                                                  None))
    recorders = experiments.latency_recorders(results)
    ops_by_label = {r.label: r.op_counters for r in results.values()}
    print(f"{name} (EC2 topology, 200 tps, scale={args.scale})")
    print(render_latency_table(recorders))
    print("\nCDF series:")
    print(render_cdf(recorders))
    print("\nSimulator work (deterministic op counters):")
    print(_ops_table(ops_by_label))
    _emit_json(args.json, {
        label: {"latency": recorder.summary(),
                "ops": ops_by_label[label]}
        for label, recorder in recorders.items()
    })
    _sweep_summary(args)


def cmd_fig4(args) -> None:
    _latency_figure(args, "Figure 4: Retwis latency",
                    experiments.fig4_experiment)


def cmd_fig8(args) -> None:
    _latency_figure(args, "Figure 8: YCSB+T latency",
                    experiments.fig8_experiment)


def _sweep(args) -> Dict:
    if getattr(args, "_sweep_cache", None) is None:
        args._sweep_cache = experiments.throughput_sweep_experiment(
            args.scale, executor=getattr(args, "_executor", None))
    return args._sweep_cache


def cmd_fig5(args) -> None:
    sweep = _sweep(args)
    series = experiments.sweep_series(sweep)
    ops_by_label = {
        SYSTEM_LABELS[system]: {
            key: sum(r.op_counters[key] for r in points)
            for key in ("events_executed", "events_cancelled",
                        "messages_delivered")}
        for system, points in sweep.items()
    }
    print("Figure 5: committed throughput vs target throughput "
          f"(Retwis, 5 ms uniform RTT, scale={args.scale})")
    print(render_throughput_sweep(series))
    print("\nSimulator work across the sweep (deterministic op "
          "counters):")
    print(_ops_table(ops_by_label))
    _emit_json(args.json, {
        "series": series,
        "ops": {SYSTEM_LABELS[system]:
                [r.op_counters for r in points]
                for system, points in sweep.items()},
    })
    _sweep_summary(args)


def cmd_fig6(args) -> None:
    sweep = _sweep(args)
    series = experiments.sweep_series(sweep)
    print("Figure 6: abort rate vs target throughput "
          f"(Retwis, 5 ms uniform RTT, scale={args.scale})")
    print(render_throughput_sweep(series))
    _emit_json(args.json, series)
    _sweep_summary(args)


def cmd_fig7(args) -> None:
    results = experiments.bandwidth_experiment(args.scale)
    rows = {SYSTEM_LABELS[s]: experiments.bandwidth_roles(r)
            for s, r in results.items()}
    print("Figure 7: average bandwidth at 5000 tps target "
          f"(Mbps per node, scale={args.scale})")
    print(render_bandwidth(rows))
    _emit_json(args.json, rows)


def cmd_all(args) -> None:
    for command in (cmd_table1, cmd_table2, cmd_trace_basic,
                    cmd_trace_cpc, cmd_fig4, cmd_fig5, cmd_fig6,
                    cmd_fig7, cmd_fig8):
        command(args)
        print("\n" + "=" * 72 + "\n")


COMMANDS = {
    "table1": cmd_table1,
    "table2": cmd_table2,
    "trace-basic": cmd_trace_basic,
    "trace-cpc": cmd_trace_cpc,
    "trace": cmd_trace,
    "fig4": cmd_fig4,
    "fig5": cmd_fig5,
    "fig6": cmd_fig6,
    "fig7": cmd_fig7,
    "fig8": cmd_fig8,
    "all": cmd_all,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the Carousel paper's tables and figures.",
        epilog="additional verbs: trace (span/WANRT traces), "
               "lint (determinism linter), "
               "protolint (protocol-conformance analyzer), "
               "divergence (dual-run hash-seed check), "
               "chaos (nemesis harness), "
               "perf (benchmarks and regression tracking), "
               "conform (DES vs asyncio/TCP differential), "
               "cluster (multi-process localhost deployment), "
               "serve (one process of a cluster) — "
               "run `python -m repro <verb> --help` for each")
    parser.add_argument("experiment", choices=sorted(COMMANDS),
                        help="which table/figure to regenerate")
    parser.add_argument("--scale", choices=["smoke", "quick", "full"],
                        default="quick",
                        help="smoke (CI), quick (default), or "
                             "paper-length runs")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write measured series to a JSON file")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for figure sweeps "
                             "(default 1: in-process)")
    parser.add_argument("--no-cache", action="store_true",
                        help="skip the on-disk sweep result cache")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="sweep result cache directory (default: "
                             "$REPRO_SWEEP_CACHE or .repro-sweep-cache)")
    parser.add_argument("--system", choices=["basic", "fast", "tapir",
                                             "layered"],
                        default="basic",
                        help="(trace) protocol variant to trace")
    parser.add_argument("--txn-id", type=int, default=1, metavar="N",
                        help="(trace) run N transactions and show the Nth")
    parser.add_argument("--read-only", action="store_true",
                        help="(trace) trace a read-only transaction")
    parser.add_argument("--slow-path", action="store_true",
                        help="(trace) force TAPIR's IR slow path")
    return parser


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in ("lint", "protolint", "divergence"):
        # Static-analyzer subcommands live in repro.analysis.
        from repro.analysis.cli import main as analysis_main
        return analysis_main(argv)
    if argv and argv[0] == "chaos":
        # The nemesis harness lives in repro.chaos.
        from repro.chaos.cli import main as chaos_main
        return chaos_main(argv)
    if argv and argv[0] == "perf":
        # Benchmarks and perf-regression tracking live in repro.perf.
        from repro.perf.cli import main as perf_main
        return perf_main(argv)
    if argv and argv[0] in ("serve", "cluster", "conform"):
        # Runtime backends and conformance live in repro.runtime.
        from repro.runtime.cli import main as runtime_main
        return runtime_main(argv)
    args = build_parser().parse_args(argv)
    args._sweep_cache = None
    args._executor = _build_executor(args)
    COMMANDS[args.experiment](args)
    return 0


def _build_executor(args):
    """The figure-sweep executor for this invocation: ``--jobs`` worker
    processes, with the on-disk result cache on by default."""
    from repro.sweep import ResultCache, SweepExecutor, default_cache_dir

    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    return SweepExecutor(jobs=args.jobs, cache=cache)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
