"""Unit tests for topologies, including the paper's Table 1 matrix."""

import pytest

from repro.sim.topology import (
    EC2_FIVE_REGIONS,
    FIVE_REGIONS,
    TABLE_1_RTT_MS,
    Topology,
    ec2_five_regions,
    single_datacenter,
    uniform_topology,
)


class TestTable1Matrix:
    """Check the shipped matrix against Table 1 of the paper."""

    @pytest.mark.parametrize("pair, rtt", sorted(TABLE_1_RTT_MS.items()))
    def test_rtt_matches_table(self, pair, rtt):
        a, b = pair
        assert EC2_FIVE_REGIONS.rtt(a, b) == rtt
        assert EC2_FIVE_REGIONS.rtt(b, a) == rtt

    def test_five_regions_present(self):
        assert set(EC2_FIVE_REGIONS.datacenters) == set(FIVE_REGIONS)

    def test_specific_values_from_paper(self):
        assert EC2_FIVE_REGIONS.rtt("us-west", "us-east") == 73.0
        assert EC2_FIVE_REGIONS.rtt("europe", "australia") == 290.0
        assert EC2_FIVE_REGIONS.rtt("asia", "australia") == 115.0

    def test_one_way_is_half_rtt(self):
        assert EC2_FIVE_REGIONS.one_way("us-west", "us-east") == 36.5


class TestTopology:
    def test_same_dc_uses_intra_dc_rtt(self):
        topo = ec2_five_regions(intra_dc_rtt_ms=0.5)
        assert topo.rtt("europe", "europe") == 0.5

    def test_missing_pair_raises(self):
        with pytest.raises(ValueError, match="missing RTT"):
            Topology(["a", "b", "c"], {("a", "b"): 1.0, ("a", "c"): 1.0})

    def test_unknown_datacenter_in_pair_raises(self):
        with pytest.raises(ValueError, match="unknown datacenter"):
            Topology(["a", "b"], {("a", "zzz"): 1.0})

    def test_duplicate_datacenter_raises(self):
        with pytest.raises(ValueError, match="duplicate"):
            Topology(["a", "a"], {})

    def test_negative_rtt_raises(self):
        with pytest.raises(ValueError, match="negative"):
            Topology(["a", "b"], {("a", "b"): -1.0})

    def test_contains(self):
        assert "asia" in EC2_FIVE_REGIONS
        assert "mars" not in EC2_FIVE_REGIONS

    def test_nearest_prefers_origin(self):
        near = EC2_FIVE_REGIONS.nearest("asia", ["europe", "asia", "us-west"])
        assert near == "asia"

    def test_nearest_by_rtt(self):
        # From us-east: us-west is 73 ms vs europe 88 ms vs asia 172 ms.
        near = EC2_FIVE_REGIONS.nearest("us-east",
                                        ["asia", "europe", "us-west"])
        assert near == "us-west"

    def test_nearest_empty_candidates_raises(self):
        with pytest.raises(ValueError):
            EC2_FIVE_REGIONS.nearest("asia", [])


class TestUniformTopology:
    def test_local_cluster_setup(self):
        # The paper's local cluster: 5 simulated DCs at 5 ms RTT (§6.4).
        topo = uniform_topology(5, 5.0)
        assert len(topo.datacenters) == 5
        for a in topo.datacenters:
            for b in topo.datacenters:
                if a != b:
                    assert topo.rtt(a, b) == 5.0

    def test_single_datacenter(self):
        topo = single_datacenter("only")
        assert topo.datacenters == ["only"]
        assert topo.rtt("only", "only") == 0.5
