"""Unit tests for the storage substrate."""

import pytest

from repro.store.directory import DirectoryService, PartitionInfo
from repro.store.kvstore import Record, VersionedKVStore
from repro.store.partitioning import ConsistentHashRing


class TestVersionedKVStore:
    def test_missing_key_reads_none_version_zero(self):
        store = VersionedKVStore()
        assert store.read("nope") == Record(None, 0)
        assert store.version("nope") == 0

    def test_write_then_read(self):
        store = VersionedKVStore()
        store.write("k", "v", 1)
        assert store.read("k") == Record("v", 1)
        assert "k" in store and len(store) == 1

    def test_versions_must_increase(self):
        store = VersionedKVStore()
        store.write("k", "v1", 3)
        with pytest.raises(ValueError, match="non-monotonic"):
            store.write("k", "v2", 3)
        with pytest.raises(ValueError, match="non-monotonic"):
            store.write("k", "v2", 2)

    def test_version_zero_write_rejected(self):
        with pytest.raises(ValueError):
            VersionedKVStore().write("k", "v", 0)

    def test_write_if_newer(self):
        store = VersionedKVStore()
        assert store.write_if_newer("k", "a", 2)
        assert not store.write_if_newer("k", "b", 2)
        assert not store.write_if_newer("k", "b", 1)
        assert store.read("k") == Record("a", 2)
        assert store.write_if_newer("k", "c", 5)
        assert store.read("k").version == 5

    def test_writes_applied_counter(self):
        store = VersionedKVStore()
        store.write("a", 1, 1)
        store.write_if_newer("a", 2, 2)
        store.write_if_newer("a", 0, 1)  # rejected, not counted
        assert store.writes_applied == 2

    def test_snapshot_is_detached(self):
        store = VersionedKVStore()
        store.write("k", "v", 1)
        snap = store.snapshot()
        store.write("k", "v2", 2)
        assert snap["k"] == Record("v", 1)


class TestConsistentHashRing:
    def test_deterministic_placement(self):
        ring1 = ConsistentHashRing(["p0", "p1", "p2"])
        ring2 = ConsistentHashRing(["p0", "p1", "p2"])
        keys = [f"key{i}" for i in range(100)]
        assert [ring1.partition_for(k) for k in keys] == \
            [ring2.partition_for(k) for k in keys]

    def test_all_partitions_receive_keys(self):
        ring = ConsistentHashRing([f"p{i}" for i in range(5)])
        seen = {ring.partition_for(f"user:{i}") for i in range(2000)}
        assert seen == {f"p{i}" for i in range(5)}

    def test_balance_within_reason(self):
        ring = ConsistentHashRing([f"p{i}" for i in range(5)], vnodes=128)
        counts = {}
        n = 20000
        for i in range(n):
            pid = ring.partition_for(f"key:{i}")
            counts[pid] = counts.get(pid, 0) + 1
        expected = n / 5
        for pid, count in counts.items():
            assert 0.5 * expected < count < 1.5 * expected, (pid, count)

    def test_adding_partition_moves_few_keys(self):
        before = ConsistentHashRing([f"p{i}" for i in range(5)])
        after = ConsistentHashRing([f"p{i}" for i in range(6)])
        keys = [f"key:{i}" for i in range(5000)]
        moved = sum(
            1 for k in keys
            if before.partition_for(k) != after.partition_for(k))
        # Consistent hashing: ~1/6 of keys move, far fewer than rehash-all.
        assert moved < len(keys) * 0.35

    def test_group_by_partition_preserves_keys(self):
        ring = ConsistentHashRing(["p0", "p1"])
        keys = [f"k{i}" for i in range(20)]
        groups = ring.group_by_partition(keys)
        regrouped = [k for group in groups.values() for k in group]
        assert sorted(regrouped) == sorted(keys)
        for pid, group in groups.items():
            assert all(ring.partition_for(k) == pid for k in group)

    def test_validation(self):
        with pytest.raises(ValueError):
            ConsistentHashRing([])
        with pytest.raises(ValueError):
            ConsistentHashRing(["a", "a"])
        with pytest.raises(ValueError):
            ConsistentHashRing(["a"], vnodes=0)

    def test_partitions_property_is_copy(self):
        ring = ConsistentHashRing(["p0", "p1"])
        ring.partitions.append("p2")
        assert ring.partitions == ["p0", "p1"]


class TestPartitionInfo:
    def make(self):
        return PartitionInfo("p0", ["n0", "n1", "n2"],
                             ["dc0", "dc1", "dc2"], "n0")

    def test_fault_tolerance(self):
        assert self.make().fault_tolerance == 1
        five = PartitionInfo("p", list("abcde"),
                             ["d"] * 5, "a")
        assert five.fault_tolerance == 2

    def test_leader_datacenter(self):
        assert self.make().leader_datacenter() == "dc0"

    def test_replica_in(self):
        info = self.make()
        assert info.replica_in("dc1") == "n1"
        assert info.replica_in("elsewhere") is None

    def test_followers(self):
        assert self.make().followers() == ["n1", "n2"]

    def test_validation(self):
        with pytest.raises(ValueError, match="mismatch"):
            PartitionInfo("p", ["a"], [], "a")
        with pytest.raises(ValueError, match="not a replica"):
            PartitionInfo("p", ["a"], ["d"], "b")
        with pytest.raises(ValueError, match="duplicate"):
            PartitionInfo("p", ["a", "a"], ["d", "d"], "a")


class TestDirectoryService:
    def test_register_and_lookup(self):
        directory = DirectoryService()
        info = PartitionInfo("p0", ["n0", "n1"], ["dc0", "dc1"], "n0")
        directory.register(info)
        assert directory.lookup("p0").leader == "n0"
        assert directory.partitions() == ["p0"]

    def test_duplicate_registration_rejected(self):
        directory = DirectoryService()
        info = PartitionInfo("p0", ["n0"], ["dc0"], "n0")
        directory.register(info)
        with pytest.raises(ValueError):
            directory.register(info)

    def test_lookup_returns_copy(self):
        directory = DirectoryService()
        directory.register(PartitionInfo("p0", ["n0", "n1"],
                                         ["dc0", "dc1"], "n0"))
        cached = directory.lookup("p0")
        cached.leader = "n1"
        assert directory.lookup("p0").leader == "n0"

    def test_set_leader(self):
        directory = DirectoryService()
        directory.register(PartitionInfo("p0", ["n0", "n1"],
                                         ["dc0", "dc1"], "n0"))
        directory.set_leader("p0", "n1")
        assert directory.lookup("p0").leader == "n1"
        with pytest.raises(ValueError):
            directory.set_leader("p0", "outsider")

    def test_leaders_in(self):
        directory = DirectoryService()
        directory.register(PartitionInfo("p0", ["a0", "a1"],
                                         ["dc0", "dc1"], "a0"))
        directory.register(PartitionInfo("p1", ["b0", "b1"],
                                         ["dc1", "dc0"], "b0"))
        assert directory.leaders_in("dc0") == ["p0"]
        assert directory.leaders_in("dc1") == ["p1"]
        assert directory.leaders_in("dc9") == []
