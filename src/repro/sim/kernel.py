"""The discrete-event simulation kernel.

The kernel owns the virtual clock and the event queue.  All simulated time
in this repository is expressed in **milliseconds** as floats, matching the
units the Carousel paper uses for its latency tables and figures.

Determinism
-----------
Two runs of the same simulation with the same seed produce identical event
orders.  Ties in event time are broken by insertion order (a monotonically
increasing sequence number), and all randomness must be drawn from
``kernel.random``, the single seeded :class:`random.Random` instance.

Schedulers
----------
The event queue is pluggable (``Kernel(scheduler=...)``): the default
``"heap"`` is a binary heap with lazy compaction of cancelled entries;
``"calendar"`` is a :class:`~repro.sim.calqueue.CalendarQueue` with O(1)
amortized operations and *eager* removal of cancelled events, which wins
on cancellation-heavy workloads (see ``python -m repro perf``).  Both
schedulers pop events in exactly the same ``(time, seq)`` order, so the
choice never changes simulation results — only wall-clock speed.

Operation counters
------------------
``events_scheduled`` / ``events_executed`` / ``events_cancelled`` count
kernel operations deterministically (they depend only on the simulation,
never on the host), so the perf subsystem can regression-check behaviour
without trusting noisy timers.
"""

from __future__ import annotations

import heapq
import random
from functools import partial
from typing import Any, Callable, List, Optional

from repro.sim.calqueue import CalendarQueue
from repro.trace.tracer import NULL_TRACER

#: Accepted values for ``Kernel(scheduler=...)``.
SCHEDULERS = ("heap", "calendar")


class Event:
    """A scheduled callback.

    Events are ordered by ``(time, seq)`` so that simultaneous events fire in
    the order they were scheduled.  Cancelling an event hands it back to the
    kernel's scheduler: the heap marks it dead and skips it on pop (with
    lazy compaction), the calendar queue removes it from its bucket
    immediately.

    ``ctx`` is the event's causal trace context (``None`` when tracing is
    off); ``_owner`` back-references the kernel while the event is queued so
    cancellation can be routed to the scheduler.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "ctx",
                 "_owner")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.ctx = None
        self._owner: Optional["Kernel"] = None

    def cancel(self) -> None:
        """Prevent this event's callback from running."""
        if self.cancelled:
            return
        self.cancelled = True
        owner = self._owner
        if owner is not None:
            self._owner = None
            owner._note_cancelled(self)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.3f} seq={self.seq} {state}>"


class HeapScheduler:
    """Binary heap with lazy compaction of cancelled entries.

    Cancelled events stay heaped until popped; when dead entries
    outnumber live ones the heap is compacted in place (``compactions``
    counts those passes).  ``push`` is bound to :func:`heapq.heappush`
    on the (never rebound) heap list, so the hot path pays no Python-
    level indirection.
    """

    __slots__ = ("_heap", "_cancelled", "compactions", "push")

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._cancelled = 0
        self.compactions = 0
        self.push = partial(heapq.heappush, self._heap)

    def discard(self, event: Event) -> None:
        """Note a cancellation; compact lazily when dead entries
        outnumber live ones."""
        self._cancelled += 1
        if self._cancelled > 8 and self._cancelled * 2 > len(self._heap):
            # In-place rebuild: the heap list identity must survive
            # because ``push`` is bound to it.
            self._heap[:] = [e for e in self._heap if not e.cancelled]
            heapq.heapify(self._heap)
            self._cancelled = 0
            self.compactions += 1

    def pop_until(self, limit: Optional[float]) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` when
        the heap is empty or that event is after ``limit``."""
        heap = self._heap
        while heap:
            event = heap[0]
            if event.cancelled:
                heapq.heappop(heap)
                self._cancelled -= 1
                continue
            if limit is not None and event.time > limit:
                return None
            heapq.heappop(heap)
            return event
        return None

    def pending(self) -> int:
        """Live (non-cancelled) events still queued."""
        return len(self._heap) - self._cancelled


def _make_scheduler(name: str):
    if name == "heap":
        return HeapScheduler()
    if name == "calendar":
        return CalendarQueue()
    raise ValueError(f"unknown scheduler {name!r}; expected one of "
                     f"{SCHEDULERS}")


class Kernel:
    """Event loop with a virtual clock.

    Parameters
    ----------
    seed:
        Seed for the kernel's single random number generator.  Every source
        of randomness in a simulation (jitter, workload key choice, client
        think times, randomized election timeouts) must use ``kernel.random``
        or an RNG derived from it, so that runs are reproducible.
    scheduler:
        ``"heap"`` (default) or ``"calendar"`` — see the module docstring.
        Both produce identical event orders.
    """

    def __init__(self, seed: int = 0, scheduler: str = "heap"):
        self._now: float = 0.0
        self._seq: int = 0
        self._sched = _make_scheduler(scheduler)
        self._push = self._sched.push
        self._stopped = False
        self.scheduler = scheduler
        self.random = random.Random(seed)
        self.seed = seed
        #: Deterministic operation counters (host-independent).
        self.events_scheduled = 0
        self.events_executed = 0
        self.events_cancelled = 0
        #: The attached tracer; the shared disabled instance by default, so
        #: tracing costs one ``tracer.enabled`` check when off.
        self.tracer = NULL_TRACER
        #: Optional event-digest sink (see :mod:`repro.analysis.digest`):
        #: when set, every executed event and every network send is
        #: recorded to a compact stream for cross-process determinism
        #: diffing.  ``None`` (the default) costs one check per event.
        self.digest = None

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    @property
    def heap_compactions(self) -> int:
        """Lazy compaction passes performed (0 for the calendar queue,
        which removes cancelled events eagerly)."""
        return self._sched.compactions

    @property
    def _heap(self) -> List[Event]:
        # Back-compat observability hook for the heap scheduler's tests.
        return self._sched._heap

    def schedule(self, delay: float, callback: Callable[..., None],
                 *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` ms from now.

        Negative delays are clamped to zero; an event can never be scheduled
        in the virtual past.
        """
        if delay < 0:
            delay = 0.0
        event = Event(self._now + delay, self._seq, callback, args)
        self._seq += 1
        self.events_scheduled += 1
        if self.tracer.enabled:
            event.ctx = self.tracer.current
        event._owner = self
        self._push(event)
        return event

    def schedule_at(self, time: float, callback: Callable[..., None],
                    *args: Any) -> Event:
        """Schedule ``callback(*args)`` at an absolute virtual time."""
        return self.schedule(time - self._now, callback, *args)

    def spawn(self, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run as soon as possible (a
        zero-delay event; part of the runtime interface, see
        :data:`repro.runtime.api.KERNEL_ATTRS`)."""
        return self.schedule(0.0, callback, *args)

    def stop(self) -> None:
        """Make :meth:`run` return after the current event completes."""
        self._stopped = True

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.

        Returns the number of events executed.  When ``until`` is given, the
        clock is advanced to exactly ``until`` on return (even if the queue
        drained earlier), which makes fixed-duration experiments exact.
        """
        executed = 0
        self._stopped = False
        pop_until = self._sched.pop_until
        while not self._stopped:
            if max_events is not None and executed >= max_events:
                break
            event = pop_until(until)
            if event is None:
                break
            event._owner = None
            self._now = event.time
            if self.digest is not None:
                self.digest.on_event(event.time, event.seq)
            tracer = self.tracer
            if tracer.enabled:
                tracer.current = event.ctx
            event.callback(*event.args)
            executed += 1
        self.events_executed += executed
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        return executed

    def _note_cancelled(self, event: Event) -> None:
        """Route a cancellation of a still-queued event to the scheduler."""
        self.events_cancelled += 1
        self._sched.discard(event)

    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still scheduled."""
        return self._sched.pending()

    def op_counters(self) -> dict:
        """The kernel's deterministic operation counters, for
        :mod:`repro.perf` and the bench reports."""
        return {
            "events_scheduled": self.events_scheduled,
            "events_executed": self.events_executed,
            "events_cancelled": self.events_cancelled,
            "pending_events": self.pending_events(),
            "compactions": self._sched.compactions,
        }
