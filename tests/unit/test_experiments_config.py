"""Unit tests for the experiment parameter definitions."""

import pytest

from repro.bench import experiments
from repro.bench.runner import (
    SYSTEMS,
    build_cluster,
    build_workload,
)
from repro.bench.cluster import DeploymentSpec
from repro.sim.topology import uniform_topology


class TestScales:
    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            experiments.latency_run_params("medium")
        with pytest.raises(ValueError):
            experiments.sweep_targets("medium")
        with pytest.raises(ValueError):
            experiments.sweep_run_params("medium")

    def test_full_scale_matches_paper_method(self):
        params = experiments.latency_run_params("full")
        # 90 s runs, first/last 30 s discarded, 10 M keys (§6.2).
        assert params["duration_ms"] == 90_000.0
        assert params["warmup_ms"] == params["cooldown_ms"] == 30_000.0
        assert params["n_keys"] == 10_000_000

    def test_quick_windows_are_valid(self):
        for fn in (experiments.latency_run_params,
                   experiments.sweep_run_params):
            params = fn("quick")
            assert params["duration_ms"] > \
                params["warmup_ms"] + params["cooldown_ms"]

    def test_sweep_targets_cover_paper_range(self):
        for scale in ("quick", "full"):
            targets = experiments.sweep_targets(scale)
            assert min(targets) <= 1000
            assert max(targets) == 10000
            assert targets == sorted(targets)

    def test_service_times_cover_all_systems(self):
        assert set(experiments.SERVICE_TIME_MS) == set(SYSTEMS)
        # TAPIR's modeled per-request cost is higher (its measured peak is
        # the lowest, §6.4.1).
        assert experiments.SERVICE_TIME_MS["tapir"] > \
            experiments.SERVICE_TIME_MS["carousel-basic"]


class TestRunnerBuilders:
    def test_build_cluster_each_system(self):
        spec = DeploymentSpec(topology=uniform_topology(3, 2.0),
                              n_partitions=3, seed=1)
        for system in SYSTEMS:
            cluster = build_cluster(system, spec)
            assert cluster.clients

    def test_build_cluster_unknown_system(self):
        spec = DeploymentSpec(topology=uniform_topology(3, 2.0),
                              n_partitions=3, seed=1)
        with pytest.raises(ValueError, match="unknown system"):
            build_cluster("spanner", spec)

    def test_build_workload(self):
        retwis = build_workload("retwis", n_keys=1000, seed=1)
        assert retwis.name == "retwis"
        ycsbt = build_workload("ycsbt", n_keys=1000, seed=1)
        assert ycsbt.name == "ycsbt"
        with pytest.raises(ValueError, match="unknown workload"):
            build_workload("tpcc", n_keys=1000, seed=1)

    def test_tapir_timeout_override(self):
        spec = DeploymentSpec(topology=uniform_topology(3, 2.0),
                              n_partitions=3, seed=1)
        cluster = build_cluster("tapir", spec,
                                tapir_fast_path_timeout_ms=77.0)
        assert cluster.config.fast_path_timeout_ms == 77.0
