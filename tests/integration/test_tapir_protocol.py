"""Integration tests for the TAPIR baseline."""

import pytest

from repro.bench.cluster import TapirCluster, DeploymentSpec
from repro.sim.topology import ec2_five_regions
from repro.tapir.config import TapirConfig
from repro.txn import REASON_CLIENT_ABORT, TransactionSpec


def make_cluster(seed=1, **config_kwargs):
    spec = DeploymentSpec(seed=seed, jitter_fraction=0.0)
    cluster = TapirCluster(spec, TapirConfig(**config_kwargs))
    cluster.run(100)
    return cluster


def submit_and_run(cluster, client, spec, ms=5000):
    results = []
    client.submit(spec, results.append)
    cluster.run(ms)
    assert results, "transaction did not complete"
    return results[0]


class TestTapirCommit:
    def test_rmw_commits_and_replicates(self):
        cluster = make_cluster()
        cluster.populate({"x": 1})
        result = submit_and_run(
            cluster, cluster.client("us-west"),
            TransactionSpec(read_keys=("x",), write_keys=("x",),
                            compute_writes=lambda r: {"x": r["x"] + 1}))
        assert result.committed
        cluster.run(2000)
        pid = cluster.ring.partition_for("x")
        for replica in cluster.replicas_of(pid):
            assert replica.store.read("x").value == 2

    def test_multi_partition_commit(self):
        cluster = make_cluster()
        cluster.populate({"alice": 10, "bob": 0})
        result = submit_and_run(
            cluster, cluster.client("europe"),
            TransactionSpec(
                read_keys=("alice", "bob"), write_keys=("alice", "bob"),
                compute_writes=lambda r: {"alice": r["alice"] - 1,
                                          "bob": r["bob"] + 1}))
        assert result.committed
        readback = submit_and_run(
            cluster, cluster.client("asia"),
            TransactionSpec(read_keys=("alice", "bob"), write_keys=()))
        assert readback.committed
        assert readback.reads == {"alice": 9, "bob": 1}

    def test_client_abort(self):
        cluster = make_cluster()
        result = submit_and_run(
            cluster, cluster.client("us-west"),
            TransactionSpec(read_keys=("k",), write_keys=("k",),
                            compute_writes=lambda r: None))
        assert not result.committed
        assert result.reason == REASON_CLIENT_ABORT

    def test_fast_path_avoids_timeout(self):
        # A clean run decides via unanimous fast quorum, well under the
        # fast-path timeout.
        cluster = make_cluster(fast_path_timeout_ms=5_000.0)
        result = submit_and_run(
            cluster, cluster.client("us-west"),
            TransactionSpec(read_keys=("solo",), write_keys=("solo",),
                            compute_writes=lambda r: {"solo": 1}))
        assert result.committed
        assert result.latency_ms < 1_000.0
        assert cluster.client("us-west").slow_paths == 0


class TestTapirConflicts:
    def test_stale_read_aborts(self):
        cluster = make_cluster()
        pid = cluster.ring.partition_for("stale-key")
        # One replica is ahead (as if it already applied another commit).
        ahead = cluster.replicas_of(pid)
        for replica in ahead:
            replica.store.write("stale-key", "v1", 1)
        ahead[0].store.write("stale-key", "v2", 2)
        # Client reads from its closest replica; if that one is behind the
        # quorum detects the stale version at prepare.
        results = []
        client = cluster.client("us-west")
        client.submit(TransactionSpec(
            read_keys=("stale-key",), write_keys=("stale-key",),
            compute_writes=lambda r: {"stale-key": "mine"}), results.append)
        cluster.run(8000)
        assert results
        # Whichever replica the client read from, the mismatch between
        # replicas means this prepare can never be unanimously OK: it either
        # aborts or goes through the slow path; a wrong lost-update commit
        # with all-OK fast path must not happen.
        if results[0].committed:
            assert client.slow_paths > 0

    def test_conflicting_transactions_not_both_lost(self):
        cluster = make_cluster(fast_path_timeout_ms=100.0)
        cluster.populate({"hot": 0})
        results = []
        for dc in ("us-west", "europe"):
            cluster.client(dc).submit(TransactionSpec(
                read_keys=("hot",), write_keys=("hot",),
                compute_writes=lambda r: {"hot": (int(r["hot"] or 0)) + 1}),
                results.append)
        cluster.run(10_000)
        assert len(results) == 2
        committed = [r for r in results if r.committed]
        # OCC: at least one commits only if they did not interleave; but
        # both committing with the same base version (lost update) must be
        # impossible because prepares conflict at the replicas.
        if len(committed) == 2:
            final = submit_and_run(
                cluster, cluster.client("asia"),
                TransactionSpec(read_keys=("hot",), write_keys=()))
            assert final.reads["hot"] == "2" or final.reads["hot"] == 2

    def test_self_conflict_blocks_until_commit_acked(self):
        cluster = make_cluster()
        client = cluster.client("us-west")
        first = TransactionSpec(read_keys=("mine",), write_keys=("mine",),
                                compute_writes=lambda r: {"mine": 1})
        second = TransactionSpec(read_keys=("mine",), write_keys=("mine",),
                                 compute_writes=lambda r: {"mine": 2})
        results = []
        client.submit(first, results.append)
        cluster.run(400)  # first decided, commit acks still in flight?
        tid2 = client.submit(second, results.append)
        cluster.run(10_000)
        assert len(results) == 2
        assert all(r.committed for r in results)

    def test_queued_transaction_eventually_runs(self):
        cluster = make_cluster()
        client = cluster.client("us-west")
        results = []
        client.submit(TransactionSpec(
            read_keys=("q",), write_keys=("q",),
            compute_writes=lambda r: {"q": 1}), results.append)
        # Submit immediately: conflicts with our own in-flight transaction.
        queued_tid = client.submit(TransactionSpec(
            read_keys=("q",), write_keys=("q",),
            compute_writes=lambda r: {"q": 2}), results.append)
        assert queued_tid is None  # queued behind own conflicting txn
        cluster.run(10_000)
        assert len(results) == 2
        assert all(r.committed for r in results)


class TestTapirSlowPath:
    def test_mixed_votes_wait_for_timeout_then_slow_path(self):
        cluster = make_cluster(fast_path_timeout_ms=400.0)
        pid = cluster.ring.partition_for("mixed")
        replicas = cluster.replicas_of(pid)
        # Make exactly one replica disagree (stale version) so the fast
        # quorum (3/3) is impossible but a slow quorum (2 OK) exists.
        for replica in replicas:
            replica.store.write("mixed", "v1", 1)
        replicas[-1].store.write("mixed", "v2", 2)
        client = cluster.client("us-west")
        result = submit_and_run(
            cluster, client,
            TransactionSpec(read_keys=(), write_keys=("mixed",),
                            compute_writes=lambda r: {"mixed": "w"}),
            ms=10_000)
        # Write-only transaction: no read validation, but the prepare still
        # goes everywhere; all OK -> fast path. Sanity: committed quickly.
        assert result.committed
