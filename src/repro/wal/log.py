"""Deterministic simulated-durable write-ahead log.

The log models a single append-only file per node.  ``append`` adds a
record to the tail; ``fsync`` issues the records to "disk" — each
unsynced record gets a ``durable_at`` stamp of *now + sync_latency_ms*.
A crash at virtual time *t* keeps exactly the records with
``durable_at <= t``: everything never fsynced is gone, and records whose
sync was still in flight (stamp in the future) are lost with it.  With
``torn_tail`` enabled, a crash instead keeps a deterministic *prefix* of
the in-flight sync window — modelling a partially persisted disk write —
chosen by a dedicated string-seeded RNG that is drawn only at crash
time, so fault-free runs never touch it.

Determinism contract: the log never schedules kernel events and never
draws from the kernel RNG.  Nonzero ``sync_latency_ms`` is charged to
the host node's CPU-queue model (``_busy_until``), which delays
*subsequent* work on that node without perturbing the event heap.  At
the default latency of zero the WAL is entirely passive — a run with it
enabled is byte-identical (op counters and all) to one without.
"""

from __future__ import annotations

import math
import random
from typing import Callable, List, Optional

_NEVER = math.inf


class WriteAheadLog:
    """Append/fsync record journal with crash truncation and replay."""

    def __init__(
        self,
        owner_id: str,
        clock: Optional[Callable[[], float]] = None,
        sync_latency_ms: float = 0.0,
        torn_tail: bool = False,
    ) -> None:
        self.owner_id = owner_id
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.sync_latency_ms = sync_latency_ms
        self.torn_tail = torn_tail
        # Dedicated stream, string-seeded per owner, drawn only inside
        # crash() — never on the fault-free path, never the kernel RNG.
        self._torn_rng = random.Random(f"wal-torn:{owner_id}")  # detlint: ignore[unseeded-random]
        self._host = None  # sim.node.Node to bill fsync latency to
        self._records: List[object] = []
        self._durable_at: List[float] = []
        self.appends = 0
        self.syncs = 0
        self.crashes = 0
        self.records_lost = 0

    # -- wiring ------------------------------------------------------------

    def attach_host(self, node) -> None:
        """Bill fsync latency to ``node``'s CPU queue and read its clock."""
        self._host = node
        self._clock = lambda: node.kernel.now

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    @property
    def unsynced(self) -> int:
        """Records appended but not yet issued to disk."""
        return sum(1 for stamp in self._durable_at if stamp == _NEVER)

    # -- append / fsync ----------------------------------------------------

    def append(self, record, sync: bool = True) -> None:
        """Append ``record`` to the tail; fsync immediately by default."""
        self._records.append(record)
        self._durable_at.append(_NEVER)
        self.appends += 1
        if sync:
            self.fsync()

    def fsync(self) -> int:
        """Issue every unsynced record to disk; return how many."""
        stamped = 0
        durable_at = self._clock() + self.sync_latency_ms
        for i in range(len(self._durable_at) - 1, -1, -1):
            if self._durable_at[i] != _NEVER:
                break
            self._durable_at[i] = durable_at
            stamped += 1
        if stamped:
            self.syncs += 1
            if self.sync_latency_ms > 0.0 and self._host is not None:
                # Charge the sync to the node's CPU queue: work enqueued
                # after this fsync starts no earlier than its completion.
                host = self._host
                host._busy_until = (
                    max(host.kernel.now, host._busy_until) + self.sync_latency_ms
                )
        return stamped

    # -- crash / replay ----------------------------------------------------

    def crash(self, now: Optional[float] = None) -> int:
        """Power loss at virtual time ``now``: truncate to the durable image.

        Returns the number of records lost.  Unsynced records are always
        lost.  Records whose fsync was still in flight (``durable_at``
        in the future) are lost wholesale, or — with ``torn_tail`` — cut
        at a deterministic prefix point drawn from the torn-tail RNG.
        """
        if now is None:
            now = self._clock()
        self.crashes += 1
        keep = len(self._records)
        while keep > 0 and self._durable_at[keep - 1] > now:
            keep -= 1
        if self.torn_tail:
            # The in-flight window is the contiguous run of records with a
            # finite future stamp; a torn write persists some prefix of it.
            inflight_end = keep
            while (
                inflight_end < len(self._records)
                and self._durable_at[inflight_end] != _NEVER
            ):
                inflight_end += 1
            window = inflight_end - keep
            if window > 0:
                keep += self._torn_rng.randint(0, window)
        lost = len(self._records) - keep
        del self._records[keep:]
        del self._durable_at[keep:]
        self.records_lost += lost
        return lost

    def replay(self) -> List[object]:
        """The durable image, in append order."""
        return list(self._records)
