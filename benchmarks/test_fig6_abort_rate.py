"""Figure 6: abort rate versus target throughput.

Paper shapes (§6.4.1): TAPIR's abort rate increases sharply past ~5000 tps
(the same point its committed throughput drops); Carousel Fast's abort
rate is above Carousel Basic's at high load (stale local-replica reads:
9% vs 7% at 8000 tps); both Carousel variants stay far below TAPIR's
spike.
"""

from repro.bench.report import render_throughput_sweep
from repro.bench.runner import SYSTEM_LABELS


def _aborts(points):
    return {r.target_tps: r.stats.abort_rate for r in points}


def test_fig6_abort_rate_vs_target(throughput_sweep, benchmark):
    aborts = benchmark.pedantic(
        lambda: {system: _aborts(points)
                 for system, points in throughput_sweep.items()},
        rounds=1, iterations=1)

    series = {
        SYSTEM_LABELS[system]: [
            (r.target_tps, r.stats.committed_tps, r.stats.abort_rate)
            for r in points]
        for system, points in throughput_sweep.items()
    }
    print("\nFigure 6: abort rate vs target throughput "
          "(Retwis, 5 ms uniform RTT)")
    print(render_throughput_sweep(series))

    targets = sorted(aborts["tapir"])
    low, high = targets[0], targets[-1]

    # TAPIR: sharp abort-rate increase past its knee.
    assert aborts["tapir"][high] > 2.5 * max(aborts["tapir"][low], 0.02)

    # Carousel stays clearly below TAPIR's spike over the loaded half of
    # the sweep (the paper compares at 8000: 7-9% vs TAPIR's climb).
    loaded = [t for t in targets if t >= 6500]
    tapir_avg = sum(aborts["tapir"][t] for t in loaded) / len(loaded)
    basic_avg = sum(aborts["carousel-basic"][t]
                    for t in loaded) / len(loaded)
    assert basic_avg < 0.75 * tapir_avg

    # Stale local reads give Fast a higher abort rate than Basic at high
    # load (paper: 9% vs 7% at 8000 tps).
    high_loads = [t for t in targets if t >= 6500]
    fast_avg = sum(aborts["carousel-fast"][t]
                   for t in high_loads) / len(high_loads)
    basic_avg = sum(aborts["carousel-basic"][t]
                    for t in high_loads) / len(high_loads)
    assert fast_avg > basic_avg


def test_fig6_stale_reads_only_in_fast(throughput_sweep, benchmark):
    def stale_counts():
        result = {}
        for system in ("carousel-basic", "carousel-fast"):
            total = 0
            for r in throughput_sweep[system]:
                total += r.stats.abort_reasons.get("stale_read", 0)
            result[system] = total
        return result

    stale = benchmark.pedantic(stale_counts, rounds=1, iterations=1)
    print("\nstale-read aborts:", stale)
    # Basic never reads from followers, so it can never abort on staleness.
    assert stale["carousel-basic"] == 0
    assert stale["carousel-fast"] > 0
