"""The Carousel data server (CDS).

A CDS hosts replicas of one or more partitions (each a Raft group member
plus a :class:`~repro.core.participant.PartitionComponent`) and a
:class:`~repro.core.coordinator.CoordinatorComponent` for transactions that
choose one of its led groups as their coordinating consensus group (§3.3).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import CarouselConfig
from repro.core.coordinator import CoordinatorComponent
from repro.core.messages import (
    ClientHeartbeat,
    CommitRequest,
    CoordPrepareRequest,
    FastVote,
    PrepareQuery,
    PrepareResult,
    ReadOnlyRequest,
    ReadPrepareRequest,
    Writeback,
    WritebackAck,
)
from repro.core.participant import PartitionComponent
from repro.core.records import (
    CoordDecisionRecord,
    CoordSetsRecord,
    CoordWriteDataRecord,
)
from repro.raft.node import RaftHost, RaftMember
from repro.sim.message import Message
from repro.store.directory import DirectoryService
from repro.store.kvstore import VersionedKVStore
from repro.trace.tracer import SPAN_RECOVERY
from repro.wal.log import WriteAheadLog

#: Messages addressed to a partition replica.
_PARTITION_MESSAGES = (ReadPrepareRequest, ReadOnlyRequest, Writeback,
                       PrepareQuery)
#: Messages addressed to a transaction coordinator.
_COORDINATOR_MESSAGES = (CoordPrepareRequest, CommitRequest, FastVote,
                         PrepareResult, ClientHeartbeat, WritebackAck)
#: Replicated commands owned by the coordinator role.
_COORDINATOR_RECORDS = (CoordSetsRecord, CoordWriteDataRecord,
                        CoordDecisionRecord)


class CarouselServer(RaftHost):
    """One Carousel data server."""

    #: Extra CPU per pending-list entry scanned during OCC conflict checks,
    #: in ms — same accounting as the TAPIR model, for a fair comparison.
    PENDING_SCAN_COST_MS = 0.001

    def __init__(self, node_id: str, dc: str, kernel, network,
                 directory: DirectoryService, config: CarouselConfig,
                 service_time_ms: float = 0.0):
        super().__init__(node_id, dc, kernel, network,
                         service_time_ms=service_time_ms)
        self.directory = directory
        self.config = config
        self.partitions: Dict[str, PartitionComponent] = {}
        self.coordinator = CoordinatorComponent(self)
        self.wal = WriteAheadLog(node_id)
        self.wal.attach_host(self)
        #: Deployment shape, kept so a power cycle can re-create the
        #: partition components and Raft members from scratch.
        self._partition_specs: List = []

    def service_time_for(self, msg) -> float:
        """CPU cost: base plus the modeled pending-list scan (see DESIGN.md)."""
        if self.service_time_ms > 0 and \
                isinstance(msg, ReadPrepareRequest):
            component = self.partitions.get(msg.partition_id)
            if component is not None:
                return (self.service_time_ms
                        + len(component.pending)
                        * self.PENDING_SCAN_COST_MS)
        return self.service_time_ms

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------
    def add_partition(self, partition_id: str, member_ids: List[str],
                      bootstrap_leader: Optional[str] = None,
                      store: Optional[VersionedKVStore] = None
                      ) -> PartitionComponent:
        """Host a replica of ``partition_id`` whose consensus group spans
        ``member_ids`` (server node ids)."""
        component = PartitionComponent(self, partition_id, store=store)
        member = RaftMember(
            self, partition_id, member_ids,
            config=self.config.raft,
            apply_fn=lambda entry, pid=partition_id: self._apply(pid, entry),
            vote_payload_fn=component.vote_payload,
            on_leadership=lambda member, payloads, pid=partition_id:
                self._on_leadership(pid, member, payloads),
            bootstrap_leader=bootstrap_leader,
        )
        component.attach_member(member)
        self.partitions[partition_id] = component
        self._partition_specs.append((partition_id, tuple(member_ids)))
        return component

    def on_restart(self) -> None:
        """Power-cycle recovery: rebuild every component fresh, then
        replay the WAL image.

        Raft persistent state (terms, votes, logs) comes back first;
        provisional OCC pending entries are re-added (their confirmation
        or removal replays through the Raft apply path as the commit
        index re-advances under a live leader); journaled coordinator
        decisions re-drive their writeback phases.  Nothing bootstraps —
        the restarted server rejoins every group as a follower.
        """
        records = self.wal.replay()
        self.members = {}
        self.partitions = {}
        self.coordinator = CoordinatorComponent(self)
        specs, self._partition_specs = list(self._partition_specs), []
        for partition_id, member_ids in specs:
            self.add_partition(partition_id, list(member_ids))
        self.replay_raft_wal(records)
        restored = 0
        for partition_id in sorted(self.partitions):
            restored += self.partitions[partition_id] \
                .restore_pending_from_wal(records)
        tracer = self.tracer
        if tracer.enabled:
            tracer.point(None, SPAN_RECOVERY, self.node_id, self.dc,
                         detail=(f"wal-restart records={len(records)} "
                                 f"pending-restored={restored}"))
        self.coordinator.restore_from_wal(records)

    # ------------------------------------------------------------------
    # Raft plumbing
    # ------------------------------------------------------------------
    def _apply(self, group_id: str, entry) -> None:
        command = entry.command
        if isinstance(command, _COORDINATOR_RECORDS):
            self.coordinator.apply(command, group_id)
        else:
            self.partitions[group_id].apply(command)

    def _on_leadership(self, group_id: str, member: RaftMember,
                       vote_payloads) -> None:
        self.partitions[group_id].on_leadership(member, vote_payloads)
        self.coordinator.on_leadership(group_id)

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def handle_app_message(self, msg: Message) -> None:
        """Route a non-Raft message to the partition or coordinator role."""
        if isinstance(msg, _PARTITION_MESSAGES):
            self.dispatch_partition_message(msg)
        elif isinstance(msg, _COORDINATOR_MESSAGES):
            self.dispatch_coordinator_message(msg)
        else:  # pragma: no cover - routing bug
            raise TypeError(f"unexpected message {msg!r}")

    def dispatch_coordinator_message(self, msg: Message) -> None:
        """Deliver a coordinator-addressed message to the coordinator."""
        if isinstance(msg, CoordPrepareRequest):
            self.coordinator.on_coord_prepare(msg)
        elif isinstance(msg, CommitRequest):
            self.coordinator.on_commit_request(msg)
        elif isinstance(msg, FastVote):
            self.coordinator.on_fast_vote(msg)
        elif isinstance(msg, PrepareResult):
            self.coordinator.on_prepare_result(msg)
        elif isinstance(msg, ClientHeartbeat):
            self.coordinator.on_heartbeat(msg)
        elif isinstance(msg, WritebackAck):
            self.coordinator.on_writeback_ack(msg)

    def dispatch_partition_message(self, msg: Message) -> None:
        """Deliver a partition-addressed message to its component."""
        component = self.partitions.get(msg.partition_id)
        if component is None:
            return  # stale addressing; the sender will retry
        if isinstance(msg, ReadPrepareRequest):
            component.on_read_prepare(msg)
        elif isinstance(msg, ReadOnlyRequest):
            component.on_read_only(msg)
        elif isinstance(msg, Writeback):
            component.on_writeback(msg)
        elif isinstance(msg, PrepareQuery):
            component.on_prepare_query(msg)
