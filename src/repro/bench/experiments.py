"""Experiment definitions: one entry per paper table/figure.

Both the pytest benchmarks (``benchmarks/``) and the command-line runner
(``python -m repro``) drive experiments through this module, so the
parameters live in exactly one place.  See DESIGN.md's per-experiment
index for the mapping to the paper.

Every figure experiment is expressed as a list of
:class:`~repro.sweep.spec.RunSpec` descriptors (one per curve point) and
executed through a :class:`~repro.sweep.executor.SweepExecutor`, so the
same definitions run sequentially, across worker processes
(``--jobs N``), or straight out of the content-addressed result cache —
with byte-identical merged output in every case.  Results are
:class:`~repro.bench.runner.RunRecord` summaries (detached stats + op
counters), not live clusters; only the Figure 7 bandwidth experiment
still returns :class:`ExperimentResult`, because it inspects per-node
cluster internals.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bench.runner import SYSTEMS, SYSTEM_LABELS, ExperimentResult, \
    RunRecord, run_workload
from repro.sim.topology import ec2_five_regions, uniform_topology
from repro.sweep.kinds import figure_spec

QUICK = "quick"
FULL = "full"
#: CI-smoke scale: the same experiment shapes at a fraction of the
#: virtual time and keyspace, small enough for test suites and cache-
#: warming CI steps.
SMOKE = "smoke"

SCALES = (SMOKE, QUICK, FULL)

#: Calibrated per-message CPU costs (ms) for the local-cluster throughput
#: experiments.  The paper's Go implementations have different per-request
#: costs; these reproduce the measured single-system peaks (§6.4.1):
#: TAPIR ~5000 tps, Carousel Fast leveling near 8000, Basic highest.
SERVICE_TIME_MS = {
    "tapir": 0.085,
    "carousel-basic": 0.016,
    "carousel-fast": 0.016,
}

#: TAPIR's fast-path timeout on the 5 ms local cluster (its EC2 default of
#: 250 ms would dwarf every other latency there).
TAPIR_LOCAL_TIMEOUT_MS = 50.0


def _check_scale(scale: str) -> None:
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}")


def latency_run_params(scale: str = QUICK) -> dict:
    """Run windows for the EC2 latency experiments (Figures 4 and 8).

    ``full`` is the paper's method: 90 s runs with the first and last
    30 s discarded, 10 M keys.  ``quick`` keeps the same shapes with
    shorter windows and a 1 M keyspace; ``smoke`` shrinks them further
    for test suites and CI cache warming.
    """
    _check_scale(scale)
    if scale == FULL:
        return dict(duration_ms=90_000.0, warmup_ms=30_000.0,
                    cooldown_ms=30_000.0, n_keys=10_000_000)
    if scale == SMOKE:
        return dict(duration_ms=2_000.0, warmup_ms=500.0,
                    cooldown_ms=500.0, n_keys=20_000)
    return dict(duration_ms=12_000.0, warmup_ms=3_000.0,
                cooldown_ms=3_000.0, n_keys=1_000_000)


def sweep_targets(scale: str = QUICK) -> List[float]:
    _check_scale(scale)
    if scale == FULL:
        return [1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000,
                10000]
    if scale == SMOKE:
        return [1000, 5000]
    return [1000, 3000, 5000, 6500, 8000, 10000]


def sweep_run_params(scale: str = QUICK) -> dict:
    _check_scale(scale)
    if scale == FULL:
        return dict(duration_ms=10_000.0, warmup_ms=3_000.0,
                    cooldown_ms=1_000.0, n_keys=10_000_000)
    if scale == SMOKE:
        return dict(duration_ms=800.0, warmup_ms=250.0,
                    cooldown_ms=100.0, n_keys=20_000)
    return dict(duration_ms=2_000.0, warmup_ms=600.0, cooldown_ms=200.0,
                n_keys=1_000_000)


# ----------------------------------------------------------------------
# sweep spec builders: one RunSpec per curve point


def fig4_specs(scale: str = QUICK) -> List:
    """Figure 4 run specs: Retwis latency, EC2 topology, 200 tps."""
    params = latency_run_params(scale)
    return [
        figure_spec(system=system, workload="retwis", target_tps=200.0,
                    topology=ec2_five_regions(), seed=4,
                    clients_per_dc=8, label=f"fig4:{system}", **params)
        for system in SYSTEMS
    ]


def fig8_specs(scale: str = QUICK) -> List:
    """Figure 8 run specs: YCSB+T latency, EC2 topology, 200 tps."""
    params = latency_run_params(scale)
    return [
        figure_spec(system=system, workload="ycsbt", target_tps=200.0,
                    topology=ec2_five_regions(), seed=8,
                    clients_per_dc=8, label=f"fig8:{system}", **params)
        for system in SYSTEMS
    ]


def sweep_specs(scale: str = QUICK) -> List:
    """Figure 5/6 run specs: the closed-loop throughput sweep on the
    uniform 5 ms cluster, one spec per (system, target) point."""
    topo = uniform_topology(5, 5.0)
    params = sweep_run_params(scale)
    return [
        figure_spec(system=system, workload="retwis", target_tps=target,
                    topology=topo, seed=6, clients_per_dc=40,
                    closed_loop=True,
                    server_service_time_ms=SERVICE_TIME_MS[system],
                    tapir_fast_path_timeout_ms=TAPIR_LOCAL_TIMEOUT_MS,
                    label=f"fig5:{system}@{target:g}", **params)
        for system in SYSTEMS
        for target in sweep_targets(scale)
    ]


def _run_specs(specs: List, executor=None) -> List[RunRecord]:
    """Execute figure specs through ``executor`` (a fresh sequential,
    cacheless executor when omitted), preserving spec order."""
    if executor is None:
        from repro.sweep.executor import SweepExecutor

        executor = SweepExecutor(jobs=1, cache=None)
    return executor.run(specs)


# ----------------------------------------------------------------------
# experiments


def fig4_experiment(scale: str = QUICK,
                    executor=None) -> Dict[str, RunRecord]:
    """Figure 4: Retwis latency CDFs, EC2 topology, 200 tps."""
    return dict(zip(SYSTEMS, _run_specs(fig4_specs(scale), executor)))


def fig8_experiment(scale: str = QUICK,
                    executor=None) -> Dict[str, RunRecord]:
    """Figure 8: YCSB+T latency CDFs, EC2 topology, 200 tps."""
    return dict(zip(SYSTEMS, _run_specs(fig8_specs(scale), executor)))


def throughput_sweep_experiment(scale: str = QUICK, executor=None
                                ) -> Dict[str, List[RunRecord]]:
    """Figures 5 and 6: Retwis on the uniform 5 ms cluster, closed-loop
    clients, sweeping the target throughput."""
    records = iter(_run_specs(sweep_specs(scale), executor))
    n_targets = len(sweep_targets(scale))
    return {system: [next(records) for _ in range(n_targets)]
            for system in SYSTEMS}


def bandwidth_experiment(scale: str = QUICK
                         ) -> Dict[str, ExperimentResult]:
    """Figure 7: bandwidth at a 5000 tps target, uniform 5 ms cluster.

    Runs in-process and returns live :class:`ExperimentResult` objects:
    :func:`bandwidth_roles` reads per-node counters off the cluster,
    which a detached record deliberately does not carry.
    """
    topo = uniform_topology(5, 5.0)
    params = sweep_run_params(scale)
    return {
        system: run_workload(
            system, "retwis", target_tps=5000.0, topology=topo,
            seed=7, clients_per_dc=40, closed_loop=True,
            server_service_time_ms=SERVICE_TIME_MS[system],
            tapir_fast_path_timeout_ms=TAPIR_LOCAL_TIMEOUT_MS,
            account_bandwidth=True, **params)
        for system in SYSTEMS
    }


def bandwidth_roles(result: ExperimentResult) -> Dict[str, float]:
    """Average per-node send/receive Mbps by role, for Figure 7."""
    cluster = result.cluster
    network = cluster.network
    clients = [c.node_id for c in cluster.clients]
    if hasattr(cluster, "servers"):
        leader_ids = {cluster.directory.lookup(pid).leader
                      for pid in cluster.partition_ids}
        leaders = [s for s in cluster.servers if s in leader_ids]
        followers = [s for s in cluster.servers if s not in leader_ids]
    else:
        # TAPIR is leaderless; the paper reports its replicas under the
        # "Leader/TAPIR server" bars.
        leaders = list(cluster.replicas)
        followers = []

    def avg(nodes):
        if not nodes:
            return (0.0, 0.0)
        sends, recvs = zip(*(network.bandwidth_mbps(n) for n in nodes))
        return (sum(sends) / len(nodes), sum(recvs) / len(nodes))

    client_send, client_recv = avg(clients)
    leader_send, leader_recv = avg(leaders)
    follower_send, follower_recv = avg(followers)
    return {
        "client_send": client_send, "client_recv": client_recv,
        "leader_send": leader_send, "leader_recv": leader_recv,
        "follower_send": follower_send, "follower_recv": follower_recv,
    }


def latency_recorders(results: Dict[str, RunRecord]):
    return {SYSTEM_LABELS[s]: r.stats.latency for s, r in results.items()}


def sweep_series(sweep: Dict[str, List[RunRecord]]):
    return {
        SYSTEM_LABELS[system]: [
            (r.target_tps, r.stats.committed_tps, r.stats.abort_rate)
            for r in points]
        for system, points in sweep.items()
    }
