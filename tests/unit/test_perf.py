"""Unit tests for the repro.perf subsystem: BENCH schema, comparison
logic, suite plumbing, and CLI wiring."""

import json

import pytest

from repro.perf.compare import compare_benches
from repro.perf.schema import SCHEMA_VERSION, validate_bench
from repro.perf.suites import (
    E2E_SYSTEMS,
    SUITES,
    SuiteResult,
    bench_document,
    run_suites,
)


def _doc(**suites):
    """A minimal valid BENCH document with the given suites."""
    return {
        "schema_version": SCHEMA_VERSION,
        "label": "test",
        "scale": "quick",
        "host": {"python": "3.x", "platform": "test",
                 "implementation": "cpython"},
        "suites": suites or {"s": _suite()},
    }


def _suite(rate=1000.0, ops=None):
    return {"unit": "events", "units_processed": 1000,
            "wall_seconds": 1000.0 / rate, "rate_per_sec": rate,
            "ops": dict(ops or {"events_executed": 1000})}


# ----------------------------------------------------------------------
# schema


class TestBenchSchema:
    def test_valid_document_passes(self):
        assert validate_bench(_doc()) == []

    def test_non_object_rejected(self):
        assert validate_bench([1, 2]) != []

    def test_missing_top_level_key(self):
        doc = _doc()
        del doc["host"]
        assert any("host" in e for e in validate_bench(doc))

    def test_wrong_schema_version(self):
        doc = _doc()
        doc["schema_version"] = 99
        assert validate_bench(doc) != []

    def test_bad_scale(self):
        doc = _doc()
        doc["scale"] = "medium"
        assert validate_bench(doc) != []

    def test_suite_missing_key(self):
        suite = _suite()
        del suite["ops"]
        assert any("ops" in e for e in validate_bench(_doc(s=suite)))

    def test_unknown_unit(self):
        suite = _suite()
        suite["unit"] = "parsecs"
        assert validate_bench(_doc(s=suite)) != []

    def test_float_op_counter_rejected(self):
        suite = _suite(ops={"events_executed": 12.5})
        assert any("ops" in e for e in validate_bench(_doc(s=suite)))

    def test_bool_op_counter_rejected(self):
        suite = _suite(ops={"fast_path": True})
        assert validate_bench(_doc(s=suite)) != []

    def test_empty_suites_rejected(self):
        doc = _doc()
        doc["suites"] = {}
        assert validate_bench(doc) != []

    def test_zero_wall_seconds_rejected(self):
        suite = _suite()
        suite["wall_seconds"] = 0.0
        assert validate_bench(_doc(s=suite)) != []

    def test_v1_documents_remain_valid(self):
        # The committed BENCH_seed.json predates schema v2; the
        # validator must keep accepting it without regeneration.
        doc = _doc()
        doc["schema_version"] = 1
        assert validate_bench(doc) == []

    def test_v2_host_and_cache_blocks(self):
        doc = _doc()
        doc["host"]["cpu_count"] = 4
        doc["host"]["jobs"] = 2
        doc["cache"] = {"hits": 3, "misses": 1}
        assert validate_bench(doc) == []
        doc["host"]["cpu_count"] = 0
        assert validate_bench(doc) != []
        doc["host"]["cpu_count"] = 4
        doc["cache"] = {"hits": -1, "misses": 0}
        assert validate_bench(doc) != []


# ----------------------------------------------------------------------
# compare


class TestCompare:
    def test_identical_documents_ok(self):
        result = compare_benches(_doc(), _doc())
        assert result.ok()
        assert result.regressions == []
        assert result.ops_drifted == []

    def test_injected_regression_is_flagged(self):
        base = _doc(s=_suite(rate=1000.0))
        cand = _doc(s=_suite(rate=700.0))  # -30%, threshold 15%
        result = compare_benches(base, cand, threshold=0.15)
        assert not result.ok()
        assert [d.name for d in result.regressions] == ["s"]

    def test_drop_within_threshold_passes(self):
        base = _doc(s=_suite(rate=1000.0))
        cand = _doc(s=_suite(rate=900.0))  # -10%
        assert compare_benches(base, cand, threshold=0.15).ok()

    def test_improvement_reported_not_fatal(self):
        base = _doc(s=_suite(rate=1000.0))
        cand = _doc(s=_suite(rate=2000.0))
        result = compare_benches(base, cand)
        assert result.ok()
        assert [d.name for d in result.improvements] == ["s"]

    def test_ops_drift_always_fails(self):
        base = _doc(s=_suite(ops={"events_executed": 1000}))
        cand = _doc(s=_suite(ops={"events_executed": 1001}))
        result = compare_benches(base, cand)
        assert not result.ok()
        assert not result.ok(ops_only=True)
        drift = result.ops_drifted[0].ops_drift["events_executed"]
        assert drift == {"base": 1000, "cand": 1001}

    def test_ops_only_ignores_rate_regression(self):
        base = _doc(s=_suite(rate=1000.0))
        cand = _doc(s=_suite(rate=100.0))
        result = compare_benches(base, cand)
        assert not result.ok()
        assert result.ok(ops_only=True)

    def test_missing_suite_fails(self):
        base = _doc(a=_suite(), b=_suite())
        cand = _doc(a=_suite())
        result = compare_benches(base, cand)
        assert result.missing_in_candidate == ["b"]
        assert not result.ok(ops_only=True)

    def test_extra_suite_is_fine(self):
        base = _doc(a=_suite())
        cand = _doc(a=_suite(), b=_suite())
        result = compare_benches(base, cand)
        assert result.extra_in_candidate == ["b"]
        assert result.ok()

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            compare_benches(_doc(), _doc(), threshold=1.5)

    def test_host_only_differences_never_gate(self):
        base = _doc()
        cand = _doc()
        cand["host"] = dict(cand["host"], cpu_count=8, jobs=4,
                            platform="other-box")
        result = compare_benches(base, cand)
        assert result.ok()
        assert result.ok(ops_only=True)
        assert set(result.host_diffs) == {"cpu_count", "jobs",
                                          "platform"}
        assert result.host_diffs["jobs"] == {"base": None, "cand": 4}


# ----------------------------------------------------------------------
# suites


class TestSuites:
    def test_registry_covers_all_four_systems(self):
        assert len(SUITES) >= 6
        for system in E2E_SYSTEMS:
            assert f"e2e-{system}" in SUITES

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError):
            run_suites(["no-such-suite"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            run_suites(["zipf-approx"], scale="epic")

    def test_run_produces_valid_document_and_deterministic_ops(self):
        runs = [run_suites(["zipf-approx"], scale="quick")
                for _ in range(2)]
        doc = bench_document(runs[0], label="t", scale="quick")
        assert validate_bench(doc) == []
        assert runs[0]["zipf-approx"].ops == runs[1]["zipf-approx"].ops

    def test_parallel_executor_matches_sequential_ops(self):
        from repro.sweep import SweepExecutor
        names = ["zipf-approx"]
        seq = run_suites(names, scale="quick")
        ex = SweepExecutor(jobs=2, cache=None)
        par = run_suites(names, scale="quick", executor=ex)
        assert par["zipf-approx"].ops == seq["zipf-approx"].ops
        assert par["zipf-approx"].units_processed == \
            seq["zipf-approx"].units_processed
        # Perf reps are uncacheable by design: no cache traffic at all.
        assert (ex.stats.hits, ex.stats.misses) == (0, 0)

    def test_merge_reps_rejects_diverging_ops(self):
        from repro.perf.suites import merge_reps
        a = SuiteResult(name="x", unit="events", units_processed=10,
                        wall_seconds=2.0, ops={"n": 1})
        b = SuiteResult(name="x", unit="events", units_processed=10,
                        wall_seconds=1.0, ops={"n": 1})
        assert merge_reps([a, b]).wall_seconds == 1.0
        c = SuiteResult(name="x", unit="events", units_processed=10,
                        wall_seconds=1.0, ops={"n": 2})
        with pytest.raises(RuntimeError, match="diverged"):
            merge_reps([a, c])

    def test_bench_document_records_jobs_and_cache(self):
        results = run_suites(["zipf-approx"], scale="quick")
        doc = bench_document(results, label="t", scale="quick", jobs=3,
                             cache_stats={"hits": 2, "misses": 5})
        assert validate_bench(doc) == []
        assert doc["host"]["jobs"] == 3
        assert doc["host"]["cpu_count"] >= 1
        assert doc["cache"] == {"hits": 2, "misses": 5}

    def test_rate_property(self):
        result = SuiteResult(name="x", unit="events",
                             units_processed=500, wall_seconds=2.0)
        assert result.rate_per_sec == 250.0
        assert SuiteResult(name="x", unit="events", units_processed=1,
                           wall_seconds=0.0).rate_per_sec == 0.0


# ----------------------------------------------------------------------
# CLI


class TestPerfCli:
    def test_list_names_all_suites(self, capsys):
        from repro.perf.cli import main
        assert main(["perf", "list"]) == 0
        out = capsys.readouterr().out
        for name in SUITES:
            assert name in out

    def test_run_writes_valid_bench_file(self, tmp_path, capsys):
        from repro.perf.cli import main
        out_path = tmp_path / "BENCH_t.json"
        assert main(["perf", "run", "--label", "t", "--suites",
                     "zipf-approx", "--out", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        assert validate_bench(doc) == []
        assert doc["label"] == "t"
        assert "zipf-approx" in doc["suites"]

    def test_compare_exit_codes(self, tmp_path, capsys):
        from repro.perf.cli import main
        base, cand = tmp_path / "b.json", tmp_path / "c.json"
        base.write_text(json.dumps(_doc(s=_suite(rate=1000.0))))
        cand.write_text(json.dumps(_doc(s=_suite(rate=500.0))))
        assert main(["perf", "compare", str(base), str(cand)]) == 1
        assert main(["perf", "compare", "--ops-only",
                     str(base), str(cand)]) == 0
        assert main(["perf", "compare", str(base), str(base)]) == 0

    def test_compare_rejects_invalid_file(self, tmp_path):
        from repro.perf.cli import main
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"nope": 1}))
        with pytest.raises(SystemExit):
            main(["perf", "compare", str(bad), str(bad)])

    def test_repro_cli_routes_perf(self, tmp_path, capsys):
        from repro.cli import main
        out_path = tmp_path / "BENCH_r.json"
        assert main(["perf", "run", "--label", "r", "--suites",
                     "zipf-approx", "--out", str(out_path)]) == 0
        assert validate_bench(json.loads(out_path.read_text())) == []

    def test_repro_help_lists_all_five_verbs(self, capsys):
        from repro.cli import main
        with pytest.raises(SystemExit) as exit_info:
            main(["--help"])
        assert exit_info.value.code == 0
        out = capsys.readouterr().out
        for verb in ("trace", "lint", "divergence", "chaos", "perf"):
            assert verb in out
