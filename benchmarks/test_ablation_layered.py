"""Layered-architecture ablation: what Carousel's overlap actually buys.

The paper's introduction motivates Carousel against systems that layer
2PC on top of consensus and execute the stages sequentially (§1, §2.2).
This ablation runs the same Retwis workload on the same placement against
(a) a faithful layered baseline (read round, then 2PC with every state
change replicated before the next step) and (b) both Carousel variants,
measuring the sequential-WANRT savings directly.
"""

import pytest

from repro.bench.cluster import (
    CarouselCluster,
    DeploymentSpec,
    LayeredCluster,
)
from repro.bench.report import render_latency_table
from repro.core.config import BASIC, FAST, CarouselConfig
from repro.sim.topology import ec2_five_regions
from repro.workloads.driver import WorkloadDriver
from repro.workloads.retwis import RetwisWorkload


@pytest.fixture(scope="module")
def layered_results():
    results = {}
    for label in ("Layered 2PC/consensus", "Carousel Basic",
                  "Carousel Fast"):
        spec = DeploymentSpec(topology=ec2_five_regions(), seed=17,
                              clients_per_dc=8)
        if label == "Layered 2PC/consensus":
            cluster = LayeredCluster(spec)
        else:
            mode = BASIC if label == "Carousel Basic" else FAST
            cluster = CarouselCluster(spec, CarouselConfig(mode=mode))
        workload = RetwisWorkload(n_keys=1_000_000, seed=18)
        driver = WorkloadDriver(cluster, workload, target_tps=200.0,
                                duration_ms=8_000.0, warmup_ms=2_000.0,
                                cooldown_ms=2_000.0)
        results[label] = driver.run()
    return results


def test_layered_ablation_medians(layered_results, benchmark):
    medians = benchmark.pedantic(
        lambda: {label: stats.latency.median()
                 for label, stats in layered_results.items()},
        rounds=1, iterations=1)

    print("\nAblation: layered architecture vs Carousel "
          "(Retwis, EC2 topology, 200 tps)")
    print(render_latency_table(
        {label: stats.latency
         for label, stats in layered_results.items()}))

    # Carousel's whole point: overlapping processing, 2PC and consensus
    # beats executing them sequentially.
    assert medians["Carousel Basic"] < medians["Layered 2PC/consensus"]
    assert medians["Carousel Fast"] < medians["Carousel Basic"]
    # The gap is substantial — at least ~25% at the median.
    assert medians["Carousel Basic"] < \
        0.8 * medians["Layered 2PC/consensus"]


def test_layered_read_write_gap_is_larger(layered_results, benchmark):
    """Read-write transactions pay the full sequential stack; the gap
    there exceeds the overall median gap."""
    def rw_medians():
        out = {}
        for label, stats in layered_results.items():
            recorder = stats.by_type.get("post_tweet")
            out[label] = recorder.median() if recorder else None
        return out

    medians = benchmark.pedantic(rw_medians, rounds=1, iterations=1)
    print("\npost_tweet medians:", {k: f"{v:.0f} ms"
                                    for k, v in medians.items()})
    assert medians["Carousel Basic"] < medians["Layered 2PC/consensus"]
    assert medians["Carousel Fast"] < medians["Layered 2PC/consensus"]
