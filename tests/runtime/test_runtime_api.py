"""Interface-drift tests for the pluggable runtime.

Both backends — the DES kernel/network and the asyncio/TCP kernel/
transport — must expose the attribute surfaces in
:mod:`repro.runtime.api`.  These tests run the drift validators against
real instances of each, so adding a method to one backend without the
other fails here instead of failing deep inside a conformance run.
"""

import asyncio

from repro.runtime.api import (
    BACKENDS,
    KERNEL_ATTRS,
    TRANSPORT_ATTRS,
    missing_kernel_attrs,
    missing_transport_attrs,
)
from repro.runtime.des import DesRuntime
from repro.sim.topology import ec2_five_regions


def _aio_runtime(loop):
    from repro.runtime.aio import AioRuntime
    return AioRuntime("driver", seed=0, topology=ec2_five_regions(),
                      loop=loop)


class TestInterfaceDrift:
    def test_des_backend_satisfies_both_surfaces(self):
        runtime = DesRuntime(seed=0, topology=ec2_five_regions())
        assert missing_kernel_attrs(runtime.kernel) == []
        assert missing_transport_attrs(runtime.network) == []

    def test_aio_backend_satisfies_both_surfaces(self):
        loop = asyncio.new_event_loop()
        try:
            runtime = _aio_runtime(loop)
            assert missing_kernel_attrs(runtime.kernel) == []
            assert missing_transport_attrs(runtime.network) == []
        finally:
            loop.close()

    def test_validators_report_what_is_missing(self):
        class Hollow:
            pass

        assert missing_kernel_attrs(Hollow()) == list(KERNEL_ATTRS)
        assert missing_transport_attrs(Hollow()) == list(TRANSPORT_ATTRS)

    def test_backend_names(self):
        assert BACKENDS == ("des", "asyncio")
        assert DesRuntime(seed=0,
                          topology=ec2_five_regions()).backend == "des"
        loop = asyncio.new_event_loop()
        try:
            assert _aio_runtime(loop).backend == "asyncio"
        finally:
            loop.close()


class TestDesRuntimeEquivalence:
    """DesRuntime must build the identical kernel/network the benchmark
    clusters always built directly — that is what keeps BENCH op
    counters byte-identical after the refactor."""

    def test_kernel_and_network_construction(self):
        topology = ec2_five_regions()
        runtime = DesRuntime(seed=7, topology=topology,
                             jitter_fraction=0.02)
        assert runtime.kernel.seed == 7
        assert runtime.network.topology is topology
        assert runtime.network.jitter_fraction == 0.02

    def test_sim_claim_and_hosts_accept_everything(self):
        # The single-process DES network hosts every node; the claim/
        # hosts placement hooks must be unconditional no-ops there.
        runtime = DesRuntime(seed=0, topology=ec2_five_regions())
        assert runtime.network.claim("n1", "server", "oregon") is True
        assert runtime.network.claim("c1", "client", "tokyo") is True
        assert runtime.network.hosts("anything") is True

    def test_spawn_is_a_zero_delay_event(self):
        runtime = DesRuntime(seed=0, topology=ec2_five_regions())
        kernel = runtime.kernel
        fired = []
        kernel.spawn(lambda: fired.append(kernel.now))
        kernel.run()
        assert fired == [0.0]
        assert kernel.events_executed == 1


class TestAioKernel:
    def test_timer_counters_and_cancel(self):
        async def scenario():
            from repro.runtime.aio import AioKernel
            kernel = AioKernel(seed=0, loop=asyncio.get_running_loop())
            fired = []
            kernel.schedule(1.0, fired.append, "a")
            doomed = kernel.schedule(1.0, fired.append, "b")
            doomed.cancel()
            doomed.cancel()  # idempotent
            await asyncio.sleep(0.05)
            return kernel, fired

        kernel, fired = asyncio.run(scenario())
        assert fired == ["a"]
        assert kernel.events_scheduled == 2
        assert kernel.events_executed == 1
        assert kernel.events_cancelled == 1
        assert set(kernel.op_counters()) >= {
            "events_scheduled", "events_executed", "events_cancelled"}

    def test_per_process_rng_streams_differ_but_reproduce(self):
        async def draws(label):
            from repro.runtime.aio import AioKernel
            kernel = AioKernel(seed=3, loop=asyncio.get_running_loop(),
                               label=label)
            return [kernel.random.random() for __ in range(4)]

        a1 = asyncio.run(draws("dc-oregon"))
        a2 = asyncio.run(draws("dc-oregon"))
        b = asyncio.run(draws("dc-tokyo"))
        assert a1 == a2
        assert a1 != b
