"""Digest recorder tests: record format, kernel/network hooks, round-trip."""

from dataclasses import dataclass
from typing import List

from repro.analysis.digest import DigestRecorder, parse_send_fields
from repro.sim.kernel import Kernel
from repro.sim.message import Message
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.topology import ec2_five_regions


@dataclass
class Ping(Message):
    payload: str = "ping"


class Echo(Node):
    """Replies to every ping once."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.received: List = []

    def handle_message(self, msg):
        self.received.append(msg)
        if isinstance(msg, Ping) and msg.payload == "ping":
            self.send(msg.src, Ping(payload="pong"))


def run_digested(record_events=True):
    kernel = Kernel(seed=1)
    net = Network(kernel, ec2_five_regions(), jitter_fraction=0.0)
    digest = DigestRecorder(record_events=record_events)
    kernel.digest = digest
    a = Echo("a", "us-west", kernel, net)
    Echo("b", "us-east", kernel, net)
    a.send("b", Ping())
    kernel.run()
    return digest


def test_send_records_capture_route_type_and_bytes():
    digest = run_digested()
    sends = [r for r in digest.records if r.startswith("S ")]
    assert len(sends) == 2
    first = parse_send_fields(sends[0])
    assert first["route"] == "a->b"
    assert first["type"] == "Ping"
    assert int(first["bytes"]) > 0
    reply = parse_send_fields(sends[1])
    assert reply["route"] == "b->a"


def test_event_records_are_ordered_and_optional():
    digest = run_digested()
    events = [r for r in digest.records if r.startswith("E ")]
    assert len(events) == 2  # two deliveries
    seqs = [int(r.split("seq=")[1]) for r in events]
    assert seqs == sorted(seqs)
    sends_only = run_digested(record_events=False)
    assert all(r.startswith("S ") for r in sends_only.records)


def test_identical_runs_produce_identical_digests():
    assert run_digested().records == run_digested().records


def test_untraced_send_has_none_trace_fields():
    digest = run_digested()
    fields = parse_send_fields(digest.records[0])
    assert fields["tid"] == "None"
    assert fields["msg"] == "None"
    assert fields["parent"] == "None"


def test_parse_send_fields_rejects_event_records():
    assert parse_send_fields("E t=1.000000 seq=3") == {}


def test_write_read_round_trip(tmp_path):
    digest = run_digested()
    out = tmp_path / "digest.txt"
    digest.write(str(out))
    assert DigestRecorder.read(str(out)) == digest.records


def test_kernel_without_digest_is_unaffected():
    kernel = Kernel(seed=1)
    net = Network(kernel, ec2_five_regions(), jitter_fraction=0.0)
    a = Echo("a", "us-west", kernel, net)
    Echo("b", "us-east", kernel, net)
    a.send("b", Ping())
    kernel.run()
    assert kernel.digest is None
