"""Wire-format sanity tests: every protocol message sizes and carries the
fields its handlers rely on."""

import dataclasses

import pytest

from repro.core import messages as carousel_msgs
from repro.core import records as carousel_records
from repro.layered import messages as layered_msgs
from repro.raft import messages as raft_msgs
from repro.sim.message import HEADER_BYTES, Message
from repro.tapir import messages as tapir_msgs
from repro.txn import TID


def message_classes(module):
    return [obj for obj in vars(module).values()
            if isinstance(obj, type) and issubclass(obj, Message)
            and obj is not Message]


ALL_MESSAGE_MODULES = [carousel_msgs, layered_msgs, raft_msgs, tapir_msgs]


@pytest.mark.parametrize("module", ALL_MESSAGE_MODULES)
def test_every_message_is_a_dataclass_with_defaults(module):
    for cls in message_classes(module):
        assert dataclasses.is_dataclass(cls), cls
        instance = cls()  # all fields must default
        assert instance.size_bytes() >= HEADER_BYTES


@pytest.mark.parametrize("module", ALL_MESSAGE_MODULES)
def test_sizes_grow_with_payload(module):
    for cls in message_classes(module):
        small = cls().size_bytes()
        # Fill any string-keyed dict/tuple field and re-measure.
        fields = dataclasses.fields(cls)
        kwargs = {}
        for f in fields:
            if f.name == "tid":
                kwargs[f.name] = TID("some-long-client-name", 123456)
        if kwargs:
            big = cls(**kwargs).size_bytes()
            assert big > small, cls


def test_record_classes_are_frozen():
    for module in (carousel_records,):
        for name, cls in vars(module).items():
            if dataclasses.is_dataclass(cls) and isinstance(cls, type):
                params = cls.__dataclass_params__
                assert params.frozen, f"{name} must be immutable"


def test_append_entries_size_scales_with_entries():
    from repro.raft.log import LogEntry
    empty = raft_msgs.AppendEntries(group_id="g", term=1, leader_id="a")
    full = raft_msgs.AppendEntries(
        group_id="g", term=1, leader_id="a",
        entries=[LogEntry(1, i, "command-payload" * 4)
                 for i in range(1, 11)])
    assert full.size_bytes() > empty.size_bytes() + 10 * len(
        "command-payload" * 4)
