#!/usr/bin/env python
"""Concurrent cross-partition bank transfers with an invariant check.

Many clients move money between accounts that live on different partitions
in different continents.  Conflicting transfers abort (OCC) and are
retried by the application.  At the end, the sum of all balances must be
exactly what we started with — serializability means no money is created
or destroyed.  Run with::

    python examples/bank_transfers.py
"""

from repro.bench.cluster import CarouselCluster, DeploymentSpec
from repro.core.config import FAST, CarouselConfig
from repro.txn import TransactionSpec

N_ACCOUNTS = 20
INITIAL_BALANCE = 1_000
N_TRANSFERS = 200


def account(i: int) -> str:
    return f"acct:{i}"


def main() -> None:
    cluster = CarouselCluster(
        DeploymentSpec(seed=21, clients_per_dc=4),
        CarouselConfig(mode=FAST))
    cluster.populate({account(i): INITIAL_BALANCE
                      for i in range(N_ACCOUNTS)})
    cluster.run(500)

    rng = cluster.kernel.random
    stats = {"committed": 0, "aborted": 0, "retries": 0}

    def make_transfer(src: str, dst: str, amount: int, attempt: int = 0):
        def on_complete(result, src=src, dst=dst, amount=amount,
                        attempt=attempt):
            if result.committed:
                stats["committed"] += 1
            elif result.reason == "conflict" and attempt < 3:
                # OCC conflict: retry after a short backoff.
                stats["retries"] += 1
                retry_spec, retry_done = make_transfer(src, dst, amount,
                                                       attempt + 1)
                client = rng.choice(cluster.clients)
                cluster.kernel.schedule(rng.uniform(50, 250),
                                        client.submit, retry_spec,
                                        retry_done)
            else:
                stats["aborted"] += 1

        return make_spec(src, dst, amount, attempt), on_complete

    def make_spec(src, dst, amount, attempt):
        def compute(reads):
            if reads[src] is None or reads[src] < amount:
                return None
            return {src: reads[src] - amount, dst: reads[dst] + amount}
        return TransactionSpec(read_keys=(src, dst), write_keys=(src, dst),
                               compute_writes=compute, txn_type="transfer")

    for i in range(N_TRANSFERS):
        src, dst = rng.sample(range(N_ACCOUNTS), 2)
        amount = rng.randint(1, 50)
        spec, on_complete = make_transfer(account(src), account(dst), amount)
        client = rng.choice(cluster.clients)
        cluster.kernel.schedule(i * 25.0, client.submit, spec, on_complete)

    cluster.run(N_TRANSFERS * 25.0 + 30_000)

    # A read-only audit can abort if it races a pending writer (§4.4.2);
    # retry until it commits.
    total = None
    for __ in range(10):
        audit = []
        cluster.client("us-west").submit(TransactionSpec(
            read_keys=tuple(account(i) for i in range(N_ACCOUNTS)),
            write_keys=(), txn_type="audit"), audit.append)
        cluster.run(5_000)
        if audit and audit[0].committed:
            total = sum(audit[0].reads.values())
            break
    assert total is not None, "audit never committed"
    print(f"transfers committed: {stats['committed']}, "
          f"aborted for good: {stats['aborted']}, "
          f"conflict retries: {stats['retries']}")
    print(f"sum of balances: {total} "
          f"(expected {N_ACCOUNTS * INITIAL_BALANCE})")
    assert total == N_ACCOUNTS * INITIAL_BALANCE, "money leaked!"
    print("invariant holds: serializable isolation conserved every cent.")


if __name__ == "__main__":
    main()
