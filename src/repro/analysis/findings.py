"""Lint findings, severities, and per-line suppression.

A :class:`Finding` is one rule violation at one source location.  Findings
can be suppressed in source with a ``# detlint: ignore`` comment on the
flagged line (or on a comment-only line directly above it, for flagged
statements that are already long)::

    for pid in state.participants:        # detlint: ignore[values-fanout]
        ...

    # detlint: ignore[set-iter-send, set-iter]
    for key in pending_keys:
        ...

The bracket form suppresses only the named rules (codes like ``DL001`` or
slugs like ``set-iter-send``); the bare form suppresses every rule on that
line.  Suppressions are deliberate, grep-able exemptions: the CI gate fails
on any finding that is *not* suppressed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: ``# detlint: ignore`` / ``# detlint: ignore[rule, rule]``
_SUPPRESS_RE = re.compile(
    r"#\s*detlint:\s*ignore(?:\[([A-Za-z0-9_\-, ]*)\])?")


@dataclass(frozen=True)
class Rule:
    """One lint rule: a stable code, a readable slug, and a severity.

    ``severity`` is informational — the CI gate fails on warnings too —
    but tells a reader whether a site is nondeterministic per se (error)
    or deterministic only under an ordering argument that should be stated
    (warning).
    """

    code: str
    slug: str
    severity: str
    summary: str

    def __str__(self) -> str:
        return f"{self.code}[{self.slug}]"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: Rule
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        """Render as ``path:line:col: CODE[slug] severity: message``."""
        return (f"{self.path}:{self.line}:{self.col}: {self.rule} "
                f"{self.rule.severity}: {self.message}")


def parse_suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map 1-based line number -> suppressed rule names on that line.

    ``None`` means "suppress every rule" (the bare ``ignore`` form); a set
    holds the codes/slugs named in the bracket form.  A suppression on a
    comment-only line also covers the next line, so long statements can
    carry their annotation above themselves.
    """
    result: Dict[int, Optional[Set[str]]] = {}

    def merge(lineno: int, names: Optional[Set[str]]) -> None:
        existing = result.get(lineno, set())
        if names is None or existing is None:
            result[lineno] = None
        else:
            result[lineno] = existing | names

    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        group = match.group(1)
        if group is None:
            names: Optional[Set[str]] = None
        else:
            names = {part.strip() for part in group.split(",")
                     if part.strip()}
            if not names:
                names = None
        merge(lineno, names)
        if text.lstrip().startswith("#"):
            # Comment-only line: the annotation covers the statement below.
            merge(lineno + 1, names)
    return result


def is_suppressed(finding: Finding,
                  suppressions: Dict[int, Optional[Set[str]]]) -> bool:
    """Whether ``finding`` is covered by a source suppression."""
    names = suppressions.get(finding.line, set())
    if finding.line not in suppressions:
        return False
    if names is None:
        return True
    return finding.rule.code in names or finding.rule.slug in names


def format_findings(findings: Iterable[Finding]) -> str:
    """One line per finding, sorted by location, plus a summary line."""
    ordered: List[Finding] = sorted(
        findings, key=lambda f: (f.path, f.line, f.col, f.rule.code))
    lines = [f.format() for f in ordered]
    errors = sum(1 for f in ordered
                 if f.rule.severity == SEVERITY_ERROR)
    warnings = len(ordered) - errors
    if ordered:
        lines.append(f"{len(ordered)} finding(s): {errors} error(s), "
                     f"{warnings} warning(s)")
    else:
        lines.append("clean: no determinism findings")
    return "\n".join(lines)
