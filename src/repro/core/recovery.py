"""CPC leader-failure handling (§4.3.3).

When a participant leader fails, the coordinator may already have observed
fast-path prepare decisions that the failed leader never replicated.  A
newly elected leader must therefore arrive at the *same* decisions.  The
five steps from the paper:

1. **Leader election** — voters piggyback their pending-transaction lists
   on vote messages (implemented in :mod:`repro.raft`; the lists arrive
   here as ``vote_payloads``).
2. **Completing replications** — the new leader's term no-op forces its
   predecessors' uncommitted entries to commit (see
   ``RaftMember._become_leader``); the replicated prepare decisions are
   already in ``prepare_log`` via the apply path.
3. **Examining pending-transaction lists** — pick ``f+1`` lists; a
   transaction is a fast-path candidate if it is prepared with identical
   versions and term in at least a majority of them.
4. **Detecting conflicts** — drop candidates that conflict with slow-path
   prepared transactions, conflict with an already-accepted candidate, or
   were prepared on stale data versions.
5. **Replicating fast-path prepared transactions** — surviving candidates'
   prepare decisions are replicated through Raft; only then does the new
   leader serve buffered client/coordinator requests.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.occ import PREPARED, PendingTxn
from repro.core.records import PrepareRecord
from repro.trace.tracer import SPAN_RECOVERY
from repro.txn import TID


def majority_of(count: int) -> int:
    return count // 2 + 1


def select_candidate_lists(own: Sequence[PendingTxn],
                           vote_payloads: Dict[str, object],
                           own_id: str, f: int
                           ) -> List[Tuple[str, Sequence[PendingTxn]]]:
    """Step 3's list selection: the new leader's own list plus voters',
    truncated to ``f + 1`` lists, deterministically ordered."""
    lists: List[Tuple[str, Sequence[PendingTxn]]] = [(own_id, tuple(own))]
    for voter in sorted(vote_payloads):
        if voter == own_id:
            continue
        payload = vote_payloads[voter]
        if payload is None:
            payload = ()
        lists.append((voter, tuple(payload)))
    return lists[:f + 1]


def find_fast_path_candidates(
        lists: Sequence[Tuple[str, Sequence[PendingTxn]]]
) -> List[PendingTxn]:
    """Step 3: transactions prepared with identical versions and term in at
    least a majority of the selected lists."""
    need = majority_of(len(lists))
    support: Dict[Tuple[TID, tuple, int], List[PendingTxn]] = {}
    for __, entries in lists:
        seen_in_list = set()
        for entry in entries:
            key = (entry.tid, entry.read_versions, entry.term)
            if key in seen_in_list:
                continue  # a list supports a transaction at most once
            seen_in_list.add(key)
            support.setdefault(key, []).append(entry)
    candidates = []
    seen_tids = set()
    for (tid, __, ___), entries in sorted(
            support.items(), key=lambda item: item[0][0]):
        if tid in seen_tids:
            continue
        if len(entries) >= need:
            seen_tids.add(tid)
            candidates.append(entries[0])
    return candidates


def conflicts_between(a: PendingTxn, b: PendingTxn) -> bool:
    """Read-write / write-write conflict between two pending entries."""
    return bool(a.write_keys & b.write_keys
                or a.write_keys & b.read_keys
                or a.read_keys & b.write_keys)


def filter_candidates(candidates: Iterable[PendingTxn],
                      slow_path_prepared: Sequence[PendingTxn],
                      current_versions) -> List[PendingTxn]:
    """Step 4: exclude conflicting or stale candidates.

    ``current_versions(keys)`` returns the store's current version map; a
    candidate prepared on versions older than the store's cannot have been
    fast-path prepared, because the failed leader always had the latest
    versions (§4.3.3 step 4).
    """
    accepted: List[PendingTxn] = []
    for candidate in sorted(candidates, key=lambda e: e.tid):
        versions = candidate.versions_dict()
        store_versions = current_versions(versions.keys())
        if any(store_versions[k] != v for k, v in versions.items()):
            continue
        if any(conflicts_between(candidate, other)
               for other in slow_path_prepared
               if other.tid != candidate.tid):
            continue
        if any(conflicts_between(candidate, other) for other in accepted):
            continue
        accepted.append(candidate)
    return accepted


def run_participant_recovery(component, vote_payloads: Dict[str, object]
                             ) -> None:
    """Run steps 2–5 on a newly elected participant leader.

    ``component`` is the partition's
    :class:`~repro.core.participant.PartitionComponent`; requests are
    buffered until the recovered prepare decisions finish replicating.

    Buffering starts immediately, but steps 3–5 wait for the term-start
    barrier (:attr:`RaftMember.term_start_applied`): step 2's "completing
    replications" is only *done* once the no-op — and every predecessor
    entry it forces to commit — has applied locally.  Examining lists
    earlier would filter candidates against a store that lags the log;
    after a power-cycle restart the store is empty until re-apply, and a
    stale-version filter run against it would wrongly drop (or keep)
    every candidate.  If leadership is lost before the barrier applies,
    the deferred work is dropped with it — the component stays buffering
    until this node's next election re-runs recovery, exactly as a lost
    step-5 replication already behaved.
    """
    member = component.member
    component.begin_recovery()
    member.when_term_start_applied(
        lambda: _recover_at_barrier(component, vote_payloads))


def _recover_at_barrier(component, vote_payloads: Dict[str, object]) -> None:
    member = component.member
    f = (len(member.member_ids) - 1) // 2
    lists = select_candidate_lists(
        component.pending.snapshot(), vote_payloads,
        member.node_id, f)
    candidates = find_fast_path_candidates(lists)

    # Step 2/4: slow-path prepared transactions are those whose
    # PrepareRecord is already in the (now fully replicated) log.
    slow_path = [component.pending.get(rec.tid)
                 for rec in component.prepare_log.values()
                 if rec.decision == PREPARED
                 and rec.tid in component.pending]
    slow_path = [entry for entry in slow_path if entry is not None]
    candidates = [c for c in candidates
                  if c.tid not in component.prepare_log
                  and c.tid not in component.resolved]
    accepted = filter_candidates(candidates, slow_path,
                                 component._current_versions)

    tracer = component.server.tracer
    if tracer.enabled:
        tracer.point(None, SPAN_RECOVERY, component.server.node_id,
                     component.server.dc,
                     detail=(f"{component.partition_id} leader-recovery "
                             f"lists={len(lists)} "
                             f"candidates={len(candidates)} "
                             f"accepted={len(accepted)}"))

    # Drop provisional entries that did not survive: their prepares died
    # with the old leader and will be retried by clients or coordinators.
    accepted_tids = {entry.tid for entry in accepted}
    for entry in component.pending.entries():
        if entry.provisional and entry.tid not in accepted_tids:
            component.pending.remove(entry.tid)

    if not accepted:
        component.finish_recovery()
        return

    # Step 5: replicate the recovered prepare decisions, then serve.
    outstanding = {"count": len(accepted)}

    def one_done(_entry):
        outstanding["count"] -= 1
        if outstanding["count"] == 0:
            component.finish_recovery()

    for entry in accepted:
        component.pending.add(replace(entry, provisional=False,
                                      term=member.current_term))
        record = PrepareRecord(
            tid=entry.tid, partition_id=component.partition_id,
            decision=PREPARED,
            read_keys=tuple(sorted(entry.read_keys)),
            write_keys=tuple(sorted(entry.write_keys)),
            read_versions=entry.read_versions,
            term=member.current_term,
            coordinator_id=entry.coordinator_id,
            coord_group_id="")
        if member.propose(record, on_committed=one_done) is None:
            one_done(None)
