"""detlint rule tests: positive, negative, and suppression per rule.

Each fixture is a minimal snippet exhibiting (or deliberately avoiding)
one bug class.  The regression fixture at the bottom replays the PR 1
coordinator-writeback bug — iterating an unsorted set difference in a
send loop — and asserts detlint catches it.
"""

import textwrap
from pathlib import Path

from repro.analysis import RULES, lint_paths, lint_source
from repro.analysis.detlint import LintConfig, lint_file


def codes(source, path="src/repro/x.py", **kwargs):
    """Lint a snippet, return the sorted list of finding codes."""
    findings = lint_source(textwrap.dedent(source), path=path, **kwargs)
    return sorted(f.rule.code for f in findings)


# ----------------------------------------------------------------------
# DL001 set-iter-send / DL002 set-iter
# ----------------------------------------------------------------------
def test_set_iteration_in_send_loop_is_error():
    src = """
    def fanout(self, pending):
        targets = set(pending)
        for node in targets:
            self.send(node, "msg")
    """
    assert codes(src) == ["DL001"]


def test_set_literal_iteration_without_send_is_warning():
    src = """
    def tally(self):
        seen = {1, 2, 3}
        for item in seen:
            self.counts.append(item)
    """
    assert codes(src) == ["DL002"]


def test_sorted_set_iteration_is_clean():
    src = """
    def fanout(self, pending):
        targets = set(pending)
        for node in sorted(targets):
            self.send(node, "msg")
    """
    assert codes(src) == []


def test_set_difference_in_send_loop_is_error():
    src = """
    def retry(self, members, acked):
        for node in set(members) - acked:
            self.send(node, "retry")
    """
    assert codes(src) == ["DL001"]


def test_reduction_over_set_is_clean():
    src = """
    def count(self, pending):
        outstanding = set(pending)
        return sum(1 for p in outstanding if p.live)
    """
    assert codes(src) == []


def test_list_iteration_is_clean():
    src = """
    def fanout(self, pending):
        for node in list(pending):
            self.send(node, "msg")
    """
    assert codes(src) == []


def test_set_typed_parameter_is_tracked():
    src = """
    from typing import Set

    def fanout(self, targets: Set[str]):
        for node in targets:
            self.send(node, "msg")
    """
    assert codes(src) == ["DL001"]


# ----------------------------------------------------------------------
# DL003 wallclock
# ----------------------------------------------------------------------
def test_wallclock_call_is_error():
    src = """
    import time

    def stamp(self):
        return time.time()
    """
    assert codes(src) == ["DL003"]


def test_wallclock_allowed_under_bench():
    src = """
    import time

    def stamp(self):
        return time.perf_counter()
    """
    assert codes(src, path="src/repro/bench/report.py") == []


def test_wallclock_allowed_under_perf():
    src = """
    import time

    def measure(self):
        return time.perf_counter()
    """
    assert codes(src, path="src/repro/perf/suites.py") == []


def test_wallclock_still_fires_outside_perf_and_bench():
    src = """
    import time

    def measure(self):
        return time.perf_counter()
    """
    for path in ("src/repro/sim/kernel.py", "src/repro/core/server.py",
                 "src/repro/workloads/driver.py"):
        assert codes(src, path=path) == ["DL003"]


def test_datetime_now_is_error():
    src = """
    import datetime

    def stamp(self):
        return datetime.datetime.now()
    """
    assert codes(src) == ["DL003"]


# ----------------------------------------------------------------------
# DL004 unseeded-random
# ----------------------------------------------------------------------
def test_module_level_random_is_error():
    src = """
    import random

    def jitter(self):
        return random.uniform(0, 1)
    """
    assert codes(src) == ["DL004"]


def test_kernel_random_is_clean():
    src = """
    def jitter(self):
        return self.kernel.random.uniform(0, 1)
    """
    assert codes(src) == []


def test_from_random_import_is_error():
    src = """
    from random import uniform
    """
    assert codes(src) == ["DL004"]


def test_random_allowed_in_kernel_and_workloads():
    src = """
    import random

    def make_rng(seed):
        return random.Random(seed)
    """
    assert codes(src, path="src/repro/sim/kernel.py") == []
    assert codes(src, path="src/repro/workloads/ycsb.py") == []


# ----------------------------------------------------------------------
# DL005 values-fanout
# ----------------------------------------------------------------------
def test_dict_values_fanout_is_warning():
    src = """
    def fanout(self, states):
        for state in states.values():
            self.send(state.node, "msg")
    """
    assert codes(src) == ["DL005"]


def test_dict_items_fanout_through_list_copy_is_warning():
    src = """
    def fanout(self, states):
        for key, state in list(states.items()):
            self.send(state.node, "msg")
    """
    assert codes(src) == ["DL005"]


def test_sorted_items_fanout_is_clean():
    src = """
    def fanout(self, states):
        for key, state in sorted(states.items()):
            self.send(state.node, "msg")
    """
    assert codes(src) == []


def test_dict_values_without_send_is_clean():
    src = """
    def total(self, states):
        acc = 0
        for state in states.values():
            acc += state.count
        return acc
    """
    assert codes(src) == []


# ----------------------------------------------------------------------
# DL006 set-payload
# ----------------------------------------------------------------------
def test_set_into_message_constructor_is_error():
    src = """
    def build(self, keys):
        pending = set(keys)
        return PrepareRequest(keys=pending)
    """
    assert codes(src) == ["DL006"]


def test_frozenset_sorted_payload_is_clean():
    src = """
    def build(self, keys):
        pending = set(keys)
        return PrepareRequest(keys=tuple(sorted(pending)))
    """
    assert codes(src) == []


# ----------------------------------------------------------------------
# DL007 nondet-source
# ----------------------------------------------------------------------
def test_uuid4_is_error():
    src = """
    import uuid

    def tid(self):
        return str(uuid.uuid4())
    """
    assert codes(src) == ["DL007"]


def test_os_urandom_and_getpid_are_errors():
    src = """
    import os

    def entropy(self):
        return os.urandom(8), os.getpid()
    """
    assert codes(src) == ["DL007", "DL007"]


def test_secrets_import_is_error():
    src = """
    from secrets import token_hex
    """
    assert codes(src) == ["DL007"]


# ----------------------------------------------------------------------
# sweep/ allowlist: the executor measures from outside the kernel
# ----------------------------------------------------------------------
def test_wallclock_and_getpid_allowed_in_sweep():
    src = """
    import os
    import time

    def measure():
        start = time.perf_counter()
        tmp = f".tmp{os.getpid()}"
        return time.perf_counter() - start, tmp
    """
    assert codes(src, path="src/repro/sweep/executor.py") == []


def test_wallclock_allowed_in_wal():
    # wal/image.py stamps exported images with wall-clock time; the
    # stamp is an operator artifact that is never read back into the DES.
    src = """
    import time

    def export(self):
        return time.time()
    """
    assert codes(src, path="src/repro/wal/image.py") == []


def test_wallclock_and_random_allowed_in_runtime():
    # runtime/ is the asyncio/TCP backend: the wall clock is its
    # kernel.now and its per-process RNGs are string-seeded from the
    # run seed (`Random(f"{proc}:{seed}")`), so both sources are the
    # design there — the DES-differential conformance harness is what
    # polices the behaviour instead.
    src = """
    import random
    import time

    def clock_and_rng(self, proc, seed):
        return time.monotonic(), random.Random(f"{proc}:{seed}")
    """
    for path in ("src/repro/runtime/aio.py",
                 "src/repro/runtime/conformance.py"):
        assert codes(src, path=path) == []


def test_wallclock_and_random_still_flagged_outside_runtime():
    # The runtime/ allowlist must not leak into protocol code: the same
    # snippet one directory over is still a double determinism error.
    src = """
    import random
    import time

    def clock_and_rng(self, proc, seed):
        return time.monotonic(), random.Random(f"{proc}:{seed}")
    """
    for path in ("src/repro/core/client.py", "src/repro/sim/network.py",
                 "src/repro/tapir/replica.py"):
        assert codes(src, path=path) == ["DL003", "DL004"]


def test_wallclock_still_flagged_next_to_wal():
    # The allowlist covers wal/ itself, not its consumers.
    src = """
    import time

    def stamp(self):
        return time.perf_counter()
    """
    for path in ("src/repro/raft/node.py", "src/repro/sim/node.py",
                 "src/repro/chaos/runner.py"):
        assert codes(src, path=path) == ["DL003"]


def test_wallclock_still_flagged_in_protocol_code():
    src = """
    import time

    def now(self):
        return time.time()
    """
    assert codes(src, path="src/repro/core/coordinator.py") == ["DL003"]


def test_getpid_still_flagged_in_protocol_code():
    src = """
    import os

    def worker_id(self):
        return os.getpid()
    """
    assert codes(src, path="src/repro/core/coordinator.py") == ["DL007"]


# ----------------------------------------------------------------------
# DL008 id-hash-order
# ----------------------------------------------------------------------
def test_sort_key_id_is_error():
    src = """
    def order(self, nodes):
        return sorted(nodes, key=id)
    """
    assert codes(src) == ["DL008"]


def test_sort_key_hash_lambda_is_error():
    src = """
    def order(self, nodes):
        nodes.sort(key=lambda n: hash(n.name))
    """
    assert codes(src) == ["DL008"]


def test_sort_key_attribute_is_clean():
    src = """
    def order(self, nodes):
        return sorted(nodes, key=lambda n: n.node_id)
    """
    assert codes(src) == []


# ----------------------------------------------------------------------
# Suppression
# ----------------------------------------------------------------------
def test_inline_suppression_by_slug():
    src = """
    def fanout(self, states):
        for state in states.values():  # detlint: ignore[values-fanout]
            self.send(state.node, "msg")
    """
    assert codes(src) == []


def test_comment_line_above_suppresses_next_line():
    src = """
    def fanout(self, states):
        # detlint: ignore[DL005]
        for state in states.values():
            self.send(state.node, "msg")
    """
    assert codes(src) == []


def test_bare_suppression_covers_all_rules():
    src = """
    def fanout(self, pending):
        targets = set(pending)
        for node in targets:  # detlint: ignore
            self.send(node, "msg")
    """
    assert codes(src) == []


def test_suppression_names_wrong_rule_does_not_apply():
    src = """
    def fanout(self, pending):
        targets = set(pending)
        for node in targets:  # detlint: ignore[wallclock]
            self.send(node, "msg")
    """
    assert codes(src) == ["DL001"]


def test_keep_suppressed_reports_anyway():
    src = """
    def fanout(self, states):
        for state in states.values():  # detlint: ignore[values-fanout]
            self.send(state.node, "msg")
    """
    assert codes(src, keep_suppressed=True) == ["DL005"]


# ----------------------------------------------------------------------
# Regression: the PR 1 coordinator-writeback bug class
# ----------------------------------------------------------------------
def test_pr1_writeback_set_iteration_bug_is_caught():
    # Replays the original coordinator._send_writebacks bug: iterating
    # an unsorted set difference while sending Writeback messages.
    src = """
    def _send_writebacks(self, state):
        outstanding = set(state.participants) - state.writeback_acks
        for pid in outstanding:
            leader = self.directory.lookup(pid).leader
            self.send(leader, Writeback(tid=state.tid, partition_id=pid))
    """
    assert codes(src) == ["DL001"]


def test_pr1_fixed_form_is_clean():
    src = """
    def _send_writebacks(self, state):
        outstanding = set(state.participants) - state.writeback_acks
        for pid in sorted(outstanding):
            leader = self.directory.lookup(pid).leader
            self.send(leader, Writeback(tid=state.tid, partition_id=pid))
    """
    assert codes(src) == []


# ----------------------------------------------------------------------
# Whole-tree gates and plumbing
# ----------------------------------------------------------------------
def test_rules_table_is_consistent():
    assert len(RULES) == 8
    for code, rule in RULES.items():
        assert code == rule.code
        assert rule.severity in ("error", "warning")
        assert rule.summary


def test_src_tree_is_clean():
    import repro
    src_dir = Path(repro.__file__).resolve().parents[1]
    findings = lint_paths([str(src_dir)])
    formatted = "\n".join(f.format() for f in findings)
    assert findings == [], f"detlint findings in src/:\n{formatted}"


def test_lint_file_reads_from_disk(tmp_path):
    target = tmp_path / "snippet.py"
    target.write_text(
        "def f(self, s):\n"
        "    for x in set(s):\n"
        "        self.send(x, 'm')\n")
    findings = lint_file(str(target))
    assert [f.rule.code for f in findings] == ["DL001"]
    assert findings[0].line == 2


def test_lint_config_custom_allowlist():
    src = textwrap.dedent("""
    import time

    def stamp(self):
        return time.time()
    """)
    config = LintConfig(wallclock_allowed=("special/",))
    findings = lint_source(src, path="src/special/x.py", config=config)
    assert findings == []
