"""The DES backend: the existing kernel and simulated network, wrapped.

This is a zero-behaviour adapter.  Building a :class:`DesRuntime` performs
exactly the constructions :mod:`repro.bench.cluster` has always performed
— ``Kernel(seed=...)`` then ``Network(kernel, topology, jitter)`` — so a
deployment built through the runtime interface is byte-identical to one
built directly (same event order, same RNG stream, same op counters).
The regression gate is ``python -m repro perf compare --ops-only``
against the committed ``BENCH_seed.json``.
"""

from __future__ import annotations

from typing import Optional

from repro.runtime.api import Runtime
from repro.sim.kernel import Kernel
from repro.sim.network import Network
from repro.sim.topology import Topology


class DesRuntime(Runtime):
    """Discrete-event runtime: virtual clock, simulated WAN."""

    backend = "des"

    def __init__(self, seed: int, topology: Topology,
                 jitter_fraction: float = 0.02,
                 scheduler: str = "heap",
                 kernel: Optional[Kernel] = None,
                 network: Optional[Network] = None):
        if kernel is None:
            kernel = Kernel(seed=seed, scheduler=scheduler)
        if network is None:
            network = Network(kernel, topology,
                              jitter_fraction=jitter_fraction)
        super().__init__(kernel, network)

    def run(self, until_ms: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Advance virtual time (delegates to :meth:`Kernel.run`)."""
        return self.kernel.run(until=until_ms, max_events=max_events)
