#!/usr/bin/env python
"""Quickstart: a five-region Carousel deployment in a few lines.

Builds the paper's EC2 topology (Table 1 latencies), runs a read-modify-
write transaction and a read-only transaction from the US-West datacenter,
and prints what happened.  Run with::

    python examples/quickstart.py
"""

from repro.bench.cluster import CarouselCluster, DeploymentSpec
from repro.core.config import FAST, CarouselConfig
from repro.txn import TransactionSpec


def main() -> None:
    # A deployment per §6.1: 5 partitions, replication factor 3, spread
    # over us-west / us-east / europe / asia / australia.
    cluster = CarouselCluster(DeploymentSpec(seed=7),
                              CarouselConfig(mode=FAST))
    cluster.populate({"alice:balance": 100, "bob:balance": 25})
    cluster.run(500)  # let the consensus groups settle

    client = cluster.client("us-west")
    results = []

    # A 2FI transaction: read and write keys fixed up front, write values
    # computed from the reads (§3.2).
    def transfer(reads):
        if reads["alice:balance"] < 40:
            return None  # abort: insufficient funds
        return {"alice:balance": reads["alice:balance"] - 40,
                "bob:balance": reads["bob:balance"] + 40}

    client.submit(TransactionSpec(
        read_keys=("alice:balance", "bob:balance"),
        write_keys=("alice:balance", "bob:balance"),
        compute_writes=transfer, txn_type="transfer"), results.append)
    cluster.run(3_000)

    # Read-only transactions take one wide-area round trip (§4.4.2).
    client.submit(TransactionSpec(
        read_keys=("alice:balance", "bob:balance"), write_keys=(),
        txn_type="audit"), results.append)
    cluster.run(3_000)

    for result in results:
        outcome = "committed" if result.committed else "aborted"
        print(f"{result.txn_type:10s} {outcome:9s} "
              f"latency={result.latency_ms:6.1f} ms  reads={result.reads}")

    audit = results[-1]
    assert audit.reads == {"alice:balance": 60, "bob:balance": 65}
    print("\nBalances move atomically across partitions; total is conserved.")


if __name__ == "__main__":
    main()
