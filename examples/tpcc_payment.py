#!/usr/bin/env python
"""TPC-C-style Payment with dependent reads via reconnaissance (§3.2).

A TPC-C Payment may identify the paying customer by *name*, which requires
a secondary-index lookup before the customer record's key is known — a
dependent read that 2FI forbids.  The paper's workaround: a read-only
reconnaissance transaction resolves the name to a customer id, then the
Payment transaction re-checks the index entry and aborts (and retries) if
it changed.  Run with::

    python examples/tpcc_payment.py
"""

from repro.bench.cluster import CarouselCluster, DeploymentSpec
from repro.core.config import FAST, CarouselConfig
from repro.core.recon import ReconnaissanceRunner
from repro.txn import TransactionSpec


def index_key(name: str) -> str:
    return f"idx:customer_by_name:{name}"


def customer_key(cid: str) -> str:
    return f"customer:{cid}"


def main() -> None:
    cluster = CarouselCluster(
        DeploymentSpec(seed=9, clients_per_dc=2),
        CarouselConfig(mode=FAST))
    # Secondary index: name -> customer id; customer records hold balances.
    cluster.populate({
        index_key("alice"): "c-100",
        index_key("bob"): "c-200",
        customer_key("c-100"): 500,
        customer_key("c-200"): 750,
    })
    cluster.run(500)

    client = cluster.client("europe")
    runner = ReconnaissanceRunner(client, cluster.kernel)
    outcomes = []

    def pay_by_name(name: str, amount: int):
        def resolve(recon_reads):
            cid = recon_reads[index_key(name)]
            if cid is None:
                return None  # unknown customer
            key = customer_key(cid)
            return (key,), (key,)

        def compute(recon_reads, reads):
            key = customer_key(recon_reads[index_key(name)])
            balance = reads[key]
            if balance is None or balance < amount:
                return None
            return {key: balance - amount}

        runner.run(recon_keys=(index_key(name),), resolve_keys=resolve,
                   compute_writes=compute,
                   on_complete=lambda o, n=name: outcomes.append((n, o)),
                   txn_type="payment")

    pay_by_name("alice", 120)
    pay_by_name("bob", 50)
    pay_by_name("carol", 10)  # no such customer
    cluster.run(10_000)

    for name, outcome in sorted(outcomes):
        print(f"payment({name}): committed={outcome.committed} "
              f"attempts={outcome.attempts} reason={outcome.reason!r}")
    by_name = dict(outcomes)
    assert by_name["alice"].committed and by_name["bob"].committed
    assert not by_name["carol"].committed  # unknown customer

    audit = []
    client.submit(TransactionSpec(
        read_keys=(customer_key("c-100"), customer_key("c-200")),
        write_keys=(), txn_type="audit"), audit.append)
    cluster.run(3_000)
    balances = audit[0].reads
    print(f"balances after payments: {balances}")
    assert balances[customer_key("c-100")] == 380
    assert balances[customer_key("c-200")] == 700
    print("dependent reads resolved through reconnaissance transactions; "
          "both payments applied exactly once.")


if __name__ == "__main__":
    main()
