"""Carousel protocol messages.

Naming follows the phases in §4.1 and Figure 2: the client piggybacks
prepare information on its read requests (:class:`ReadPrepareRequest`) and
simultaneously registers the transaction with its coordinator
(:class:`CoordPrepareRequest`).  Participants answer reads to the client
(:class:`ReadReply`) and prepare outcomes to the coordinator — directly from
every replica on CPC's fast path (:class:`FastVote`) and from the leader
after replication on the slow path (:class:`PrepareResult`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

from repro.sim.message import Message
from repro.txn import TID


@dataclass(frozen=True)
class PartitionSets:
    """A transaction's read and write keys within one partition."""

    read_keys: Tuple[str, ...] = ()
    write_keys: Tuple[str, ...] = ()


@dataclass
class CoordPrepareRequest(Message):
    """Client -> coordinator, at transaction start (§4.1.4).

    Identifies all participants so the coordinator can replicate the
    transaction's read and write sets to its consensus group.
    """

    tid: TID = None
    client_id: str = ""
    group_id: str = ""  # the coordinating consensus group
    participants: Dict[str, PartitionSets] = field(default_factory=dict)


@dataclass
class ReadPrepareRequest(Message):
    """Client -> participant leader (Basic) or every replica (CPC).

    Carries the transaction's read/write keys for this partition and the
    coordinator's identity; ``want_read`` asks this replica to return read
    values (true for the leader and for a replica local to the client,
    §4.4.1); ``fast_path`` marks CPC mode, in which the recipient casts a
    fast vote even if it is a follower.
    """

    tid: TID = None
    partition_id: str = ""
    coordinator_id: str = ""
    coord_group_id: str = ""
    read_keys: Tuple[str, ...] = ()
    write_keys: Tuple[str, ...] = ()
    want_read: bool = True
    fast_path: bool = False


@dataclass
class ReadReply(Message):
    """Participant -> client: values and versions for this partition's
    read keys."""

    tid: TID = None
    partition_id: str = ""
    replica_id: str = ""
    from_leader: bool = True
    #: key -> (value, version)
    values: Dict[str, Tuple[Any, int]] = field(default_factory=dict)


@dataclass
class FastVote(Message):
    """Replica -> coordinator: CPC fast-path prepare vote (§4.2)."""

    tid: TID = None
    partition_id: str = ""
    replica_id: str = ""
    is_leader: bool = False
    decision: str = ""  # PREPARED or ABORT
    read_versions: Tuple[Tuple[str, int], ...] = ()
    term: int = 0


@dataclass
class PrepareResult(Message):
    """Participant leader -> coordinator after the prepare decision is
    replicated (Basic prepare phase / CPC slow path)."""

    tid: TID = None
    partition_id: str = ""
    decision: str = ""
    read_versions: Tuple[Tuple[str, int], ...] = ()


@dataclass
class CommitRequest(Message):
    """Client -> coordinator: commit (with write values) or abort."""

    tid: TID = None
    abort: bool = False
    writes: Dict[str, Any] = field(default_factory=dict)
    #: Versions the client actually read (may come from a local follower);
    #: the coordinator uses these to detect stale reads (§4.4.1).
    read_versions: Dict[str, int] = field(default_factory=dict)


@dataclass
class TxnReply(Message):
    """Coordinator -> client: transaction outcome."""

    tid: TID = None
    committed: bool = False
    reason: str = ""


@dataclass
class Writeback(Message):
    """Coordinator -> participant leader: commit decision plus this
    partition's updates (§4.1.3)."""

    tid: TID = None
    partition_id: str = ""
    decision: str = ""  # "commit" or "abort"
    writes: Dict[str, Any] = field(default_factory=dict)


@dataclass
class WritebackAck(Message):
    """Participant leader -> coordinator: writeback replicated."""

    tid: TID = None
    partition_id: str = ""


@dataclass
class ClientHeartbeat(Message):
    """Client -> coordinator during an open transaction (§4.3.1)."""

    tid: TID = None


@dataclass
class ReadOnlyRequest(Message):
    """Client -> participant leader: one-roundtrip read-only path
    (§4.4.2)."""

    tid: TID = None
    partition_id: str = ""
    keys: Tuple[str, ...] = ()


@dataclass
class ReadOnlyReply(Message):
    """Participant leader -> client: values, or a conflict abort."""

    tid: TID = None
    partition_id: str = ""
    ok: bool = True
    values: Dict[str, Tuple[Any, int]] = field(default_factory=dict)


@dataclass
class PrepareQuery(Message):
    """Recovered coordinator -> participant leader: re-request a prepare
    result (§4.3.3, coordinator failover).

    Carries the partition's read/write key sets so a leader that never saw
    the original prepare (it died with a predecessor) can prepare afresh.
    """

    tid: TID = None
    partition_id: str = ""
    coordinator_id: str = ""
    coord_group_id: str = ""
    read_keys: Tuple[str, ...] = ()
    write_keys: Tuple[str, ...] = ()
