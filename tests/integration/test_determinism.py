"""End-to-end determinism: identical seeds produce identical runs.

Determinism is what makes the failure-injection tests meaningful and the
benchmarks reproducible, so it is guarded here as an invariant of the
whole stack (kernel, network, Raft, Carousel, TAPIR, workloads, driver).
"""

import pytest

from repro.bench.runner import run_workload
from repro.sim.topology import uniform_topology


def run_once(system, seed):
    result = run_workload(
        system, "retwis", target_tps=150.0, duration_ms=3_000.0,
        warmup_ms=500.0, cooldown_ms=500.0,
        topology=uniform_topology(5, 5.0), n_keys=50_000, seed=seed,
        clients_per_dc=4)
    return result.stats


@pytest.mark.parametrize("system", ["carousel-basic", "carousel-fast",
                                    "tapir"])
class TestDeterminism:
    def test_identical_seeds_identical_results(self, system):
        first = run_once(system, seed=21)
        second = run_once(system, seed=21)
        assert first.latency.samples == second.latency.samples
        assert first.outcomes.counts == second.outcomes.counts
        assert first.abort_reasons == second.abort_reasons

    def test_different_seeds_differ(self, system):
        first = run_once(system, seed=21)
        second = run_once(system, seed=22)
        # Same workload distribution, different arrival/key draws.
        assert first.latency.samples != second.latency.samples
