"""Determinism sanitizer: static analysis plus a runtime bisector.

The whole reproduction rests on the DES being bit-for-bit deterministic
under a fixed seed (see the kernel docstring's rules: all randomness from
``kernel.random``, events ordered by ``(time, seq)``).  This package turns
those rules from review guidance into tooling:

* :mod:`repro.analysis.detlint` — an AST linter whose rules catch the
  nondeterminism bug classes this codebase has actually had (hash-ordered
  ``set`` iteration in send loops, wall-clock reads, stray RNGs, ...).
* :mod:`repro.analysis.divergence` — a dual-process harness that runs the
  same scenario twice under different ``PYTHONHASHSEED`` values, records a
  compact digest stream of kernel activity, and localizes the *first*
  diverging event with its causal context.

Both are exposed on the command line as ``python -m repro lint`` and
``python -m repro divergence``; CI gates on a clean lint run over ``src/``.
"""

from repro.analysis.detlint import RULES, Rule, lint_paths, lint_source
from repro.analysis.digest import DigestRecorder
from repro.analysis.divergence import DivergenceReport, run_divergence
from repro.analysis.findings import Finding, format_findings

__all__ = [
    "DigestRecorder",
    "DivergenceReport",
    "Finding",
    "RULES",
    "Rule",
    "format_findings",
    "lint_paths",
    "lint_source",
    "run_divergence",
]
