"""Standardized experiment runner used by every benchmark.

``run_workload`` builds a deployment for one of the three evaluated systems
("tapir", "carousel-basic", "carousel-fast"), drives a workload at a target
throughput, and returns the measured statistics — one call per curve point
in the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.bench.cluster import CarouselCluster, DeploymentSpec, TapirCluster
from repro.core.config import BASIC, FAST, CarouselConfig
from repro.sim.topology import Topology, ec2_five_regions
from repro.tapir.config import TapirConfig
from repro.workloads.driver import WorkloadDriver, WorkloadStats
from repro.workloads.retwis import RetwisWorkload
from repro.workloads.ycsbt import YcsbTWorkload

SYSTEMS = ("tapir", "carousel-basic", "carousel-fast")

#: Display names matching the paper's figures.
SYSTEM_LABELS = {
    "tapir": "TAPIR",
    "carousel-basic": "Carousel Basic",
    "carousel-fast": "Carousel Fast",
}


@dataclass
class RunRecord:
    """The detachable summary of one run: everything the figure reports
    need (measured statistics plus deterministic op counters), nothing
    that drags a live kernel along.  Picklable, so records cross process
    boundaries in sweeps, and JSON-serializable, so they live in the
    sweep result cache."""

    system: str
    target_tps: float
    stats: WorkloadStats
    op_counters: Dict[str, int]

    @property
    def label(self) -> str:
        return SYSTEM_LABELS[self.system]

    def to_json(self) -> Dict[str, object]:
        """Canonical JSON form (sorted op counters) for the sweep
        result cache; inverse of :meth:`from_json`."""
        return {
            "system": self.system,
            "target_tps": self.target_tps,
            "stats": self.stats.to_json(),
            "op_counters": dict(sorted(self.op_counters.items())),
        }

    @classmethod
    def from_json(cls, doc: Dict[str, object]) -> "RunRecord":
        return cls(
            system=doc["system"],
            target_tps=float(doc["target_tps"]),
            stats=WorkloadStats.from_json(doc["stats"]),
            op_counters={str(k): int(v)
                         for k, v in doc["op_counters"].items()},
        )


@dataclass
class ExperimentResult:
    """One (system, workload, target-tps) measurement."""

    system: str
    target_tps: float
    stats: WorkloadStats
    cluster: object
    driver: WorkloadDriver

    @property
    def label(self) -> str:
        return SYSTEM_LABELS[self.system]

    @property
    def op_counters(self) -> Dict[str, int]:
        """Deterministic simulator-work counters for this run: the
        kernel's event counters plus the network's message counters.
        Host-independent, so figure reports and :mod:`repro.perf` can
        compare them exactly across machines."""
        ops = self.cluster.kernel.op_counters()
        network = self.cluster.network
        ops["messages_sent"] = network.messages_sent
        ops["messages_delivered"] = network.messages_delivered
        ops["messages_dropped"] = network.messages_dropped
        return ops

    def record(self) -> RunRecord:
        """Detach the picklable summary (stats + op counters) from the
        live cluster/driver objects."""
        return RunRecord(system=self.system, target_tps=self.target_tps,
                         stats=self.stats,
                         op_counters=dict(self.op_counters))


def build_cluster(system: str, spec: DeploymentSpec,
                  tapir_fast_path_timeout_ms: Optional[float] = None):
    """Construct a deployment for one of the evaluated systems."""
    if system == "tapir":
        config = TapirConfig()
        if tapir_fast_path_timeout_ms is not None:
            config = TapirConfig(
                fast_path_timeout_ms=tapir_fast_path_timeout_ms)
        return TapirCluster(spec, config)
    if system == "carousel-basic":
        return CarouselCluster(spec, CarouselConfig(mode=BASIC))
    if system == "carousel-fast":
        return CarouselCluster(spec, CarouselConfig(mode=FAST))
    raise ValueError(f"unknown system {system!r}; expected one of {SYSTEMS}")


def build_workload(name: str, n_keys: int, seed: int):
    if name == "retwis":
        return RetwisWorkload(n_keys=n_keys, seed=seed)
    if name == "ycsbt":
        return YcsbTWorkload(n_keys=n_keys, seed=seed)
    raise ValueError(f"unknown workload {name!r}")


def run_workload(system: str, workload: str, target_tps: float,
                 duration_ms: float, warmup_ms: float, cooldown_ms: float,
                 topology: Optional[Topology] = None,
                 n_keys: int = 1_000_000, seed: int = 0,
                 clients_per_dc: int = 8,
                 server_service_time_ms: float = 0.0,
                 account_bandwidth: bool = False,
                 tapir_fast_path_timeout_ms: Optional[float] = None,
                 closed_loop: bool = False
                 ) -> ExperimentResult:
    """Run one experiment point and return its measurements."""
    spec = DeploymentSpec(
        topology=topology or ec2_five_regions(),
        seed=seed, clients_per_dc=clients_per_dc,
        server_service_time_ms=server_service_time_ms)
    cluster = build_cluster(system, spec, tapir_fast_path_timeout_ms)
    generator = build_workload(workload, n_keys=n_keys, seed=seed + 1)
    driver = WorkloadDriver(cluster, generator, target_tps=target_tps,
                            duration_ms=duration_ms, warmup_ms=warmup_ms,
                            cooldown_ms=cooldown_ms,
                            closed_loop=closed_loop)
    stats = driver.run(account_bandwidth=account_bandwidth)
    return ExperimentResult(system=system, target_tps=target_tps,
                            stats=stats, cluster=cluster, driver=driver)
