"""The runtime interface the protocol code is written against.

Every protocol class (coordinator, participant, replica, Raft member,
client) binds to exactly two collaborator objects:

* a **kernel** — virtual or wall clock (``now`` in milliseconds), one
  seeded ``random.Random``, one-shot timers (``schedule`` returning a
  cancellable handle), ``spawn`` for run-soon callbacks, and the tracer/
  digest observability hooks;
* a **transport** (historically "network") — ``register`` for local
  nodes, ``send(src, dst_id, msg)``, the deployment ``topology`` (used by
  clients for nearest-leader decisions), and ``claim`` so deployment
  builders can ask which logical process hosts a node id.

This module states that contract as attribute lists plus structural
:class:`typing.Protocol` types, and provides ``missing_*_attrs``
validators that the test suite runs against **both** backends — a new
backend (or a new kernel feature) cannot silently drift from the
interface the protocols rely on.

Nothing here is imported by the hot simulation path: the DES kernel and
network satisfy the interface natively, and :mod:`repro.runtime.des`
merely wraps them.
"""

from __future__ import annotations

from typing import Any, Callable, List, Protocol, runtime_checkable

#: Supported runtime backends.
BACKENDS = ("des", "asyncio")

#: Attributes every runtime kernel must expose.  ``now`` is milliseconds
#: since the run began (virtual for DES, wall-clock for asyncio);
#: ``random`` is the single seeded RNG every protocol draw must use;
#: ``tracer``/``digest`` are the observability hooks (a disabled tracer
#: and ``None`` respectively when off).
KERNEL_ATTRS = (
    "now", "seed", "random", "tracer", "digest",
    "schedule", "schedule_at", "spawn",
    "events_scheduled", "events_executed", "events_cancelled",
)

#: Attributes every transport must expose.  ``claim`` is the placement
#: hook: deployment builders call it for every node id (hosted or not)
#: so the transport can route remote destinations; it returns whether
#: this process hosts the node.  ``hosts`` answers the same question
#: later without re-recording placement.
TRANSPORT_ATTRS = (
    "topology", "register", "send", "claim", "hosts",
    "messages_sent", "messages_delivered", "messages_dropped",
)


@runtime_checkable
class TimerHandle(Protocol):
    """A scheduled callback that can be cancelled before it fires."""

    def cancel(self) -> None:
        """Prevent the callback from firing (idempotent)."""


@runtime_checkable
class RuntimeKernel(Protocol):
    """Clock + RNG + timers (see :data:`KERNEL_ATTRS`)."""

    seed: Any
    random: Any
    tracer: Any
    digest: Any

    @property
    def now(self) -> float:
        """Milliseconds since the run began (virtual or wall-clock)."""

    def schedule(self, delay_ms: float, callback: Callable[..., None],
                 *args: Any) -> TimerHandle:
        """Run ``callback(*args)`` after ``delay_ms``."""

    def schedule_at(self, time_ms: float, callback: Callable[..., None],
                    *args: Any) -> TimerHandle:
        """Run ``callback(*args)`` at absolute time ``time_ms``."""

    def spawn(self, callback: Callable[..., None],
              *args: Any) -> TimerHandle:
        """Run ``callback(*args)`` as soon as possible."""


@runtime_checkable
class RuntimeTransport(Protocol):
    """Message delivery between nodes (see :data:`TRANSPORT_ATTRS`)."""

    topology: Any

    def register(self, node: Any) -> None:
        """Attach a locally-hosted node."""

    def send(self, src: Any, dst_id: str, msg: Any) -> None:
        """Deliver ``msg`` from node ``src`` to node ``dst_id``."""

    def claim(self, node_id: str, kind: str, dc: str) -> bool:
        """Record placement of ``node_id``; True when hosted here."""

    def hosts(self, node_id: str) -> bool:
        """Whether this transport hosts ``node_id``."""


def missing_kernel_attrs(kernel: Any) -> List[str]:
    """Interface drift check: kernel attributes the object lacks."""
    return [name for name in KERNEL_ATTRS if not hasattr(kernel, name)]


def missing_transport_attrs(transport: Any) -> List[str]:
    """Interface drift check: transport attributes the object lacks."""
    return [name for name in TRANSPORT_ATTRS if not hasattr(transport, name)]


class Runtime:
    """A kernel/transport pair a deployment builder can run against.

    Deployment builders (:mod:`repro.bench.cluster`) accept a runtime and
    use ``runtime.kernel`` and ``runtime.network`` wherever they used to
    construct :class:`~repro.sim.kernel.Kernel` and
    :class:`~repro.sim.network.Network` directly; passing no runtime
    preserves the original construction byte for byte.
    """

    #: Backend name, one of :data:`BACKENDS`.
    backend: str = "abstract"

    def __init__(self, kernel: Any, network: Any):
        self.kernel = kernel
        self.network = network

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} backend={self.backend}>"
