"""The discrete-event simulation kernel.

The kernel owns the virtual clock and the event heap.  All simulated time in
this repository is expressed in **milliseconds** as floats, matching the units
the Carousel paper uses for its latency tables and figures.

Determinism
-----------
Two runs of the same simulation with the same seed produce identical event
orders.  Ties in event time are broken by insertion order (a monotonically
increasing sequence number), and all randomness must be drawn from
``kernel.random``, the single seeded :class:`random.Random` instance.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, List, Optional

from repro.trace.tracer import NULL_TRACER


class Event:
    """A scheduled callback.

    Events are ordered by ``(time, seq)`` so that simultaneous events fire in
    the order they were scheduled.  Cancelling an event marks it dead; the
    kernel skips dead events when it pops them.

    ``ctx`` is the event's causal trace context (``None`` when tracing is
    off); ``_owner`` back-references the kernel while the event sits in the
    heap so cancellation can be counted for lazy compaction.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "ctx",
                 "_owner")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.ctx = None
        self._owner: Optional["Kernel"] = None

    def cancel(self) -> None:
        """Prevent this event's callback from running."""
        if self.cancelled:
            return
        self.cancelled = True
        owner = self._owner
        if owner is not None:
            self._owner = None
            owner._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.3f} seq={self.seq} {state}>"


class Kernel:
    """Event loop with a virtual clock.

    Parameters
    ----------
    seed:
        Seed for the kernel's single random number generator.  Every source
        of randomness in a simulation (jitter, workload key choice, client
        think times, randomized election timeouts) must use ``kernel.random``
        or an RNG derived from it, so that runs are reproducible.
    """

    def __init__(self, seed: int = 0):
        self._now: float = 0.0
        self._seq: int = 0
        self._heap: List[Event] = []
        self._stopped = False
        self._cancelled = 0
        self.random = random.Random(seed)
        self.seed = seed
        #: The attached tracer; the shared disabled instance by default, so
        #: tracing costs one ``tracer.enabled`` check when off.
        self.tracer = NULL_TRACER
        #: Optional event-digest sink (see :mod:`repro.analysis.digest`):
        #: when set, every executed event and every network send is
        #: recorded to a compact stream for cross-process determinism
        #: diffing.  ``None`` (the default) costs one check per event.
        self.digest = None
        #: Number of lazy heap compactions performed (observability).
        self.heap_compactions = 0

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[..., None],
                 *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` ms from now.

        Negative delays are clamped to zero; an event can never be scheduled
        in the virtual past.
        """
        if delay < 0:
            delay = 0.0
        event = Event(self._now + delay, self._seq, callback, args)
        self._seq += 1
        if self.tracer.enabled:
            event.ctx = self.tracer.current
        event._owner = self
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, callback: Callable[..., None],
                    *args: Any) -> Event:
        """Schedule ``callback(*args)`` at an absolute virtual time."""
        return self.schedule(time - self._now, callback, *args)

    def stop(self) -> None:
        """Make :meth:`run` return after the current event completes."""
        self._stopped = True

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` have fired.

        Returns the number of events executed.  When ``until`` is given, the
        clock is advanced to exactly ``until`` on return (even if the heap
        drained earlier), which makes fixed-duration experiments exact.
        """
        executed = 0
        self._stopped = False
        while self._heap and not self._stopped:
            if max_events is not None and executed >= max_events:
                break
            event = self._heap[0]
            if until is not None and event.time > until:
                break
            heapq.heappop(self._heap)
            event._owner = None
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._now = event.time
            if self.digest is not None:
                self.digest.on_event(event.time, event.seq)
            tracer = self.tracer
            if tracer.enabled:
                tracer.current = event.ctx
            event.callback(*event.args)
            executed += 1
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        return executed

    def _note_cancelled(self) -> None:
        """Count a cancellation of a still-heaped event; compact lazily when
        dead entries outnumber live ones."""
        self._cancelled += 1
        if self._cancelled > 8 and self._cancelled * 2 > len(self._heap):
            self._compact_heap()

    def _compact_heap(self) -> None:
        """Drop cancelled entries from the heap and re-heapify."""
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0
        self.heap_compactions += 1

    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still scheduled."""
        return len(self._heap) - self._cancelled
