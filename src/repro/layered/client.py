"""Client library for the layered baseline.

Strictly sequential: the read round completes, the write function runs,
then the client hands the whole transaction to a local coordinator, which
drives 2PC with every state change replicated before the next step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Set

from repro.core.backoff import RetryPolicy
from repro.core.messages import PartitionSets
from repro.layered.messages import (
    LayeredCommitRequest,
    LayeredRead,
    LayeredReadReply,
    LayeredReply,
)
from repro.sim.message import Message
from repro.sim.node import Node
from repro.trace.tracer import SPAN_COMMIT, SPAN_READ
from repro.txn import (
    REASON_CLIENT_ABORT,
    REASON_COMMITTED,
    TID,
    TransactionSpec,
    TxnResult,
)

PHASE_READ = "read"
PHASE_COMMIT = "commit"
PHASE_DONE = "done"

CompletionCallback = Callable[[TxnResult], None]


@dataclass
class _LayeredTxn:
    tid: TID
    spec: TransactionSpec
    on_complete: Optional[CompletionCallback]
    started_ms: float
    phase: str = PHASE_READ
    participants: Dict[str, PartitionSets] = field(default_factory=dict)
    coordinator_id: str = ""
    coord_group_id: str = ""
    awaiting_reads: Set[str] = field(default_factory=set)
    values: Dict[str, Any] = field(default_factory=dict)
    versions: Dict[str, int] = field(default_factory=dict)
    writes: Dict[str, Any] = field(default_factory=dict)
    retry_timer: Any = None
    retries: int = 0
    #: Tracing: the open client phase span (read/commit).
    phase_span: Any = None


class LayeredClient(Node):
    """An application server using the layered baseline."""

    def __init__(self, node_id: str, dc: str, kernel, network, directory,
                 partitioner, retry_ms: float = 10_000.0,
                 retry_policy: Optional[RetryPolicy] = None,
                 result_hook: Optional[CompletionCallback] = None):
        super().__init__(node_id, dc, kernel, network)
        self.directory = directory
        self.partitioner = partitioner
        self.retry_ms = retry_ms
        # Default: the degenerate fixed-interval policy (no RNG draws).
        self.retry_policy = retry_policy or RetryPolicy(base_ms=retry_ms)
        self.result_hook = result_hook
        self._counter = 0
        self._active: Dict[TID, _LayeredTxn] = {}
        self.submitted = 0
        self.committed = 0
        self.aborted = 0

    def submit(self, spec: TransactionSpec,
               on_complete: Optional[CompletionCallback] = None) -> TID:
        """Run one transaction: read round, then hand 2PC to a coordinator."""
        self._counter += 1
        tid = TID(self.node_id, self._counter)
        txn = _LayeredTxn(tid=tid, spec=spec, on_complete=on_complete,
                          started_ms=self.kernel.now)
        self._active[tid] = txn
        self.submitted += 1
        tracer = self.tracer
        if tracer.enabled:
            tracer.txn_begin(tid, system="layered", client=self.node_id,
                             dc=self.dc)
        read_groups = self.partitioner.group_by_partition(spec.read_keys)
        write_groups = self.partitioner.group_by_partition(spec.write_keys)
        for pid in sorted(set(read_groups) | set(write_groups)):
            txn.participants[pid] = PartitionSets(
                read_keys=tuple(read_groups.get(pid, ())),
                write_keys=tuple(write_groups.get(pid, ())))
        if not txn.participants:
            self._complete(txn, True, REASON_COMMITTED)
            return tid
        self._choose_coordinator(txn)
        txn.awaiting_reads = {pid for pid, sets in txn.participants.items()
                              if sets.read_keys}
        if txn.awaiting_reads:
            if tracer.enabled:
                txn.phase_span = tracer.span_begin(
                    tid, SPAN_READ, self.node_id, self.dc)
            self._send_reads(txn)
        else:
            self._enter_commit(txn)
        self._arm_retry(txn)
        return tid

    def _arm_retry(self, txn: _LayeredTxn) -> None:
        delay = self.retry_policy.delay_ms(txn.retries,
                                           self.kernel.random)
        txn.retry_timer = self.set_timer(delay, self._retry, txn)

    def _choose_coordinator(self, txn: _LayeredTxn) -> None:
        local = self.directory.leaders_in(self.dc)
        if local:
            group = local[0]
        else:
            topo = self.network.topology
            group = min(self.directory.partitions(),
                        key=lambda pid: topo.rtt(
                            self.dc,
                            self.directory.lookup(pid)
                            .leader_datacenter()))
        txn.coord_group_id = group
        txn.coordinator_id = self.directory.lookup(group).leader

    def _send_reads(self, txn: _LayeredTxn) -> None:
        for pid in sorted(txn.awaiting_reads):
            sets = txn.participants[pid]
            leader = self.directory.lookup(pid).leader
            self.send(leader, LayeredRead(
                tid=txn.tid, partition_id=pid, keys=sets.read_keys))

    def _enter_commit(self, txn: _LayeredTxn) -> None:
        txn.phase = PHASE_COMMIT
        tracer = self.tracer
        if tracer.enabled:
            tracer.span_end(txn.phase_span)
            txn.phase_span = tracer.span_begin(
                txn.tid, SPAN_COMMIT, self.node_id, self.dc)
        reads = {k: txn.values.get(k) for k in txn.spec.read_keys}
        writes = txn.spec.run_write_function(reads)
        if writes is None:
            self._complete(txn, False, REASON_CLIENT_ABORT)
            return
        txn.writes = writes
        self._send_commit(txn)

    def _send_commit(self, txn: _LayeredTxn) -> None:
        self.send(txn.coordinator_id, LayeredCommitRequest(
            tid=txn.tid, client_id=self.node_id,
            group_id=txn.coord_group_id,
            participants=dict(txn.participants),
            writes=dict(txn.writes),
            read_versions=dict(txn.versions)))

    def _complete(self, txn: _LayeredTxn, committed: bool,
                  reason: str) -> None:
        if txn.phase == PHASE_DONE:
            return
        txn.phase = PHASE_DONE
        tracer = self.tracer
        if tracer.enabled:
            tracer.span_end(txn.phase_span)
            txn.phase_span = None
            tracer.txn_end(txn.tid, committed, reason)
        if txn.retry_timer is not None:
            txn.retry_timer.cancel()
        self._active.pop(txn.tid, None)
        if committed:
            self.committed += 1
        else:
            self.aborted += 1
        result = TxnResult(
            tid=txn.tid, committed=committed,
            latency_ms=self.kernel.now - txn.started_ms, reason=reason,
            txn_type=txn.spec.txn_type, reads=dict(txn.values))
        if txn.on_complete is not None:
            txn.on_complete(result)
        if self.result_hook is not None:
            self.result_hook(result)

    def _retry(self, txn: _LayeredTxn) -> None:
        if txn.phase == PHASE_DONE:
            return
        txn.retries += 1
        if txn.phase == PHASE_READ:
            self._send_reads(txn)
        else:
            txn.coordinator_id = self.directory.lookup(
                txn.coord_group_id).leader
            self._send_commit(txn)
        self._arm_retry(txn)

    def handle_message(self, msg: Message) -> None:
        if isinstance(msg, LayeredReadReply):
            txn = self._active.get(msg.tid)
            if txn is None or txn.phase != PHASE_READ:
                return
            if msg.partition_id not in txn.awaiting_reads:
                return
            txn.awaiting_reads.discard(msg.partition_id)
            for key, (value, version) in msg.values.items():
                txn.values[key] = value
                txn.versions[key] = version
            if not txn.awaiting_reads:
                self._enter_commit(txn)
        elif isinstance(msg, LayeredReply):
            txn = self._active.get(msg.tid)
            if txn is not None:
                self._complete(txn, msg.committed, msg.reason)
        else:  # pragma: no cover - routing bug
            raise TypeError(f"unexpected layered client message {msg!r}")
