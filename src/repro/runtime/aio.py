"""The asyncio/TCP backend: wall clock, real sockets, same protocol code.

One :class:`AioRuntime` is one logical *process* of a deployment (named
``driver`` for the workload clients or ``dc-<name>`` for a datacenter's
servers — see :func:`proc_for`).  Several runtimes may share a single OS
process and event loop (the in-process cluster used by the conformance
harness) or live in separate OS processes (``python -m repro serve``);
either way every inter-process message crosses a real TCP connection
through the length-prefixed codec in :mod:`repro.runtime.wire`.

Clock and timers map onto the event loop: ``now`` is wall-clock
milliseconds since the runtime started, ``schedule`` is
``loop.call_later``.  The kernel keeps the same deterministic operation
counters as the DES kernel so reports stay comparable, but the asyncio
backend makes **no determinism promise** — that is exactly what the DES
oracle is for.

Per-peer connection management uses the existing
:class:`repro.core.backoff.RetryPolicy`: one outbound link per peer
process, lazily connected on first send, reconnecting with capped
exponential backoff and re-queuing the unsent frame.  Replies travel over
the *receiver's* own outbound link back, so links are one-directional and
need no handshake.
"""

# Wall-clock reads (`loop.time`) are this backend's clock by design;
# detlint's DL003 allowlist covers `runtime/` (see analysis/detlint.py).

from __future__ import annotations

import asyncio
import random
from typing import Any, Callable, Dict, Optional, Tuple

from repro.core.backoff import RetryPolicy
from repro.runtime.api import Runtime
from repro.runtime.wire import (
    WireError,
    decode_message,
    encode_message,
    frame,
    read_frame,
)
from repro.sim.topology import Topology
from repro.trace.tracer import NULL_TRACER

#: Logical process hosting the workload clients.
DRIVER_PROC = "driver"

#: Default reconnect schedule: 50 ms doubling to a 2 s cap, 20 % jitter.
DEFAULT_RECONNECT = RetryPolicy(base_ms=50.0, multiplier=2.0,
                                max_ms=2000.0, jitter_fraction=0.2)


def proc_for(kind: str, dc: str) -> str:
    """Default placement: clients on the driver, servers grouped per
    datacenter (one serve process per DC, like the paper's deployment
    of one CDS host per datacenter)."""
    return DRIVER_PROC if kind == "client" else f"dc-{dc}"


class AioTimerHandle:
    """Cancellable wrapper around ``loop.call_later``."""

    __slots__ = ("_handle", "_kernel", "cancelled")

    def __init__(self, handle, kernel: "AioKernel"):
        self._handle = handle
        self._kernel = kernel
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing (idempotent)."""
        if self.cancelled:
            return
        self.cancelled = True
        self._handle.cancel()
        self._kernel.events_cancelled += 1


class AioKernel:
    """Wall-clock kernel over an asyncio event loop.

    Exposes the same interface as :class:`repro.sim.kernel.Kernel`
    (:data:`repro.runtime.api.KERNEL_ATTRS`): millisecond clock, seeded
    RNG, cancellable one-shot timers, tracer/digest hooks.
    """

    def __init__(self, seed: int, loop: asyncio.AbstractEventLoop,
                 label: str = "aio"):
        self._loop = loop
        self._t0 = loop.time()
        self.seed = seed
        #: Per-process stream: string-seeded so distinct processes of the
        #: same deployment seed draw independent election jitter.
        self.random = random.Random(f"{label}:{seed}")
        self.tracer = NULL_TRACER
        self.digest = None
        self.events_scheduled = 0
        self.events_executed = 0
        self.events_cancelled = 0

    @property
    def now(self) -> float:
        """Wall-clock milliseconds since this runtime started."""
        return (self._loop.time() - self._t0) * 1000.0

    def schedule(self, delay_ms: float, callback: Callable[..., None],
                 *args: Any) -> AioTimerHandle:
        """Run ``callback(*args)`` after ``delay_ms`` of wall time."""
        if delay_ms < 0:
            delay_ms = 0.0
        self.events_scheduled += 1
        handle = AioTimerHandle(None, self)

        def fire() -> None:
            if handle.cancelled:  # pragma: no cover - cancel races
                return
            self.events_executed += 1
            callback(*args)

        handle._handle = self._loop.call_later(delay_ms / 1000.0, fire)
        return handle

    def schedule_at(self, time_ms: float, callback: Callable[..., None],
                    *args: Any) -> AioTimerHandle:
        """Schedule at an absolute runtime-clock time."""
        return self.schedule(time_ms - self.now, callback, *args)

    def spawn(self, callback: Callable[..., None],
              *args: Any) -> AioTimerHandle:
        """Run ``callback(*args)`` on the next loop iteration."""
        return self.schedule(0.0, callback, *args)

    def op_counters(self) -> dict:
        """Operation counters, same keys as the DES kernel's."""
        return {
            "events_scheduled": self.events_scheduled,
            "events_executed": self.events_executed,
            "events_cancelled": self.events_cancelled,
            "pending_events": 0,
            "compactions": 0,
        }


class _PeerLink:
    """One outbound connection to a peer process, with reconnect."""

    def __init__(self, transport: "TcpTransport", proc: str):
        self.transport = transport
        self.proc = proc
        self.queue: "asyncio.Queue[bytes]" = asyncio.Queue()
        self.connects = 0
        self._task = transport._loop.create_task(self._run())

    def enqueue(self, data: bytes) -> None:
        self.queue.put_nowait(data)

    async def _run(self) -> None:
        transport = self.transport
        policy = transport.reconnect_policy
        writer = None
        attempt = 0
        try:
            while True:
                data = await self.queue.get()
                while True:
                    if writer is None:
                        addr = await transport._address_of(self.proc)
                        try:
                            _, writer = await asyncio.open_connection(*addr)
                            self.connects += 1
                            attempt = 0
                        except OSError:
                            writer = None
                            await self._backoff(policy, attempt)
                            attempt += 1
                            continue
                    try:
                        writer.write(frame(data))
                        await writer.drain()
                        break
                    except (ConnectionError, OSError):
                        writer = None
                        await self._backoff(policy, attempt)
                        attempt += 1
        except asyncio.CancelledError:
            pass
        finally:
            if writer is not None:
                writer.close()

    async def _backoff(self, policy: RetryPolicy, attempt: int) -> None:
        delay_ms = policy.delay_ms(attempt, self.transport.kernel.random)
        await asyncio.sleep(delay_ms / 1000.0)

    async def close(self) -> None:
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:  # pragma: no cover - py<3.11 quirk
            pass


class TcpTransport:
    """Message delivery over localhost TCP, duck-typed as the simulated
    :class:`~repro.sim.network.Network` (:data:`TRANSPORT_ATTRS`).

    ``placement`` maps node ids to logical process names; the deployment
    builders populate it through :meth:`claim` while constructing the
    cluster, so the transport can route any destination id either to a
    locally-registered node or onto the right peer link.
    """

    def __init__(self, proc: str, kernel: AioKernel, topology: Topology,
                 loop: asyncio.AbstractEventLoop,
                 host: str = "127.0.0.1",
                 reconnect_policy: Optional[RetryPolicy] = None,
                 placement_fn: Callable[[str, str], str] = proc_for):
        self.proc = proc
        self.kernel = kernel
        self.topology = topology
        self.host = host
        self.port: Optional[int] = None
        self.reconnect_policy = reconnect_policy or DEFAULT_RECONNECT
        self._loop = loop
        self._placement_fn = placement_fn
        self.nodes: Dict[str, Any] = {}
        self.placement: Dict[str, str] = {}
        self._addresses: Dict[str, Tuple[str, int]] = {}
        self._addresses_changed = asyncio.Event()
        self._links: Dict[str, _PeerLink] = {}
        self._closed = False
        self._server: Optional[asyncio.AbstractServer] = None
        #: Called with each decoded control dataclass (see
        #: :mod:`repro.runtime.harness`); ``None`` drops control frames.
        self.control_handler: Optional[Callable[[Any], None]] = None
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        #: Sender-side per-message-type counters, for the conformance
        #: harness's count reconciliation.
        self.sent_by_type: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Placement and registration
    # ------------------------------------------------------------------
    def claim(self, node_id: str, kind: str, dc: str) -> bool:
        """Record which process hosts ``node_id``; True when it is us."""
        proc = self._placement_fn(kind, dc)
        self.placement[node_id] = proc
        return proc == self.proc

    def hosts(self, node_id: str) -> bool:
        """Whether this process hosts ``node_id``."""
        return self.placement.get(node_id) == self.proc

    def register(self, node: Any) -> None:
        """Attach a locally-hosted node."""
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        self.placement.setdefault(node.node_id, self.proc)
        if self.placement[node.node_id] != self.proc:
            raise ValueError(f"{node.node_id!r} is placed on "
                             f"{self.placement[node.node_id]!r}, not here")
        self.nodes[node.node_id] = node

    def node(self, node_id: str) -> Any:
        """Look up a locally-hosted node by id."""
        return self.nodes[node_id]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> int:
        """Begin listening; returns the bound port."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port or 0)
        self.port = self._server.sockets[0].getsockname()[1]
        self._addresses[self.proc] = (self.host, self.port)
        return self.port

    def set_addresses(self, table: Dict[str, Tuple[str, int]]) -> None:
        """Install (or extend) the peer-process address table."""
        for proc, (host, port) in table.items():
            self._addresses[proc] = (host, int(port))
        self._addresses_changed.set()

    async def _address_of(self, proc: str) -> Tuple[str, int]:
        while proc not in self._addresses:
            self._addresses_changed.clear()
            await self._addresses_changed.wait()
        return self._addresses[proc]

    async def close(self) -> None:
        """Stop listening and tear down every peer link.  Later sends
        are counted as dropped instead of spawning fresh links (node
        timers keep firing while a multi-runtime harness shuts its
        transports down one by one)."""
        self._closed = True
        for link in list(self._links.values()):
            await link.close()
        self._links.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, src: Any, dst_id: str, msg: Any) -> None:
        """Send ``msg`` from local node ``src`` to node ``dst_id``."""
        msg.src = src.node_id
        msg.dst = dst_id
        msg.sent_at = self.kernel.now
        self.messages_sent += 1
        name = msg.type_name
        self.sent_by_type[name] = self.sent_by_type.get(name, 0) + 1
        if src.crashed:
            self.messages_dropped += 1
            return
        proc = self.placement.get(dst_id)
        if proc is None:
            raise KeyError(f"unknown destination node {dst_id!r}")
        if proc == self.proc:
            dst = self.nodes[dst_id]
            # Preserve the DES semantics that a send never re-enters the
            # receiver synchronously from inside the sender's handler.
            self._loop.call_soon(self._deliver_local, msg, dst)
        elif self._closed:
            self.messages_dropped += 1
        else:
            self._link(proc).enqueue(encode_message(msg))

    def _link(self, proc: str) -> _PeerLink:
        link = self._links.get(proc)
        if link is None:
            link = self._links[proc] = _PeerLink(self, proc)
        return link

    def _deliver_local(self, msg: Any, dst: Any) -> None:
        if dst.crashed:
            self.messages_dropped += 1
            return
        self.messages_delivered += 1
        dst.enqueue(msg)

    # ------------------------------------------------------------------
    # Control frames (driver <-> serve orchestration)
    # ------------------------------------------------------------------
    def send_control(self, proc: str, ctl: Any) -> None:
        """Ship a control dataclass to a peer process."""
        from repro.runtime.harness import encode_control
        if proc == self.proc:
            self._loop.call_soon(self._dispatch_control, ctl)
        elif not self._closed:
            self._link(proc).enqueue(encode_control(ctl))

    def _dispatch_control(self, ctl: Any) -> None:
        if self.control_handler is not None:
            self.control_handler(ctl)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                data = await read_frame(reader)
                if data is None:
                    break
                self._on_frame(data)
        except asyncio.CancelledError:
            pass  # server shutdown cancels in-flight readers
        finally:
            writer.close()

    def _on_frame(self, data: bytes) -> None:
        from repro.runtime.harness import decode_control, is_control
        try:
            if is_control(data):
                self._dispatch_control(decode_control(data))
                return
            msg = decode_message(data)
        except WireError:
            self.messages_dropped += 1
            return
        dst = self.nodes.get(msg.dst)
        if dst is None:
            self.messages_dropped += 1
            return
        self._deliver_local(msg, dst)


class AioRuntime(Runtime):
    """One logical process of an asyncio/TCP deployment."""

    backend = "asyncio"

    def __init__(self, proc: str, seed: int, topology: Topology,
                 loop: Optional[asyncio.AbstractEventLoop] = None,
                 host: str = "127.0.0.1",
                 reconnect_policy: Optional[RetryPolicy] = None):
        if loop is None:
            loop = asyncio.get_event_loop()
        self.proc = proc
        kernel = AioKernel(seed, loop, label=proc)
        network = TcpTransport(proc, kernel, topology, loop, host=host,
                               reconnect_policy=reconnect_policy)
        super().__init__(kernel, network)

    async def start(self) -> int:
        """Start listening; returns the bound port."""
        return await self.network.start()

    async def close(self) -> None:
        """Tear down the transport (listener and peer links)."""
        await self.network.close()
