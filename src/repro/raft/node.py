"""Raft state machine: election, replication, commitment.

A :class:`RaftMember` is one group member's consensus engine.  It is not a
network node itself; it lives inside a host :class:`~repro.sim.node.Node`
(a :class:`RaftHost`), which routes Raft messages to it by ``group_id``.
This mirrors the paper's deployment, where a Carousel data server may manage
several partitions (§3.3) and therefore participate in several groups.

Carousel-specific extensions (both from §4.3.3):

* ``vote_payload_fn`` — called when casting or soliciting a vote; its return
  value (the pending-transaction list) rides on the vote messages.
* ``on_leadership`` — called when this member wins an election, with the
  pending payloads of every voter in its majority, *before* the member
  starts accepting proposals; the host runs CPC failure handling there.

Design notes
------------
* New entries are pushed to followers immediately on ``propose`` (not on the
  next heartbeat), so replication costs one round trip — matching the WANRT
  accounting in the paper's figures.
* On winning an election a leader appends a no-op entry from its new term,
  the standard way to force commitment of all earlier entries (this is what
  "completing replications" in §4.3.3 step 2 relies on).
* Persistent state (term, vote, log) survives crash/recovery in RAM, and —
  when the host carries a :class:`~repro.wal.log.WriteAheadLog` — is
  journaled so a power-cycled host can rebuild it from the WAL image
  (:meth:`RaftHost.replay_raft_wal`); volatile leadership state never
  survives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.raft.log import LogEntry, RaftLog
from repro.trace.tracer import SPAN_RAFT
from repro.raft.messages import (
    AppendEntries,
    AppendEntriesReply,
    RequestVote,
    RequestVoteReply,
)
from repro.sim.message import Message
from repro.sim.node import Node
from repro.wal.records import RaftAppendRecord, RaftTermRecord

FOLLOWER = "follower"
CANDIDATE = "candidate"
LEADER = "leader"


@dataclass(frozen=True)
class RaftNoop:
    """No-op command a new leader commits to finalize its predecessors'
    entries."""

    leader_id: str


@dataclass
class RaftConfig:
    """Raft timing parameters, in milliseconds.

    Defaults are sized for the paper's WAN topology: election timeouts far
    above the worst one-way delay (145 ms), heartbeats a few multiples of
    the widest RTT.
    """

    election_timeout_min_ms: float = 1500.0
    election_timeout_max_ms: float = 3000.0
    heartbeat_interval_ms: float = 300.0

    def __post_init__(self) -> None:
        if self.election_timeout_min_ms <= 0:
            raise ValueError("election timeout must be positive")
        if self.election_timeout_max_ms < self.election_timeout_min_ms:
            raise ValueError("election timeout max < min")
        if self.heartbeat_interval_ms >= self.election_timeout_min_ms:
            raise ValueError("heartbeat interval must be below the election "
                             "timeout")


class RaftMember:
    """One member of a Raft consensus group."""

    def __init__(self, host: "RaftHost", group_id: str,
                 member_ids: List[str],
                 config: Optional[RaftConfig] = None,
                 apply_fn: Optional[Callable[[LogEntry], None]] = None,
                 vote_payload_fn: Optional[Callable[[], Any]] = None,
                 on_leadership: Optional[
                     Callable[["RaftMember", Dict[str, Any]], None]] = None,
                 bootstrap_leader: Optional[str] = None):
        if host.node_id not in member_ids:
            raise ValueError("host must be one of the group members")
        if len(set(member_ids)) != len(member_ids):
            raise ValueError("duplicate member ids")
        self.host = host
        self.group_id = group_id
        self.member_ids = list(member_ids)
        self.config = config or RaftConfig()
        self.apply_fn = apply_fn
        self.vote_payload_fn = vote_payload_fn or (lambda: None)
        self.on_leadership = on_leadership
        self.bootstrap_leader = bootstrap_leader

        # Persistent state (survives crash/recover).
        self.current_term = 0
        self.voted_for: Optional[str] = None
        self.log = RaftLog()

        # Volatile state.
        self.state = FOLLOWER
        self.commit_index = 0
        self.last_applied = 0
        self.leader_id: Optional[str] = None
        self.next_index: Dict[str, int] = {}
        self.match_index: Dict[str, int] = {}
        #: Highest log index already shipped to each peer (avoids
        #: re-sending the whole in-flight window on every propose; lost
        #: messages are repaired by heartbeats, which always send from
        #: next_index).
        self._sent_up_to: Dict[str, int] = {}
        self._votes: Dict[str, Any] = {}
        self._election_timer = None
        self._heartbeat_timer = None
        self._commit_callbacks: Dict[int, Callable[[LogEntry], None]] = {}
        #: Index of this term's no-op entry; the leader serving barrier
        #: (``term_start_applied``) holds once it has applied locally.
        self._term_start_index = 0
        self._term_start_waiters: List[Callable[[], None]] = []
        #: Tracing: open replication spans keyed by log index.
        self._trace_spans: Dict[int, Any] = {}
        self.elections_started = 0

        host.add_member(self)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    @property
    def node_id(self) -> str:
        return self.host.node_id

    @property
    def is_leader(self) -> bool:
        return self.state == LEADER

    @property
    def term_start_applied(self) -> bool:
        """Leader serving barrier: true once this term's no-op has applied.

        A freshly elected leader's *log* is complete (that is what the
        election restriction guarantees) but its *state machine* may lag —
        most visibly after a power-cycle restart, where the log was rebuilt
        from the WAL image and nothing has been re-applied yet.  Serving
        reads or admitting OCC prepares before catching up would expose
        stale state.  The standard remedy (Raft §8) is to serve only after
        the term-start no-op — and with it every earlier entry — has been
        applied locally.
        """
        return self.state == LEADER and \
            self.last_applied >= self._term_start_index

    def when_term_start_applied(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` once the serving barrier holds (immediately if it
        already does).  Pending callbacks are dropped on step-down or
        crash; ``on_leadership`` of a later term re-registers its own.
        """
        if self.term_start_applied:
            fn()
        else:
            self._term_start_waiters.append(fn)

    @property
    def majority(self) -> int:
        return len(self.member_ids) // 2 + 1

    def peers(self) -> List[str]:
        """Group members other than this one, in ``member_ids`` order.

        Ordering contract: the result preserves the group's configured
        member order, so every peer fan-out (vote requests, appends,
        heartbeats) iterates deterministically regardless of hashing.
        """
        return [m for m in self.member_ids if m != self.node_id]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin operating.

        If this member is the designated bootstrap leader, it assumes
        leadership at term 1 immediately (the deployment places one leader
        per group, §6.1); followers adopt it on the first heartbeat.
        Otherwise it waits as a follower with an election timer.
        """
        if self.bootstrap_leader == self.node_id:
            self.current_term = 1
            self.voted_for = self.node_id
            self._persist_term()
            self._become_leader(vote_payloads={})
        else:
            self._reset_election_timer()

    # ------------------------------------------------------------------
    # Durability (no-ops when the host has no WAL attached)
    # ------------------------------------------------------------------
    def _persist_term(self) -> None:
        """Journal currentTerm/votedFor; called after every mutation, before
        any message that externalizes the new term or vote."""
        wal = self.host.wal
        if wal is not None:
            wal.append(RaftTermRecord(group_id=self.group_id,
                                      term=self.current_term,
                                      voted_for=self.voted_for))

    def _persist_entries(self, entries: List[LogEntry]) -> None:
        """Journal log entries installed at their indexes."""
        if not entries:
            return
        wal = self.host.wal
        if wal is not None:
            wal.append(RaftAppendRecord(group_id=self.group_id,
                                        entries=tuple(entries)))

    def handle_host_crash(self) -> None:
        """Drop volatile leadership state; keep persistent state."""
        self._cancel_timers()
        self.state = FOLLOWER
        self.leader_id = None
        self._votes = {}
        self._commit_callbacks.clear()
        self._term_start_waiters.clear()
        self._trace_spans.clear()

    def handle_host_recover(self) -> None:
        """Rejoin the group as a follower."""
        self._reset_election_timer()

    def _cancel_timers(self) -> None:
        if self._election_timer is not None:
            self._election_timer.cancel()
            self._election_timer = None
        if self._heartbeat_timer is not None:
            self._heartbeat_timer.cancel()
            self._heartbeat_timer = None

    # ------------------------------------------------------------------
    # Proposals
    # ------------------------------------------------------------------
    def propose(self, command: Any,
                on_committed: Optional[Callable[[LogEntry], None]] = None
                ) -> Optional[LogEntry]:
        """Append ``command`` to the replicated log (leader only).

        Returns the appended entry, or ``None`` if this member is not the
        leader.  ``on_committed`` fires on this member once the entry is
        committed and applied here; if leadership is lost first the callback
        is dropped (the entry may still commit under a later leader).
        """
        if self.state != LEADER:
            return None
        entry = self.log.append_new(self.current_term, command)
        self._persist_entries([entry])
        tracer = self.host.tracer
        if tracer.enabled:
            self._trace_spans[entry.index] = tracer.span_begin(
                getattr(command, "tid", None), SPAN_RAFT, self.node_id,
                self.host.dc,
                detail=(f"{self.group_id} {type(command).__name__} "
                        f"idx={entry.index}"))
        self.match_index[self.node_id] = entry.index
        if on_committed is not None:
            self._commit_callbacks[entry.index] = on_committed
        if len(self.member_ids) == 1:
            self._advance_commit()
        else:
            for peer in self.peers():
                self._send_append(peer, only_new=True)
        return entry

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def _reset_election_timer(self) -> None:
        if self._election_timer is not None:
            self._election_timer.cancel()
        timeout = self.host.kernel.random.uniform(
            self.config.election_timeout_min_ms,
            self.config.election_timeout_max_ms)
        self._election_timer = self.host.set_timer(
            timeout, self._on_election_timeout)

    def _on_election_timeout(self) -> None:
        if self.state == LEADER:
            return
        self._start_election()

    def _start_election(self) -> None:
        self.elections_started += 1
        self.current_term += 1
        self.state = CANDIDATE
        self.voted_for = self.node_id
        self._persist_term()
        self.leader_id = None
        self._votes = {self.node_id: self.vote_payload_fn()}
        self._reset_election_timer()
        for peer in self.peers():
            self.host.send(peer, RequestVote(
                group_id=self.group_id,
                term=self.current_term,
                candidate_id=self.node_id,
                last_log_index=self.log.last_index,
                last_log_term=self.log.last_term,
                pending_payload=self.vote_payload_fn(),
            ))
        if len(self.member_ids) == 1:
            self._become_leader(vote_payloads=dict(self._votes))

    def _schedule_heartbeat(self) -> None:
        self._heartbeat_timer = self.host.set_timer(
            self.config.heartbeat_interval_ms, self._on_heartbeat)

    def _on_heartbeat(self) -> None:
        if self.state != LEADER:
            return
        for peer in self.peers():
            self._send_append(peer)
        self._schedule_heartbeat()

    # ------------------------------------------------------------------
    # Role changes
    # ------------------------------------------------------------------
    def _step_down(self, new_term: int) -> None:
        if new_term > self.current_term:
            self.current_term = new_term
            self.voted_for = None
            self._persist_term()
        was_leader = self.state == LEADER
        self.state = FOLLOWER
        self._votes = {}
        self._term_start_waiters.clear()
        if was_leader:
            self._commit_callbacks.clear()
            self._trace_spans.clear()
        if self._heartbeat_timer is not None:
            self._heartbeat_timer.cancel()
            self._heartbeat_timer = None
        self._reset_election_timer()

    def _become_leader(self, vote_payloads: Dict[str, Any]) -> None:
        self.state = LEADER
        self.leader_id = self.node_id
        if self._election_timer is not None:
            self._election_timer.cancel()
            self._election_timer = None
        for peer in self.peers():
            self.next_index[peer] = self.log.last_index + 1
            self.match_index[peer] = 0
            self._sent_up_to[peer] = 0
        self.match_index[self.node_id] = self.log.last_index
        # The no-op appended below lands at this index; set the serving
        # barrier first so ``on_leadership`` may register waiters on it.
        self._term_start_index = self.log.last_index + 1
        if self.on_leadership is not None:
            self.on_leadership(self, vote_payloads)
        # Commit a no-op from the new term so predecessors' entries commit.
        noop = self.log.append_new(self.current_term, RaftNoop(self.node_id))
        self._persist_entries([noop])
        self.match_index[self.node_id] = self.log.last_index
        if len(self.member_ids) == 1:
            self._advance_commit()
        else:
            for peer in self.peers():
                self._send_append(peer)
            self._schedule_heartbeat()

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def handle(self, msg: Message) -> None:
        """Dispatch one Raft message to its handler."""
        if isinstance(msg, RequestVote):
            self._on_request_vote(msg)
        elif isinstance(msg, RequestVoteReply):
            self._on_vote_reply(msg)
        elif isinstance(msg, AppendEntries):
            self._on_append_entries(msg)
        elif isinstance(msg, AppendEntriesReply):
            self._on_append_reply(msg)
        else:  # pragma: no cover - routing bug
            raise TypeError(f"unexpected raft message {msg!r}")

    def _on_request_vote(self, msg: RequestVote) -> None:
        if msg.term > self.current_term:
            self._step_down(msg.term)
        granted = False
        if msg.term == self.current_term and self.state != LEADER:
            up_to_date = (
                msg.last_log_term > self.log.last_term
                or (msg.last_log_term == self.log.last_term
                    and msg.last_log_index >= self.log.last_index))
            if (self.voted_for in (None, msg.candidate_id)) and up_to_date:
                granted = True
                self.voted_for = msg.candidate_id
                self._persist_term()
                self._reset_election_timer()
        self.host.send(msg.candidate_id, RequestVoteReply(
            group_id=self.group_id,
            term=self.current_term,
            voter_id=self.node_id,
            granted=granted,
            pending_payload=self.vote_payload_fn() if granted else None,
        ))

    def _on_vote_reply(self, msg: RequestVoteReply) -> None:
        if msg.term > self.current_term:
            self._step_down(msg.term)
            return
        if (self.state != CANDIDATE or msg.term != self.current_term
                or not msg.granted):
            return
        self._votes[msg.voter_id] = msg.pending_payload
        if len(self._votes) >= self.majority:
            self._become_leader(vote_payloads=dict(self._votes))

    def _on_append_entries(self, msg: AppendEntries) -> None:
        if msg.term < self.current_term:
            self.host.send(msg.leader_id, AppendEntriesReply(
                group_id=self.group_id, term=self.current_term,
                follower_id=self.node_id, success=False,
                conflict_index=self.log.last_index + 1))
            return
        if msg.term > self.current_term or self.state != FOLLOWER:
            self._step_down(msg.term)
        self.current_term = msg.term
        self.leader_id = msg.leader_id
        self._reset_election_timer()

        if not self.log.matches(msg.prev_log_index, msg.prev_log_term):
            conflict = min(self.log.last_index + 1, msg.prev_log_index)
            self.host.send(msg.leader_id, AppendEntriesReply(
                group_id=self.group_id, term=self.current_term,
                follower_id=self.node_id, success=False,
                conflict_index=max(1, conflict)))
            return

        installed = self.log.splice(msg.prev_log_index, msg.entries)
        self._persist_entries(installed)
        match = msg.prev_log_index + len(msg.entries)
        if msg.leader_commit > self.commit_index:
            self.commit_index = min(msg.leader_commit, self.log.last_index)
            self._apply_committed()
        self.host.send(msg.leader_id, AppendEntriesReply(
            group_id=self.group_id, term=self.current_term,
            follower_id=self.node_id, success=True, match_index=match))

    def _on_append_reply(self, msg: AppendEntriesReply) -> None:
        if msg.term > self.current_term:
            self._step_down(msg.term)
            return
        if self.state != LEADER or msg.term != self.current_term:
            return
        peer = msg.follower_id
        if msg.success:
            if msg.match_index > self.match_index.get(peer, 0):
                self.match_index[peer] = msg.match_index
            self.next_index[peer] = self.match_index[peer] + 1
            self._advance_commit()
            # Pipeline: if entries exist that were never shipped, push them.
            if self._sent_up_to.get(peer, 0) < self.log.last_index:
                self._send_append(peer, only_new=True)
        else:
            backed_off = min(self.next_index.get(peer, 1) - 1,
                             msg.conflict_index)
            self.next_index[peer] = max(1, backed_off)
            self._sent_up_to[peer] = 0
            self._send_append(peer)

    # ------------------------------------------------------------------
    # Replication helpers
    # ------------------------------------------------------------------
    def _send_append(self, peer: str, only_new: bool = False) -> None:
        """Ship log entries to ``peer``.

        With ``only_new`` (the propose/pipeline path) only entries that were
        never shipped before are sent, keeping per-propose work O(new
        entries) instead of O(in-flight window).  Heartbeats and failure
        recovery send from ``next_index`` and repair any losses.
        """
        next_idx = self.next_index.get(peer, self.log.last_index + 1)
        start = next_idx
        if only_new:
            start = max(next_idx, self._sent_up_to.get(peer, 0) + 1)
        prev_index = start - 1
        prev_term = self.log.term_at(prev_index)
        if prev_term is None:
            # Bookkeeping ran past our log (stale state); resync fully.
            self.next_index[peer] = self.log.last_index + 1
            self._sent_up_to[peer] = 0
            start = self.log.last_index + 1
            prev_index = self.log.last_index
            prev_term = self.log.last_term
        self._sent_up_to[peer] = max(self._sent_up_to.get(peer, 0),
                                     self.log.last_index)
        self.host.send(peer, AppendEntries(
            group_id=self.group_id,
            term=self.current_term,
            leader_id=self.node_id,
            prev_log_index=prev_index,
            prev_log_term=prev_term,
            entries=self.log.entries_from(start),
            leader_commit=self.commit_index,
        ))

    def _advance_commit(self) -> None:
        if self.state != LEADER:
            return
        matches = sorted(
            (self.match_index.get(m, 0) for m in self.member_ids),
            reverse=True)
        candidate = matches[self.majority - 1]
        if candidate > self.commit_index and \
                self.log.term_at(candidate) == self.current_term:
            self.commit_index = candidate
            self._apply_committed()

    def _apply_committed(self) -> None:
        while self.last_applied < self.commit_index:
            self.last_applied += 1
            entry = self.log.entry_at(self.last_applied)
            if self.apply_fn is not None and \
                    not isinstance(entry.command, RaftNoop):
                self.apply_fn(entry)
            if self._trace_spans:
                span = self._trace_spans.pop(self.last_applied, None)
                if span is not None:
                    # Close the replication span before the commit callback
                    # runs, so downstream sends happen after it.
                    self.host.tracer.span_end(span)
            callback = self._commit_callbacks.pop(self.last_applied, None)
            if callback is not None:
                callback(entry)
        if self._term_start_waiters and self.term_start_applied:
            waiters, self._term_start_waiters = self._term_start_waiters, []
            for waiter in waiters:
                waiter()


class RaftHost(Node):
    """A network node hosting one or more Raft group members.

    Raft messages are routed to the member with the matching ``group_id``;
    everything else goes to :meth:`handle_app_message`, which protocol
    servers (Carousel data servers) override.
    """

    RAFT_TYPES = (RequestVote, RequestVoteReply, AppendEntries,
                  AppendEntriesReply)

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.members: Dict[str, RaftMember] = {}

    def add_member(self, member: RaftMember) -> None:
        """Attach a consensus-group member to this host."""
        if member.group_id in self.members:
            raise ValueError(f"already a member of group "
                             f"{member.group_id!r}")
        self.members[member.group_id] = member

    def member(self, group_id: str) -> RaftMember:
        """The member of ``group_id`` hosted here."""
        return self.members[group_id]

    def start_raft(self) -> None:
        """Start every hosted Raft member.

        Ordered: ``members`` insertion order is ``add_member`` call order,
        which cluster construction keeps deterministic.  Order matters
        here because each ``start()`` draws an election timeout from the
        shared kernel RNG.
        """
        for member in self.members.values():
            member.start()

    def handle_message(self, msg: Message) -> None:
        if isinstance(msg, self.RAFT_TYPES):
            member = self.members.get(msg.group_id)
            if member is not None:
                member.handle(msg)
            return
        self.handle_app_message(msg)

    def handle_app_message(self, msg: Message) -> None:
        """Handle a non-Raft message. Subclasses override."""
        raise NotImplementedError

    def on_crash(self) -> None:
        """Fail-stop: drop volatile Raft state on every member.

        Ordered: ``members`` iterates in ``add_member`` call order (and
        likewise in :meth:`on_recover`, where restart timers draw from
        the kernel RNG).
        """
        for member in self.members.values():
            member.handle_host_crash()

    def on_recover(self) -> None:
        """Rejoin every hosted group as a follower."""
        for member in self.members.values():
            member.handle_host_recover()

    def replay_raft_wal(self, records: List[Any]) -> None:
        """Rebuild every member's persistent state from a WAL image.

        Called during restart, after the members have been re-created
        fresh (term 0, empty log, no bootstrap).  Records replay in
        append order: the last :class:`RaftTermRecord` per group wins for
        currentTerm/votedFor, and :class:`RaftAppendRecord` entries are
        installed at their carried indexes (truncate-then-append, which
        subsumes follower conflict truncation).  Commit/apply state stays
        at zero — it is volatile by Raft's rules and is rebuilt through
        the normal apply path once a leader's commit index reaches us.
        """
        for record in records:
            if isinstance(record, RaftTermRecord):
                member = self.members.get(record.group_id)
                if member is not None:
                    member.current_term = record.term
                    member.voted_for = record.voted_for
            elif isinstance(record, RaftAppendRecord):
                member = self.members.get(record.group_id)
                if member is not None:
                    for entry in record.entries:
                        member.log.install_at(entry)
