"""Base message type and wire-size estimation.

The paper's prototype uses gRPC; our simulated RPC assigns each message an
estimated wire size so that the bandwidth experiment (Figure 7) can be
computed from first principles.  Sizes are estimates of a compact binary
encoding: 8 bytes per number, string/bytes payloads at their length, plus a
fixed per-message header.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

#: Fixed per-message overhead (framing, message type tag, addressing),
#: roughly what a compact RPC framing plus TCP/IP headers amortize to.
HEADER_BYTES = 64

#: Dataclass field-name cache: wire_size is on the bandwidth-accounting
#: path and dataclasses.fields() is comparatively expensive.
_FIELDS_CACHE: dict = {}


def _field_names(cls) -> tuple:
    names = _FIELDS_CACHE.get(cls)
    if names is None:
        names = tuple(f.name for f in dataclasses.fields(cls))
        _FIELDS_CACHE[cls] = names
    return names


def wire_size(value: Any) -> int:
    """Estimate the encoded size of ``value`` in bytes.

    Handles the payload shapes used by the protocols in this repository:
    numbers, strings, bytes, None, containers, and dataclasses.  Unknown
    objects fall back to the size of their ``repr``, which keeps the function
    total without hiding bugs behind a silent zero.
    """
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return 4 + sum(wire_size(item) for item in value)
    if isinstance(value, dict):
        return 4 + sum(wire_size(k) + wire_size(v) for k, v in value.items())
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return 4 + sum(wire_size(getattr(value, name))
                       for name in _field_names(type(value)))
    return len(repr(value))


class Message:
    """Base class for all simulated network messages.

    Protocol packages subclass this (usually as dataclasses).  The network
    stamps ``src``, ``dst`` and ``sent_at`` when the message is sent.  The
    wire size is computed lazily and cached, since some messages (e.g. Raft
    AppendEntries with many log entries) are expensive to size.
    """

    src: Optional[str] = None
    dst: Optional[str] = None
    sent_at: Optional[float] = None
    _cached_size: Optional[int] = None

    def size_bytes(self) -> int:
        """Estimated wire size of this message including headers."""
        if self._cached_size is None:
            if dataclasses.is_dataclass(self):
                payload = sum(wire_size(getattr(self, name))
                              for name in _field_names(type(self)))
            else:  # pragma: no cover - all real messages are dataclasses
                payload = wire_size(self.__dict__)
            self._cached_size = HEADER_BYTES + payload
        return self._cached_size

    @property
    def type_name(self) -> str:
        """Short name used for dispatch and tracing."""
        return type(self).__name__
