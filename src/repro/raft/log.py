"""The replicated log.

Indexing follows the Raft paper: the first entry has index 1, and index 0
is a sentinel with term 0.  Commands are opaque to the log; Carousel stores
its prepare/commit records in them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional


@dataclass(frozen=True)
class LogEntry:
    """One replicated log entry."""

    term: int
    index: int
    command: Any


class RaftLog:
    """An append-only log with Raft's truncate-on-conflict semantics."""

    def __init__(self) -> None:
        self._entries: List[LogEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def last_index(self) -> int:
        return len(self._entries)

    @property
    def last_term(self) -> int:
        if not self._entries:
            return 0
        return self._entries[-1].term

    def term_at(self, index: int) -> Optional[int]:
        """Term of the entry at ``index``; 0 for the sentinel, None if the
        log has no entry there."""
        if index == 0:
            return 0
        if 1 <= index <= len(self._entries):
            return self._entries[index - 1].term
        return None

    def entry_at(self, index: int) -> LogEntry:
        """The entry at 1-based ``index`` (IndexError if absent)."""
        if not 1 <= index <= len(self._entries):
            raise IndexError(f"no log entry at index {index}")
        return self._entries[index - 1]

    def append_new(self, term: int, command: Any) -> LogEntry:
        """Append a new command at the next index (leader-side append)."""
        entry = LogEntry(term, self.last_index + 1, command)
        self._entries.append(entry)
        return entry

    def entries_from(self, start_index: int) -> List[LogEntry]:
        """Entries at ``start_index`` and later (for AppendEntries)."""
        if start_index < 1:
            start_index = 1
        return list(self._entries[start_index - 1:])

    def matches(self, index: int, term: int) -> bool:
        """Raft's consistency check: does the entry at ``index`` have
        ``term``?"""
        actual = self.term_at(index)
        return actual is not None and actual == term

    def splice(self, prev_index: int,
               entries: List[LogEntry]) -> List[LogEntry]:
        """Install replicated ``entries`` after ``prev_index``.

        Entries that already match (same index and term) are kept; the first
        conflict truncates the tail, after which the remaining new entries
        are appended.  This is the follower-side AppendEntries rule.

        Returns the entries actually installed (appended or conflict-
        replacing) so the host can journal exactly the mutations that
        happened — re-delivered heartbeats that change nothing return ``[]``.
        """
        installed: List[LogEntry] = []
        for offset, entry in enumerate(entries):
            index = prev_index + 1 + offset
            existing_term = self.term_at(index)
            if existing_term is None:
                self._entries.append(entry)
                installed.append(entry)
            elif existing_term != entry.term:
                del self._entries[index - 1:]
                self._entries.append(entry)
                installed.append(entry)
            # else: identical entry already present; keep it.
        return installed

    def install_at(self, entry: LogEntry) -> bool:
        """WAL-replay install: truncate at ``entry.index``, then append.

        Journaled installs replay in append order, so an entry that
        re-occupies an index it previously held (a conflict splice)
        subsumes the truncation.  An entry past the current tail — only
        possible when a lossy sync window dropped an earlier install
        record — is skipped (returns ``False``); the resulting shorter
        log is repaired by the leader's normal consistency check.
        """
        if entry.index > len(self._entries) + 1:
            return False
        del self._entries[entry.index - 1:]
        self._entries.append(entry)
        return True

    def all_entries(self) -> List[LogEntry]:
        """A copy of the whole log."""
        return list(self._entries)
