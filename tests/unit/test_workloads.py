"""Unit tests for workload generators."""

import random
from collections import Counter

import pytest

from repro.txn import TransactionSpec
from repro.workloads.retwis import RETWIS_MIX, RetwisWorkload, bump_counter
from repro.workloads.ycsbt import YcsbTWorkload
from repro.workloads.zipf import ZipfianGenerator, zeta


class TestZipf:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=0.0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=1.0)

    def test_values_in_range(self):
        gen = ZipfianGenerator(100, rng=random.Random(1))
        for __ in range(2000):
            assert 0 <= gen.next() < 100

    def test_rank_zero_most_popular(self):
        gen = ZipfianGenerator(1000, theta=0.75, rng=random.Random(2))
        counts = Counter(gen.next() for __ in range(20000))
        assert counts[0] == max(counts.values())
        # Popularity decays with rank.
        assert counts[0] > counts.get(100, 0) > counts.get(900, -1)

    def test_skew_increases_with_theta(self):
        low = ZipfianGenerator(1000, theta=0.5, rng=random.Random(3))
        high = ZipfianGenerator(1000, theta=0.95, rng=random.Random(3))
        low_counts = Counter(low.next() for __ in range(20000))
        high_counts = Counter(high.next() for __ in range(20000))
        assert high_counts[0] > low_counts[0]

    def test_deterministic_given_rng(self):
        a = ZipfianGenerator(500, rng=random.Random(9))
        b = ZipfianGenerator(500, rng=random.Random(9))
        assert [a.next() for __ in range(100)] == \
            [b.next() for __ in range(100)]

    def test_distinct_keys(self):
        gen = ZipfianGenerator(50, rng=random.Random(4))
        keys = gen.distinct_keys(10)
        assert len(keys) == len(set(keys)) == 10

    def test_distinct_keys_more_than_n_rejected(self):
        gen = ZipfianGenerator(3, rng=random.Random(4))
        with pytest.raises(ValueError):
            gen.distinct_keys(4)

    def test_zeta_cached_and_correct(self):
        assert zeta(1, 0.75) == 1.0
        assert zeta(2, 0.5) == pytest.approx(1.0 + 2 ** -0.5)

    def test_tiny_universes(self):
        # n == 2 makes eta's denominator zero (zeta(2) == zeta(n)); the
        # generator must still draw valid ranks from the first branches.
        for n in (1, 2):
            gen = ZipfianGenerator(n, theta=0.5, rng=random.Random(0))
            for __ in range(500):
                assert 0 <= gen.next() < n


class TestBumpCounter:
    def test_increments_padded(self):
        assert bump_counter("0001", 4) == "0002"

    def test_none_starts_at_one(self):
        assert bump_counter(None, 3) == "001"

    def test_garbage_resets(self):
        assert bump_counter("not-a-number", 2) == "01"


class TestRetwis:
    def test_mix_matches_table_2(self):
        wl = RetwisWorkload(n_keys=10_000, seed=5)
        counts = Counter(wl.next_spec().txn_type for __ in range(20000))
        total = sum(counts.values())
        assert counts["add_user"] / total == pytest.approx(0.05, abs=0.01)
        assert counts["follow_unfollow"] / total == \
            pytest.approx(0.15, abs=0.01)
        assert counts["post_tweet"] / total == pytest.approx(0.30, abs=0.015)
        assert counts["load_timeline"] / total == \
            pytest.approx(0.50, abs=0.015)

    def test_shapes_match_table_2(self):
        wl = RetwisWorkload(n_keys=10_000, seed=6)
        seen = set()
        for __ in range(2000):
            spec = wl.next_spec()
            seen.add(spec.txn_type)
            if spec.txn_type == "add_user":
                assert len(spec.read_keys) == 1 and len(spec.write_keys) == 3
            elif spec.txn_type == "follow_unfollow":
                assert len(spec.read_keys) == 2 and len(spec.write_keys) == 2
            elif spec.txn_type == "post_tweet":
                assert len(spec.read_keys) == 3 and len(spec.write_keys) == 5
            else:
                assert 1 <= len(spec.read_keys) <= 10
                assert spec.is_read_only
        assert seen == {"add_user", "follow_unfollow", "post_tweet",
                        "load_timeline"}

    def test_average_keys_about_4_5(self):
        # The paper: each Retwis transaction touches ~4.5 keys on average.
        wl = RetwisWorkload(n_keys=10_000, seed=7)
        total = 0
        n = 5000
        for __ in range(n):
            spec = wl.next_spec()
            total += len(spec.all_keys())
        assert total / n == pytest.approx(4.5, abs=0.3)

    def test_write_function_increments_and_pads(self):
        wl = RetwisWorkload(n_keys=100, value_size=8, seed=8)
        spec = None
        while spec is None or spec.txn_type != "follow_unfollow":
            spec = wl.next_spec()
        reads = {k: "00000004" for k in spec.read_keys}
        writes = spec.run_write_function(reads)
        assert set(writes) == set(spec.write_keys)
        assert all(v == "00000005" for v in writes.values())

    def test_write_function_rejects_undeclared_keys(self):
        spec = TransactionSpec(read_keys=("a",), write_keys=("a",),
                               compute_writes=lambda r: {"zzz": 1})
        with pytest.raises(ValueError, match="outside the declared"):
            spec.run_write_function({"a": None})


class TestYcsbT:
    def test_four_rmw_ops(self):
        wl = YcsbTWorkload(n_keys=10_000, seed=9)
        for __ in range(200):
            spec = wl.next_spec()
            assert spec.txn_type == "ycsbt_rmw"
            assert len(spec.read_keys) == 4
            assert spec.read_keys == spec.write_keys
            assert not spec.is_read_only

    def test_configurable_ops(self):
        wl = YcsbTWorkload(n_keys=1000, ops_per_txn=2, seed=9)
        assert len(wl.next_spec().read_keys) == 2
        with pytest.raises(ValueError):
            YcsbTWorkload(ops_per_txn=0)

    def test_write_function_increments(self):
        wl = YcsbTWorkload(n_keys=1000, value_size=4, seed=10)
        spec = wl.next_spec()
        writes = spec.run_write_function({k: "0009" for k in spec.read_keys})
        assert all(v == "0010" for v in writes.values())


class TestTransactionSpec:
    def test_deduplicates_keys(self):
        spec = TransactionSpec(read_keys=("a", "a", "b"),
                               write_keys=("b", "b"))
        assert spec.read_keys == ("a", "b")
        assert spec.write_keys == ("b",)

    def test_all_keys_union(self):
        spec = TransactionSpec(read_keys=("a", "b"), write_keys=("b", "c"))
        assert spec.all_keys() == ("a", "b", "c")

    def test_default_write_function(self):
        spec = TransactionSpec(read_keys=(), write_keys=("x",))
        assert spec.run_write_function({}) == {"x": None}

    def test_read_only_flag(self):
        assert TransactionSpec(read_keys=("a",), write_keys=()).is_read_only
        assert not TransactionSpec(read_keys=(), write_keys=("a",)
                                   ).is_read_only
