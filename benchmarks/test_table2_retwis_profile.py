"""Table 2: the Retwis transaction profile.

Draws a large sample from the workload generator and verifies the
empirical mix and get/put shapes against the table.
"""

from collections import Counter

from repro.bench.report import format_table
from repro.workloads.retwis import RetwisWorkload

EXPECTED = {
    # type: (gets, puts, share)
    "add_user": (1, 3, 0.05),
    "follow_unfollow": (2, 2, 0.15),
    "post_tweet": (3, 5, 0.30),
    "load_timeline": (None, 0, 0.50),  # rand(1, 10) gets
}

SAMPLES = 40_000


def test_table2_retwis_profile(benchmark):
    workload = RetwisWorkload(n_keys=100_000, seed=2)

    def draw():
        counts = Counter()
        shapes = {}
        timeline_gets = []
        for __ in range(SAMPLES):
            spec = workload.next_spec()
            counts[spec.txn_type] += 1
            if spec.txn_type == "load_timeline":
                timeline_gets.append(len(spec.read_keys))
            else:
                shapes[spec.txn_type] = (len(spec.read_keys),
                                         len(spec.write_keys))
        return counts, shapes, timeline_gets

    counts, shapes, timeline_gets = benchmark.pedantic(
        draw, rounds=1, iterations=1)

    rows = []
    for txn_type, (gets, puts, share) in EXPECTED.items():
        observed_share = counts[txn_type] / SAMPLES
        assert abs(observed_share - share) < 0.01, txn_type
        if gets is None:
            assert min(timeline_gets) >= 1 and max(timeline_gets) <= 10
            gets_str = "rand(1,10)"
        else:
            assert shapes[txn_type] == (gets, puts), txn_type
            gets_str = str(gets)
        rows.append([txn_type, gets_str, str(puts),
                     f"{share * 100:.0f}%",
                     f"{observed_share * 100:.1f}%"])
    print("\nTable 2: transaction profile for Retwis")
    print(format_table(
        ["transaction type", "# gets", "# puts", "paper %", "measured %"],
        rows))
