"""Static extraction of the protocol message graph.

protolint's world model.  One pass over the protocol packages' ASTs
produces a :class:`MessageGraph`: every ``Message`` subclass (and every
other dataclass, for constructor checking), every send site, every
construction site, every ``isinstance`` dispatch branch, a per-protocol
function map for reachability closures, and the raw material for FSM
conformance (state-attribute assignments and comparisons).

The extractor is deliberately syntactic — no imports are executed, no
types are inferred.  It leans on this codebase's idioms instead:

* messages go on the wire through calls named ``send``/``_send`` whose
  second argument is (or was assigned from) a message constructor;
* dispatchers are the functions named in :data:`DISPATCH_FUNCTIONS`,
  whose ``isinstance`` chains may test single names, inline tuples, or
  module/class tuple constants (``_PARTITION_MESSAGES``, ``RAFT_TYPES``);
* protocol state machines store their state in a string attribute whose
  values come from module-level string constants (``FOLLOWER``,
  ``PHASE_READ``...).

Everything here is stdlib-``ast``; no third-party dependencies.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

#: Functions whose ``isinstance`` chains are message dispatchers.
DISPATCH_FUNCTIONS = frozenset({
    "handle_message", "handle_app_message",
    "dispatch_partition_message", "dispatch_coordinator_message",
    "handle",
})

#: Call names that put a message on the wire.
SEND_NAMES = frozenset({"send", "_send"})

#: Attribute-call names that mutate per-transaction state (for the
#: idempotence rule); plain subscript stores are deliberately excluded —
#: they are dominated by writes to handler-local dicts.
MUTATION_CALLS = frozenset({"append", "add", "propose"})

#: Path fragment -> protocol name (first match wins).
PROTOCOL_FRAGMENTS = (
    ("core/", "carousel"),
    ("layered/", "layered"),
    ("tapir/", "tapir"),
    ("raft/", "raft"),
)


def protocol_of(path: str) -> str:
    """The protocol a file belongs to, from its path."""
    posix = Path(path).as_posix()
    for fragment, name in PROTOCOL_FRAGMENTS:
        if fragment in posix:
            return name
    return "misc"


# ---------------------------------------------------------------------------
# Graph node types
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FieldDef:
    """One dataclass field: its name and whether it has a default."""

    name: str
    has_default: bool


@dataclass(frozen=True)
class MessageDef:
    """One message (or record) dataclass definition."""

    name: str
    path: str
    line: int
    protocol: str
    fields: Tuple[FieldDef, ...]
    #: True for ``Message`` subclasses (wire messages); False for other
    #: dataclasses (replicated records, config, bookkeeping).
    is_message: bool

    def required_fields(self) -> Tuple[str, ...]:
        """Names of fields without defaults, in declaration order."""
        return tuple(f.name for f in self.fields if not f.has_default)


@dataclass(frozen=True)
class SendSite:
    """One ``send(dst, Msg(...))`` call."""

    msg_type: str
    path: str
    line: int
    col: int
    cls: Optional[str]
    func: Optional[str]


@dataclass
class ConstructSite:
    """One constructor call of a known message/record dataclass."""

    msg_type: str
    path: str
    line: int
    col: int
    cls: Optional[str]
    func: Optional[str]
    kwargs: Tuple[str, ...]
    n_pos: int
    #: ``*args``/``**kwargs`` present — field checking is impossible.
    has_star: bool
    #: This construction (or the variable it was bound to) reached a send.
    sent: bool = False


@dataclass(frozen=True)
class HandlerBranch:
    """One ``isinstance`` dispatch branch for one message type."""

    msg_type: str
    path: str
    line: int
    cls: Optional[str]
    func: str
    #: Names of functions/methods called in the branch body.
    targets: Tuple[str, ...]


@dataclass
class FuncInfo:
    """Aggregate facts about one (protocol, function-name) unit.

    Facts from same-named functions in the same protocol are unioned —
    reachability closures over-approximate, which is the safe direction
    for existence checks ("some reply is sent", "some guard exists").
    """

    name: str
    protocol: str
    sends: Set[str] = field(default_factory=set)
    calls: Set[str] = field(default_factory=set)
    #: Duplicate-delivery guards: ``in``/``not in`` membership tests,
    #: ``.setdefault(...)``, comparisons against ``.get(...)``.
    guard_sites: List[Tuple[str, int]] = field(default_factory=list)
    #: Per-txn state mutations: AugAssign, ``.append/.add/.propose``.
    mutation_sites: List[Tuple[str, int, str]] = field(default_factory=list)


@dataclass
class ClassInfo:
    """One class definition in the scanned tree."""

    name: str
    path: str
    line: int
    protocol: str
    #: The class contains ``set_timer`` calls or references a retry
    #: policy — i.e. it can drive retransmission.
    has_retry_machinery: bool = False


@dataclass(frozen=True)
class FsmAssign:
    """``<expr>.attr = <state>`` where the state resolved to a string."""

    attr: str
    value: str
    #: Equality guards on the same attribute active at the assignment
    #: (``if x.attr == STATE: x.attr = OTHER`` -> guards=("STATE",)).
    guards: Tuple[str, ...]
    cls: Optional[str]
    func: Optional[str]
    path: str
    line: int


@dataclass(frozen=True)
class FsmCompare:
    """``<expr>.attr ==/!= <state>`` with a resolved state string."""

    attr: str
    value: str
    path: str
    line: int


@dataclass(frozen=True)
class FsmDefault:
    """Class-level ``attr: str = STATE`` default (the initial state)."""

    attr: str
    value: str
    cls: str
    path: str
    line: int


@dataclass
class MessageGraph:
    """The extracted message graph over a set of sources."""

    sources: Dict[str, str] = field(default_factory=dict)
    #: ``Message`` subclasses, by class name.
    messages: Dict[str, MessageDef] = field(default_factory=dict)
    #: Every dataclass (including messages), by class name.
    dataclasses: Dict[str, MessageDef] = field(default_factory=dict)
    sends: List[SendSite] = field(default_factory=list)
    constructs: List[ConstructSite] = field(default_factory=list)
    branches: List[HandlerBranch] = field(default_factory=list)
    functions: Dict[Tuple[str, str], FuncInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    fsm_assigns: List[FsmAssign] = field(default_factory=list)
    fsm_compares: List[FsmCompare] = field(default_factory=list)
    fsm_defaults: List[FsmDefault] = field(default_factory=list)

    # -- queries --------------------------------------------------------
    def sends_of(self, msg_type: str) -> List[SendSite]:
        """All send sites for one message type."""
        return [s for s in self.sends if s.msg_type == msg_type]

    def constructs_of(self, msg_type: str) -> List[ConstructSite]:
        """All construction sites for one message type."""
        return [c for c in self.constructs if c.msg_type == msg_type]

    def branches_of(self, msg_type: str) -> List[HandlerBranch]:
        """All dispatch branches for one message type."""
        return [b for b in self.branches if b.msg_type == msg_type]

    def sender_classes(self, msg_type: str) -> List[str]:
        """Classes that send a message type, sorted."""
        return sorted({s.cls for s in self.sends_of(msg_type)
                       if s.cls is not None})

    def handler_classes(self, msg_type: str) -> List[str]:
        """Classes with a dispatch branch for a message type, sorted."""
        return sorted({b.cls for b in self.branches_of(msg_type)
                       if b.cls is not None})

    def protocols(self) -> List[str]:
        """Protocols that define at least one message, sorted."""
        found = {d.protocol for d in self.messages.values()}
        return sorted(found)

    def reachable(self, protocol: str, msg_type: str,
                  seeds: Sequence[str]) -> "Reachability":
        """Close over the protocol's call graph from ``seeds``.

        When the worklist reaches a *dispatch* function that has branches
        for ``msg_type``, it follows only those branches' targets — so a
        ``handle_app_message -> dispatch_partition_message -> on_writeback``
        chain stays specific to the message instead of pulling in every
        branch of the dispatcher.
        """
        visited: Set[str] = set()
        sends: Set[str] = set()
        guards: List[Tuple[str, int]] = []
        mutations: List[Tuple[str, int, str]] = []
        work = list(seeds)
        while work:
            name = work.pop()
            if name in visited:
                continue
            visited.add(name)
            if name in DISPATCH_FUNCTIONS:
                specific = [b for b in self.branches
                            if b.func == name and b.msg_type == msg_type
                            and protocol_of(b.path) == protocol]
                if specific:
                    for branch in specific:
                        work.extend(branch.targets)
                    continue
            info = self.functions.get((protocol, name))
            if info is None:
                continue
            sends |= info.sends
            guards.extend(info.guard_sites)
            mutations.extend(info.mutation_sites)
            work.extend(info.calls)
        return Reachability(visited=frozenset(visited),
                            sends=frozenset(sends),
                            guards=guards, mutations=mutations)


@dataclass
class Reachability:
    """Result of a call-graph closure from a set of handler entry points."""

    visited: FrozenSet[str]
    sends: FrozenSet[str]
    guards: List[Tuple[str, int]]
    mutations: List[Tuple[str, int, str]]


# ---------------------------------------------------------------------------
# AST helpers
# ---------------------------------------------------------------------------

def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _is_message_base(node: ast.ClassDef) -> bool:
    return any(isinstance(base, ast.Name) and base.id == "Message"
               for base in node.bases)


def _class_fields(node: ast.ClassDef) -> Tuple[FieldDef, ...]:
    fields: List[FieldDef] = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and \
                isinstance(stmt.target, ast.Name):
            fields.append(FieldDef(name=stmt.target.id,
                                   has_default=stmt.value is not None))
    return tuple(fields)


class _ModuleConstants:
    """String and name-tuple constants of one module (incl. class-level)."""

    def __init__(self) -> None:
        self.strings: Dict[str, str] = {}
        self.tuples: Dict[str, Tuple[str, ...]] = {}

    def collect(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = node.value
            if isinstance(value, ast.Constant) and \
                    isinstance(value.value, str):
                self.strings[target.id] = value.value
            elif isinstance(value, ast.Tuple) and value.elts and all(
                    isinstance(e, ast.Name) for e in value.elts):
                self.tuples[target.id] = tuple(e.id for e in value.elts)

    def resolve_string(self, expr: ast.AST) -> Optional[str]:
        """A string literal or a Name bound to a module string constant."""
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return expr.value
        if isinstance(expr, ast.Name):
            return self.strings.get(expr.id)
        return None

    def resolve_types(self, expr: ast.AST) -> List[str]:
        """Type names named by an ``isinstance`` second argument."""
        if isinstance(expr, ast.Name):
            if expr.id in self.tuples:
                return list(self.tuples[expr.id])
            return [expr.id]
        if isinstance(expr, ast.Attribute):
            # e.g. ``self.RAFT_TYPES`` resolving a class-level constant.
            return list(self.tuples.get(expr.attr, ()))
        if isinstance(expr, ast.Tuple):
            names: List[str] = []
            for elt in expr.elts:
                names.extend(self.resolve_types(elt))
            return names
        return []


def _is_guard_compare(node: ast.Compare) -> bool:
    """Membership tests and ``.get(...)`` comparisons deduplicate
    retransmitted messages."""
    if any(isinstance(op, (ast.In, ast.NotIn)) for op in node.ops):
        return True
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute) \
                and sub.func.attr == "get":
            return True
    return False


# ---------------------------------------------------------------------------
# Extraction visitor
# ---------------------------------------------------------------------------

class _Extractor(ast.NodeVisitor):
    """Second-pass visitor for one module."""

    def __init__(self, path: str, graph: MessageGraph,
                 consts: _ModuleConstants):
        self.path = path
        self.protocol = protocol_of(path)
        self.graph = graph
        self.consts = consts
        self._class_stack: List[str] = []
        self._func_stack: List[str] = []
        #: Guard facts in force: (attr, state) from enclosing ifs.
        self._if_facts: List[Tuple[str, str]] = []
        #: Constructor Call node ids that are direct send arguments.
        self._sent_ctor_nodes: Set[int] = set()
        #: Per-outer-function: variable name -> its ConstructSite.
        self._var_sites: Dict[str, ConstructSite] = {}

    # -- context helpers ------------------------------------------------
    @property
    def _cls(self) -> Optional[str]:
        return self._class_stack[-1] if self._class_stack else None

    @property
    def _outer_func(self) -> Optional[str]:
        return self._func_stack[0] if self._func_stack else None

    def _func_info(self) -> Optional[FuncInfo]:
        name = self._outer_func
        if name is None:
            return None
        key = (self.protocol, name)
        info = self.graph.functions.get(key)
        if info is None:
            info = FuncInfo(name=name, protocol=self.protocol)
            self.graph.functions[key] = info
        return info

    def _mark_retry_machinery(self) -> None:
        cls = self._cls
        if cls is not None and cls in self.graph.classes:
            self.graph.classes[cls].has_retry_machinery = True

    # -- classes --------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.graph.classes.setdefault(node.name, ClassInfo(
            name=node.name, path=self.path, line=node.lineno,
            protocol=self.protocol))
        # Class-level string defaults feed the FSM initial-state check.
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name) and \
                    stmt.value is not None:
                value = self.consts.resolve_string(stmt.value)
                if value is not None:
                    self.graph.fsm_defaults.append(FsmDefault(
                        attr=stmt.target.id, value=value, cls=node.name,
                        path=self.path, line=stmt.lineno))
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    # -- functions ------------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(self, node) -> None:
        outermost = not self._func_stack
        self._func_stack.append(node.name)
        if outermost:
            self._var_sites = {}
            self._func_info()  # ensure the unit exists even if empty
            if node.name in DISPATCH_FUNCTIONS:
                self._extract_branches(node)
        self.generic_visit(node)
        self._func_stack.pop()

    def _extract_branches(self, fn) -> None:
        for sub in ast.walk(fn):
            if not isinstance(sub, ast.If):
                continue
            test = sub.test
            if not (isinstance(test, ast.Call)
                    and isinstance(test.func, ast.Name)
                    and test.func.id == "isinstance"
                    and len(test.args) == 2):
                continue
            names = [n for n in self.consts.resolve_types(test.args[1])
                     if n in self.graph.messages]
            if not names:
                continue
            targets: List[str] = []
            for stmt in sub.body:
                for call in ast.walk(stmt):
                    if isinstance(call, ast.Call):
                        name = _call_name(call)
                        if name is not None and name != "isinstance" and \
                                name not in targets:
                            targets.append(name)
            for msg_type in names:
                self.graph.branches.append(HandlerBranch(
                    msg_type=msg_type, path=self.path, line=test.lineno,
                    cls=self._cls, func=fn.name, targets=tuple(targets)))

    # -- calls: sends, constructs, guards, mutations --------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)
        info = self._func_info()

        if name is not None and info is not None:
            info.calls.add(name)

        if name == "set_timer":
            self._mark_retry_machinery()
        if name == "setdefault" and info is not None:
            info.guard_sites.append((self.path, node.lineno))
        if name in MUTATION_CALLS and \
                isinstance(node.func, ast.Attribute) and info is not None:
            info.mutation_sites.append((self.path, node.lineno, name))

        if name in SEND_NAMES and len(node.args) >= 2:
            self._record_send(node)

        if name is not None and name in self.graph.dataclasses:
            self._record_construct(name, node)

        self.generic_visit(node)

    def _record_send(self, node: ast.Call) -> None:
        payload = node.args[1]
        msg_type: Optional[str] = None
        if isinstance(payload, ast.Call):
            ctor = _call_name(payload)
            if ctor in self.graph.messages:
                msg_type = ctor
                self._sent_ctor_nodes.add(id(payload))
        elif isinstance(payload, ast.Name):
            site = self._var_sites.get(payload.id)
            if site is not None:
                msg_type = site.msg_type
                site.sent = True
        if msg_type is None:
            return
        self.graph.sends.append(SendSite(
            msg_type=msg_type, path=self.path, line=node.lineno,
            col=node.col_offset + 1, cls=self._cls,
            func=self._outer_func))
        info = self._func_info()
        if info is not None:
            info.sends.add(msg_type)

    def _record_construct(self, name: str, node: ast.Call) -> None:
        has_star = any(isinstance(a, ast.Starred) for a in node.args) or \
            any(kw.arg is None for kw in node.keywords)
        site = ConstructSite(
            msg_type=name, path=self.path, line=node.lineno,
            col=node.col_offset + 1, cls=self._cls,
            func=self._outer_func,
            kwargs=tuple(kw.arg for kw in node.keywords
                         if kw.arg is not None),
            n_pos=sum(1 for a in node.args
                      if not isinstance(a, ast.Starred)),
            has_star=has_star,
            sent=id(node) in self._sent_ctor_nodes)
        self.graph.constructs.append(site)
        self._last_construct = site

    # -- attributes: retry-policy references ----------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr == "retry_policy":
            self._mark_retry_machinery()
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if node.id == "RetryPolicy":
            self._mark_retry_machinery()
        self.generic_visit(node)

    # -- assignments: message variables and FSM state -------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and \
                    isinstance(node.value, ast.Call):
                ctor = _call_name(node.value)
                if ctor in self.graph.messages:
                    # Visit the value first so its ConstructSite exists.
                    self.generic_visit(node)
                    if self.graph.constructs and \
                            self.graph.constructs[-1].msg_type == ctor:
                        self._var_sites[target.id] = \
                            self.graph.constructs[-1]
                    return
            if isinstance(target, ast.Attribute):
                value = self.consts.resolve_string(node.value)
                if value is not None:
                    guards = tuple(state for attr, state in self._if_facts
                                   if attr == target.attr)
                    self.graph.fsm_assigns.append(FsmAssign(
                        attr=target.attr, value=value, guards=guards,
                        cls=self._cls, func=self._outer_func,
                        path=self.path, line=node.lineno))
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        info = self._func_info()
        if info is not None:
            info.mutation_sites.append(
                (self.path, node.lineno, "augassign"))
        self.generic_visit(node)

    # -- comparisons: guards and FSM -------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        info = self._func_info()
        if info is not None and _is_guard_compare(node):
            info.guard_sites.append((self.path, node.lineno))
        fact = self._fsm_fact(node)
        if fact is not None:
            self.graph.fsm_compares.append(FsmCompare(
                attr=fact[0], value=fact[1], path=self.path,
                line=node.lineno))
        self.generic_visit(node)

    def _fsm_fact(self, node: ast.Compare) -> Optional[Tuple[str, str]]:
        """``<expr>.attr ==/!= <resolvable state>`` -> (attr, state)."""
        if len(node.ops) != 1 or \
                not isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
            return None
        left, right = node.left, node.comparators[0]
        if isinstance(right, ast.Attribute) and \
                not isinstance(left, ast.Attribute):
            left, right = right, left
        if not isinstance(left, ast.Attribute):
            return None
        value = self.consts.resolve_string(right)
        if value is None:
            return None
        return (left.attr, value)

    # -- if: track equality guards for FSM transitions -------------------
    def visit_If(self, node: ast.If) -> None:
        fact: Optional[Tuple[str, str]] = None
        if isinstance(node.test, ast.Compare) and len(node.test.ops) == 1 \
                and isinstance(node.test.ops[0], ast.Eq):
            fact = self._fsm_fact(node.test)
        self.visit(node.test)
        if fact is not None:
            self._if_facts.append(fact)
        for stmt in node.body:
            self.visit(stmt)
        if fact is not None:
            self._if_facts.pop()
        for stmt in node.orelse:
            self.visit(stmt)


# ---------------------------------------------------------------------------
# Build API
# ---------------------------------------------------------------------------

def collect_sources(paths: Sequence[str]) -> Dict[str, str]:
    """Read ``*.py`` sources from files and/or directory trees."""
    sources: Dict[str, str] = {}
    for entry in paths:
        target = Path(entry)
        if target.is_dir():
            files = sorted(target.rglob("*.py"))
        else:
            files = [target]
        for file in files:
            sources[str(file)] = file.read_text(encoding="utf-8")
    return sources


def build_graph(sources: Dict[str, str]) -> MessageGraph:
    """Extract the message graph from ``{path: source}`` texts."""
    graph = MessageGraph(sources=dict(sources))
    trees: Dict[str, ast.Module] = {}
    consts: Dict[str, _ModuleConstants] = {}

    # Pass 1: message/dataclass definitions and module constants, from
    # every file, so pass 2 can resolve cross-module references by name.
    for path in sorted(sources):
        tree = ast.parse(sources[path], filename=path)
        trees[path] = tree
        module_consts = _ModuleConstants()
        module_consts.collect(tree)
        consts[path] = module_consts
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not _is_dataclass_decorated(node):
                continue
            definition = MessageDef(
                name=node.name, path=path, line=node.lineno,
                protocol=protocol_of(path),
                fields=_class_fields(node),
                is_message=_is_message_base(node))
            graph.dataclasses[node.name] = definition
            if definition.is_message:
                graph.messages[node.name] = definition

    # Pass 2: sends, constructs, branches, functions, classes, FSM raw
    # material.
    for path in sorted(sources):
        _Extractor(path, graph, consts[path]).visit(trees[path])
    return graph


def build_graph_from_paths(paths: Sequence[str]) -> MessageGraph:
    """Convenience: :func:`collect_sources` + :func:`build_graph`."""
    return build_graph(collect_sources(paths))
