"""Participant-side protocol logic for one partition.

A :class:`PartitionComponent` lives inside a Carousel data server and owns
that server's replica of one partition: the versioned store, the
pending-transaction list, and the participant's share of the transaction
protocol.  The same component serves both roles:

* as **participant leader** it answers reads, makes prepare decisions,
  replicates them through Raft, and reports them to coordinators (§4.1);
* as **participant follower** it applies replicated records and, under CPC,
  casts fast-path votes directly to coordinators (§4.2).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core import recovery as recovery_mod
from repro.core.messages import (
    FastVote,
    PrepareQuery,
    PrepareResult,
    ReadOnlyReply,
    ReadOnlyRequest,
    ReadPrepareRequest,
    ReadReply,
    Writeback,
    WritebackAck,
)
from repro.core.occ import (
    ABORT,
    PREPARED,
    PendingList,
    PendingTxn,
    freeze_versions,
)
from repro.core.records import CommitRecord, PrepareRecord
from repro.raft.node import RaftMember
from repro.trace.tracer import SPAN_PREPARE
from repro.store.kvstore import VersionedKVStore
from repro.txn import TID
from repro.wal.records import OccPrepareWal

COMMIT = "commit"


class PartitionComponent:
    """One server's replica of one partition."""

    def __init__(self, server, partition_id: str,
                 store: Optional[VersionedKVStore] = None):
        self.server = server
        self.partition_id = partition_id
        self.store = store or VersionedKVStore()
        self.pending = PendingList()
        #: Final writeback outcomes: tid -> "commit" | "abort".
        self.resolved: Dict[TID, str] = {}
        #: Replicated prepare decisions: tid -> PrepareRecord.
        self.prepare_log: Dict[TID, PrepareRecord] = {}
        self.member: Optional[RaftMember] = None
        #: In-flight proposals keyed to the term they were proposed in.
        #: A marker from an older term means the entry (and its reply
        #: callback) died with that leadership — Raft drops commit
        #: callbacks on step-down — so a retransmission must re-propose
        #: rather than be deduplicated against a dead proposal.
        self._preparing: Dict[TID, int] = {}
        self._writeback_inflight: Dict[TID, int] = {}
        #: Requests buffered while CPC leader recovery runs (§4.3.3 step 1).
        self.recovering = False
        self._buffered: List = []
        # Counters for tests and ablations.
        self.prepares_attempted = 0
        self.prepares_rejected = 0
        self.fast_votes_cast = 0

    def attach_member(self, member: RaftMember) -> None:
        """Bind this component to its partition's Raft member."""
        self.member = member

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @property
    def is_leader(self) -> bool:
        return self.member is not None and self.member.is_leader

    def _current_versions(self, keys) -> Dict[str, int]:
        return {k: self.store.version(k) for k in keys}

    def _send(self, dst: str, msg) -> None:
        self.server.send(dst, msg)

    # ------------------------------------------------------------------
    # Message entry points (called by the server's dispatcher)
    # ------------------------------------------------------------------
    def on_read_prepare(self, msg: ReadPrepareRequest) -> None:
        """Handle a piggybacked read+prepare request (§4.1.4, §4.2)."""
        if self.recovering:
            self._buffered.append(msg)
            return
        # Reads are answered immediately from the local store — by the
        # leader, and by a client-local replica under the local-read
        # optimization (§4.4.1).  Values may be stale at a follower; the
        # coordinator's version check catches that at commit time.
        if msg.want_read and msg.read_keys:
            values = {}
            for key in msg.read_keys:
                record = self.store.read(key)
                values[key] = (record.value, record.version)
            self._send(msg.src, ReadReply(
                tid=msg.tid, partition_id=self.partition_id,
                replica_id=self.server.node_id,
                from_leader=self.is_leader, values=values))
        if self.is_leader:
            self._leader_prepare(msg)
        elif msg.fast_path:
            self._follower_fast_vote(msg)

    def on_read_only(self, msg: ReadOnlyRequest) -> None:
        """One-roundtrip read-only path (§4.4.2): OCC-validate against
        pending writers, then return data or abort."""
        if self.recovering:
            self._buffered.append(msg)
            return
        if not self.is_leader:
            return  # client will retry against the current leader
        if self.pending.blocks_read_only(msg.keys):
            self._send(msg.src, ReadOnlyReply(
                tid=msg.tid, partition_id=self.partition_id, ok=False))
            return
        values = {}
        for key in msg.keys:
            record = self.store.read(key)
            values[key] = (record.value, record.version)
        self._send(msg.src, ReadOnlyReply(
            tid=msg.tid, partition_id=self.partition_id, ok=True,
            values=values))

    def on_writeback(self, msg: Writeback) -> None:
        """Replicate and apply a commit decision, then ack (§4.1.3)."""
        if self.recovering:
            self._buffered.append(msg)
            return
        if not self.is_leader:
            return  # coordinator retries against the current leader
        tid = msg.tid
        if tid in self.resolved:
            self._send(msg.src, WritebackAck(
                tid=tid, partition_id=self.partition_id))
            return
        if self._writeback_inflight.get(tid) == self.member.current_term:
            return
        self._writeback_inflight[tid] = self.member.current_term
        record = CommitRecord(
            tid=tid, partition_id=self.partition_id,
            decision=msg.decision, writes=tuple(msg.writes.items()))
        coordinator = msg.src

        def replicated(_entry):
            self._writeback_inflight.pop(tid, None)
            self._send(coordinator, WritebackAck(
                tid=tid, partition_id=self.partition_id))

        if self.member.propose(record, on_committed=replicated) is None:
            self._writeback_inflight.pop(tid, None)

    def on_prepare_query(self, msg: PrepareQuery) -> None:
        """A recovered coordinator re-requests our prepare result
        (§4.3, coordinator failover)."""
        if self.recovering:
            self._buffered.append(msg)
            return
        if not self.is_leader:
            return
        tid = msg.tid
        if tid in self.resolved:
            decision = PREPARED if self.resolved[tid] == COMMIT else ABORT
            self._send(msg.coordinator_id, PrepareResult(
                tid=tid, partition_id=self.partition_id, decision=decision))
            return
        record = self.prepare_log.get(tid)
        if record is not None:
            self._send(msg.coordinator_id, PrepareResult(
                tid=tid, partition_id=self.partition_id,
                decision=record.decision,
                read_versions=record.read_versions))
            return
        # Never saw this transaction (the original prepare died with a
        # previous leader): run a fresh prepare from the query's sets.
        self._leader_prepare(ReadPrepareRequest(
            tid=tid, partition_id=self.partition_id,
            coordinator_id=msg.coordinator_id,
            coord_group_id=msg.coord_group_id,
            read_keys=msg.read_keys, write_keys=msg.write_keys,
            want_read=False, fast_path=False))

    # ------------------------------------------------------------------
    # Prepare logic
    # ------------------------------------------------------------------
    def _leader_prepare(self, msg: ReadPrepareRequest) -> None:
        tid = msg.tid
        # Retransmission handling: reuse the recorded decision.
        if tid in self.resolved:
            decision = PREPARED if self.resolved[tid] == COMMIT else ABORT
            self._send(msg.coordinator_id, PrepareResult(
                tid=tid, partition_id=self.partition_id, decision=decision))
            return
        if tid in self.prepare_log:
            record = self.prepare_log[tid]
            self._send(msg.coordinator_id, PrepareResult(
                tid=tid, partition_id=self.partition_id,
                decision=record.decision,
                read_versions=record.read_versions))
            return
        if self._preparing.get(tid) == self.member.current_term:
            return  # replication in flight; the result will be sent

        self.prepares_attempted += 1
        conflict = self.pending.conflicts(tid, msg.read_keys, msg.write_keys)
        decision = ABORT if conflict else PREPARED
        if conflict:
            self.prepares_rejected += 1
        versions = freeze_versions(self._current_versions(msg.read_keys))
        term = self.member.current_term

        if msg.fast_path:
            # The leader's fast vote: CPC's fast path (§4.2).
            self.fast_votes_cast += 1
            self._send(msg.coordinator_id, FastVote(
                tid=tid, partition_id=self.partition_id,
                replica_id=self.server.node_id, is_leader=True,
                decision=decision, read_versions=versions, term=term))

        if decision == PREPARED:
            entry = PendingTxn(
                tid=tid, read_keys=frozenset(msg.read_keys),
                write_keys=frozenset(msg.write_keys),
                read_versions=versions, term=term,
                coordinator_id=msg.coordinator_id, provisional=True)
            self._persist_provisional(entry)
            self.pending.add(entry)

        record = PrepareRecord(
            tid=tid, partition_id=self.partition_id, decision=decision,
            read_keys=tuple(msg.read_keys), write_keys=tuple(msg.write_keys),
            read_versions=versions, term=term,
            coordinator_id=msg.coordinator_id,
            coord_group_id=msg.coord_group_id)
        self._preparing[tid] = term
        tracer = self.server.tracer
        span = None
        if tracer.enabled:
            span = tracer.span_begin(
                tid, SPAN_PREPARE, self.server.node_id, self.server.dc,
                detail=f"{self.partition_id} {decision}")

        def replicated(_entry):
            # Slow-path completion: decision is durable, report it (§4.1.4).
            self._preparing.pop(tid, None)
            self.server.tracer.span_end(span)
            self._send(record.coordinator_id, PrepareResult(
                tid=tid, partition_id=self.partition_id,
                decision=record.decision,
                read_versions=record.read_versions))

        if self.member.propose(record, on_committed=replicated) is None:
            self._preparing.pop(tid, None)
            self.server.tracer.span_end(span)

    def _follower_fast_vote(self, msg: ReadPrepareRequest) -> None:
        """A follower's independent CPC vote, from purely local state
        (§4.2)."""
        tid = msg.tid
        if tid in self.resolved:
            return
        tracer = self.server.tracer
        existing = self.pending.get(tid)
        if existing is not None:
            # The slow-path record arrived first; vote consistently with it.
            self.fast_votes_cast += 1
            if tracer.enabled:
                tracer.point(tid, "fast-vote", self.server.node_id,
                             self.server.dc,
                             detail=f"{self.partition_id} {PREPARED}")
            self._send(msg.coordinator_id, FastVote(
                tid=tid, partition_id=self.partition_id,
                replica_id=self.server.node_id, is_leader=False,
                decision=PREPARED, read_versions=existing.read_versions,
                term=existing.term))
            return
        conflict = self.pending.conflicts(tid, msg.read_keys, msg.write_keys)
        decision = ABORT if conflict else PREPARED
        versions = freeze_versions(self._current_versions(msg.read_keys))
        term = self.member.current_term
        if decision == PREPARED:
            entry = PendingTxn(
                tid=tid, read_keys=frozenset(msg.read_keys),
                write_keys=frozenset(msg.write_keys),
                read_versions=versions, term=term,
                coordinator_id=msg.coordinator_id, provisional=True)
            self._persist_provisional(entry)
            self.pending.add(entry)
        self.fast_votes_cast += 1
        if tracer.enabled:
            tracer.point(tid, "fast-vote", self.server.node_id,
                         self.server.dc,
                         detail=f"{self.partition_id} {decision}")
        self._send(msg.coordinator_id, FastVote(
            tid=tid, partition_id=self.partition_id,
            replica_id=self.server.node_id, is_leader=False,
            decision=decision, read_versions=versions, term=term))

    # ------------------------------------------------------------------
    # Raft integration
    # ------------------------------------------------------------------
    def apply(self, command) -> None:
        """State-machine apply, invoked on every replica in log order."""
        if isinstance(command, PrepareRecord):
            self._apply_prepare(command)
        elif isinstance(command, CommitRecord):
            self._apply_commit(command)
        else:  # pragma: no cover - routing bug
            raise TypeError(f"unexpected partition record {command!r}")

    def _apply_prepare(self, record: PrepareRecord) -> None:
        self.prepare_log[record.tid] = record
        if record.tid in self.resolved:
            return
        if record.decision == PREPARED:
            self.pending.add(PendingTxn(
                tid=record.tid, read_keys=frozenset(record.read_keys),
                write_keys=frozenset(record.write_keys),
                read_versions=record.read_versions, term=record.term,
                coordinator_id=record.coordinator_id, provisional=False))
        else:
            self.pending.remove(record.tid)

    def _apply_commit(self, record: CommitRecord) -> None:
        if record.tid in self.resolved:
            return
        self.resolved[record.tid] = record.decision
        if record.decision == COMMIT:
            for key, value in record.writes:
                # Versions advance identically on every replica because all
                # replicas apply the same log in the same order.
                self.store.write(key, value, self.store.version(key) + 1)
        self.pending.remove(record.tid)

    def vote_payload(self):
        """Pending-transaction list piggybacked on Raft votes (§4.3.3)."""
        return self.pending.snapshot()

    # ------------------------------------------------------------------
    # Durability (provisional prepared-set redo across power cycles)
    # ------------------------------------------------------------------
    def _persist_provisional(self, entry: PendingTxn) -> None:
        """Fsync a provisional pending entry before the vote it backs.

        §4.3.3's leader recovery reconstructs prepared transactions from
        surviving replicas' pending lists; journaling provisional entries
        keeps a power-cycled replica a usable member of that protocol
        instead of one that silently forgot every vote it cast.
        """
        wal = self.server.wal
        if wal is None:
            return
        wal.append(OccPrepareWal(
            partition_id=self.partition_id, tid=entry.tid,
            read_keys=tuple(sorted(entry.read_keys)),
            write_keys=tuple(sorted(entry.write_keys)),
            read_versions=entry.read_versions, term=entry.term,
            coordinator_id=entry.coordinator_id))

    def restore_pending_from_wal(self, records) -> int:
        """Redo provisional pending entries after a power cycle.

        Undo happens the same way it does in steady state: as the Raft
        log re-applies, PrepareRecord/CommitRecord processing confirms or
        removes each entry.  Returns how many entries were restored.
        """
        restored = 0
        for record in records:
            if not isinstance(record, OccPrepareWal):
                continue
            if record.partition_id != self.partition_id:
                continue
            if record.tid in self.resolved or \
                    self.pending.get(record.tid) is not None:
                continue
            self.pending.add(PendingTxn(
                tid=record.tid, read_keys=frozenset(record.read_keys),
                write_keys=frozenset(record.write_keys),
                read_versions=record.read_versions, term=record.term,
                coordinator_id=record.coordinator_id, provisional=True))
            restored += 1
        return restored

    def on_leadership(self, member: RaftMember, vote_payloads) -> None:
        """This server was just elected participant leader."""
        self.server.directory.set_leader(self.partition_id,
                                         self.server.node_id)
        recovery_mod.run_participant_recovery(self, vote_payloads)

    # ------------------------------------------------------------------
    # Recovery support
    # ------------------------------------------------------------------
    def begin_recovery(self) -> None:
        """Start buffering requests during CPC leader recovery (§4.3.3)."""
        self.recovering = True

    def finish_recovery(self) -> None:
        """Re-report prepare results, then drain buffered requests."""
        self.recovering = False
        # Ordered: prepare_log insertion order is prepare arrival order,
        # which is deterministic under a fixed kernel seed.
        # detlint: ignore[values-fanout]
        for record in self.prepare_log.values():
            if record.tid in self.resolved:
                continue
            self._send(record.coordinator_id, PrepareResult(
                tid=record.tid, partition_id=self.partition_id,
                decision=record.decision,
                read_versions=record.read_versions))
        buffered, self._buffered = self._buffered, []
        for msg in buffered:
            self.server.dispatch_partition_message(msg)
