"""Unit tests for :mod:`repro.core.backoff` — the retry-delay schedule.

The asyncio transport's reconnect loop and the chaos-hardened
retransmission timers both draw their delays from :class:`RetryPolicy`,
so its determinism contract (same seed -> same schedule, independent of
the process hash seed) is what keeps reconnect behaviour reproducible
across backends and machines.
"""

import os
import subprocess
import sys
from random import Random

import pytest

from repro.core.backoff import RetryPolicy

_POLICY = RetryPolicy(base_ms=50.0, multiplier=2.0, max_ms=2000.0,
                      jitter_fraction=0.2)


def _schedule(policy, seed, attempts=12):
    rng = Random(seed)
    return [policy.delay_ms(i, rng) for i in range(attempts)]


def test_same_seed_same_delays():
    assert _schedule(_POLICY, "link:0") == _schedule(_POLICY, "link:0")


def test_different_seeds_differ():
    assert _schedule(_POLICY, "link:0") != _schedule(_POLICY, "link:1")


def test_cap_honored_even_with_jitter():
    # Jitter is applied after the cap, so the hard bound is
    # max_ms * (1 + jitter_fraction); without jitter it is max_ms.
    for delay in _schedule(_POLICY, 7, attempts=40):
        assert delay <= _POLICY.max_ms * (1 + _POLICY.jitter_fraction)
    plain = RetryPolicy(base_ms=50.0, multiplier=2.0, max_ms=2000.0)
    assert _schedule(plain, 0, attempts=40)[-1] == 2000.0


def test_growth_is_monotone_before_the_cap():
    plain = RetryPolicy(base_ms=50.0, multiplier=2.0, max_ms=2000.0)
    delays = _schedule(plain, 0, attempts=8)
    assert delays == [50.0, 100.0, 200.0, 400.0, 800.0, 1600.0,
                      2000.0, 2000.0]


def test_degenerate_policy_never_touches_the_rng():
    class Exploding:
        def uniform(self, a, b):  # pragma: no cover - must not be hit
            raise AssertionError("degenerate policy consulted the RNG")

    policy = RetryPolicy(base_ms=100.0)
    assert [policy.delay_ms(i, Exploding()) for i in range(5)] == [100.0] * 5


def test_huge_attempt_numbers_do_not_overflow():
    policy = RetryPolicy(base_ms=1.0, multiplier=2.0, max_ms=5000.0)
    assert policy.delay_ms(10 ** 9, Random(0)) == 5000.0
    assert policy.delay_ms(-5, Random(0)) == 1.0


@pytest.mark.parametrize("kwargs", [
    dict(base_ms=0.0),
    dict(base_ms=10.0, multiplier=0.5),
    dict(base_ms=10.0, max_ms=5.0),
    dict(base_ms=10.0, jitter_fraction=1.0),
])
def test_invalid_policies_rejected(kwargs):
    with pytest.raises(ValueError):
        RetryPolicy(**kwargs)


def test_schedule_independent_of_pythonhashseed():
    """The delay sequence must be identical under different hash seeds —
    the same guarantee the divergence harness checks for whole runs,
    scoped down to the backoff primitive the TCP reconnect loop uses."""
    script = (
        "from random import Random\n"
        "from repro.core.backoff import RetryPolicy\n"
        "p = RetryPolicy(base_ms=50.0, multiplier=2.0, max_ms=2000.0,\n"
        "                jitter_fraction=0.2)\n"
        "rng = Random('link:dc-oregon:0')\n"
        "print(repr([p.delay_ms(i, rng) for i in range(16)]))\n"
    )
    outputs = []
    for hash_seed in ("0", "1", "4242"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run([sys.executable, "-c", script],
                                capture_output=True, text=True, env=env,
                                check=True)
        outputs.append(result.stdout)
    assert outputs[0] == outputs[1] == outputs[2]
