"""API-surface checks: every module imports cleanly and is documented."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = sorted(
    name for __, name, ___ in pkgutil.walk_packages(
        repro.__path__, prefix="repro."))


@pytest.mark.parametrize("module_name", MODULES)
def test_module_imports_and_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} has no module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_documented(module_name):
    module = importlib.import_module(module_name)
    for name, obj in vars(module).items():
        if name.startswith("_") or not inspect.isclass(obj):
            continue
        if obj.__module__ != module_name:
            continue  # re-export
        assert obj.__doc__, f"{module_name}.{name} has no docstring"
        for method_name, method in vars(obj).items():
            if method_name.startswith("_"):
                continue
            if inspect.isfunction(method):
                assert method.__doc__ or method_name in (
                    "handle_message",), \
                    f"{module_name}.{name}.{method_name} undocumented"


def test_package_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name)


def test_version_string():
    assert repro.__version__.count(".") == 2
