"""Single-transaction trace runner behind ``python -m repro trace``.

Builds a deterministic two-partition scenario for each system variant,
attaches a :class:`~repro.trace.tracer.Tracer` after the cluster settles
(so election/bootstrap noise stays out of the trace), runs the
transaction(s), and returns the tracer plus per-transaction traces.

Scenario construction mirrors the paper's figures: the client sits in
``us-west`` and touches one partition led locally and one led remotely
(Figure 2).  For the CPC fast path the remote partition is chosen to have
a *replica* in the client's datacenter, so the local-read optimization
keeps the read round off the WAN and the commit costs exactly 1 WANRT
(§4.2 + §4.4.1).  ``force_slow_path`` perturbs one TAPIR replica's store
so the fast quorum cannot form and the finalize round runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.bench.cluster import (CarouselCluster, DeploymentSpec,
                                 LayeredCluster, TapirCluster)
from repro.core.config import BASIC, FAST, CarouselConfig
from repro.trace.tracer import Tracer, TxnTrace
from repro.txn import TransactionSpec

#: CLI systems → cluster/config recipe names.
SYSTEMS = ("basic", "fast", "tapir", "layered")


@dataclass
class TraceRun:
    """Everything a trace invocation produced."""

    system: str
    tracer: Tracer
    cluster: Any
    results: List[Any] = field(default_factory=list)
    txn_traces: List[TxnTrace] = field(default_factory=list)


def _leader_dc(cluster, pid: str) -> str:
    return cluster.directory.lookup(pid).leader_datacenter()


def _has_replica_in(cluster, pid: str, dc: str) -> bool:
    return dc in cluster.directory.lookup(pid).datacenters


def _pick_keys(cluster, client_dc: str,
               remote_local_replica: Optional[bool] = None) -> tuple:
    """Two keys on distinct partitions for the Figure 2 scenario: one on
    a partition led from ``client_dc``, one led remotely.

    ``remote_local_replica`` further constrains the remote partition to
    have (or lack) a replica in the client's datacenter — the CPC
    fast-path scenario needs one so the local-read optimization applies.
    """
    local = remote = None
    for i in range(5000):
        key = f"trace{i}"
        pid = cluster.ring.partition_for(key)
        if _leader_dc(cluster, pid) == client_dc:
            if local is None:
                local = key
        elif remote is None:
            if remote_local_replica is not None and \
                    _has_replica_in(cluster, pid, client_dc) != \
                    remote_local_replica:
                continue
            remote = key
        if local is not None and remote is not None:
            return (local, remote)
    raise RuntimeError("could not find suitable trace keys")


def _pick_remote_keys(cluster, client_dc: str, want_local_replica: bool,
                      remote_leader: bool = False, n: int = 2) -> tuple:
    """``n`` keys on distinct partitions, each satisfying the local-replica
    predicate (TAPIR scenarios) and, with ``remote_leader``, led from
    another datacenter (the clean CPC fast-path scenario: votes from a
    local replica plus remote replicas always beat the remote leader's
    Raft slow path)."""
    found: List[str] = []
    pids: List[str] = []
    for i in range(5000):
        key = f"trace{i}"
        pid = cluster.ring.partition_for(key)
        if pid in pids:
            continue
        if _has_replica_in(cluster, pid, client_dc) != want_local_replica:
            continue
        if remote_leader and _leader_dc(cluster, pid) == client_dc:
            continue
        found.append(key)
        pids.append(pid)
        if len(found) == n:
            return tuple(found)
    raise RuntimeError("could not find suitable trace keys")


def _build_cluster(system: str, seed: int):
    spec = DeploymentSpec(seed=seed, jitter_fraction=0.0)
    if system == "basic":
        return CarouselCluster(spec, CarouselConfig(mode=BASIC))
    if system == "fast":
        return CarouselCluster(spec, CarouselConfig(mode=FAST))
    if system == "tapir":
        return TapirCluster(spec)
    if system == "layered":
        return LayeredCluster(spec)
    raise ValueError(f"unknown system {system!r}; "
                     f"choose from {', '.join(SYSTEMS)}")


def _force_tapir_mismatch(cluster, keys: tuple, client_dc: str) -> None:
    """Make one *non-closest* replica of ``keys[0]``'s partition disagree
    on the key's version, so 3 matching fast votes are impossible and the
    client must fall back to IR's finalize round."""
    pid = cluster.ring.partition_for(keys[0])
    info = cluster.directory.lookup(pid)
    topo = cluster.network.topology
    closest = min(range(len(info.replicas)),
                  key=lambda i: topo.rtt(client_dc, info.datacenters[i]))
    victim = next(i for i in range(len(info.replicas)) if i != closest)
    replica = cluster.replicas[info.replicas[victim]]
    record = replica.store.read(keys[0])
    replica.store.write(keys[0], record.value, record.version + 1)


def run_traced(system: str, *, seed: int = 42, client_dc: str = "us-west",
               n_txns: int = 1, read_only: bool = False,
               force_slow_path: bool = False,
               digest_sink=None) -> TraceRun:
    """Run ``n_txns`` traced two-partition transactions on ``system``.

    Returns a :class:`TraceRun` whose ``txn_traces`` hold one completed
    :class:`~repro.trace.tracer.TxnTrace` per transaction.

    ``digest_sink``, if given, is installed as the kernel's event digest
    (see :mod:`repro.analysis.digest`) *before* the cluster runs, so the
    digest covers bootstrap as well — the divergence bisector compares
    whole runs, noise included.
    """
    cluster = _build_cluster(system, seed)
    if digest_sink is not None:
        cluster.kernel.digest = digest_sink
    cluster.run(500)  # settle elections/bootstrap before tracing

    if system == "tapir":
        # Fast path needs every replica to agree → partitions with a
        # client-local replica keep reads local AND consistent.  The slow
        # path instead uses remote partitions plus a version perturbation.
        keys = _pick_remote_keys(cluster, client_dc,
                                 want_local_replica=not force_slow_path)
    elif system == "fast" and not read_only:
        # Remote-led partitions with a client-local replica: reads stay
        # local (§4.4.1) and each partition's fast quorum completes in one
        # WAN round trip, ahead of its leader's Raft slow path (§4.2).
        keys = _pick_remote_keys(cluster, client_dc,
                                 want_local_replica=True,
                                 remote_leader=True)
    else:
        keys = _pick_keys(cluster, client_dc)

    cluster.populate({k: "v0" for k in keys})
    tracer = Tracer(cluster.kernel)
    run = TraceRun(system=system, tracer=tracer, cluster=cluster)
    client = cluster.client(client_dc)

    for i in range(n_txns):
        if system == "tapir" and force_slow_path:
            _force_tapir_mismatch(cluster, keys, client_dc)
        if read_only:
            spec = TransactionSpec(read_keys=keys, write_keys=(),
                                   compute_writes=lambda r: {},
                                   txn_type="traced-ro")
        else:
            spec = TransactionSpec(
                read_keys=keys, write_keys=keys,
                compute_writes=lambda r: {k: f"t{i}" for k in r},
                txn_type="traced")
        done: List[Any] = []
        client.submit(spec, done.append)
        deadline = cluster.kernel.now + 30_000
        while not done and cluster.kernel.now < deadline:
            cluster.run(50)
        if not done:
            raise RuntimeError(
                f"traced {system} transaction {i + 1} did not complete")
        run.results.extend(done)

    cluster.run(2_000)  # drain writebacks / commit acks
    tracer.detach()
    run.txn_traces = tracer.transactions()
    return run
