"""Unit tests for the simulated network and node base class."""

from dataclasses import dataclass, field
from typing import List

import pytest

from repro.sim.kernel import Kernel
from repro.sim.message import HEADER_BYTES, Message, wire_size
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.topology import ec2_five_regions, uniform_topology


@dataclass
class Ping(Message):
    payload: str = "ping"


@dataclass
class BigPayload(Message):
    data: bytes = b""


class Recorder(Node):
    """Test node that records (time, message) deliveries."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.received: List = []

    def handle_message(self, msg):
        self.received.append((self.kernel.now, msg))


def make_pair(jitter=0.0, service_time_ms=0.0, topo=None):
    kernel = Kernel(seed=1)
    topo = topo or ec2_five_regions()
    net = Network(kernel, topo, jitter_fraction=jitter)
    a = Recorder("a", "us-west", kernel, net)
    b = Recorder("b", "us-east", kernel, net,
                 service_time_ms=service_time_ms)
    return kernel, net, a, b


class TestWireSize:
    def test_primitives(self):
        assert wire_size(None) == 1
        assert wire_size(True) == 1
        assert wire_size(7) == 8
        assert wire_size(3.14) == 8
        assert wire_size("abcd") == 4
        assert wire_size(b"abcde") == 5

    def test_containers_recursive(self):
        assert wire_size(["ab", 1]) == 4 + 2 + 8
        assert wire_size({"k": "vv"}) == 4 + 1 + 2

    def test_dataclass_message_size_includes_header(self):
        msg = Ping()
        assert msg.size_bytes() == HEADER_BYTES + len("ping")

    def test_size_is_cached(self):
        msg = BigPayload(data=b"x" * 1000)
        first = msg.size_bytes()
        msg.data = b""  # mutation after sizing must not change accounting
        assert msg.size_bytes() == first


class TestDelivery:
    def test_cross_dc_delay_is_half_rtt(self):
        kernel, net, a, b = make_pair()
        a.send("b", Ping())
        kernel.run()
        assert len(b.received) == 1
        at, _ = b.received[0]
        assert at == pytest.approx(73.0 / 2)

    def test_same_dc_delay_is_half_intra_rtt(self):
        kernel = Kernel()
        net = Network(kernel, ec2_five_regions(), jitter_fraction=0.0)
        a = Recorder("a", "asia", kernel, net)
        b = Recorder("b", "asia", kernel, net)
        a.send("b", Ping())
        kernel.run()
        at, _ = b.received[0]
        assert at == pytest.approx(0.25)

    def test_jitter_only_increases_delay(self):
        kernel = Kernel(seed=3)
        net = Network(kernel, uniform_topology(2, 10.0), jitter_fraction=0.5)
        a = Recorder("a", "dc0", kernel, net)
        b = Recorder("b", "dc1", kernel, net)
        for _ in range(20):
            a.send("b", Ping())
        kernel.run()
        delays = [at for at, _ in b.received]
        assert all(5.0 <= d <= 7.5 for d in delays)
        assert len(set(delays)) > 1  # jitter actually varies

    def test_unknown_destination_raises(self):
        kernel, net, a, b = make_pair()
        with pytest.raises(KeyError):
            a.send("nope", Ping())

    def test_duplicate_node_id_rejected(self):
        kernel, net, a, b = make_pair()
        with pytest.raises(ValueError, match="duplicate"):
            Recorder("a", "us-west", kernel, net)

    def test_unknown_datacenter_rejected(self):
        kernel, net, a, b = make_pair()
        with pytest.raises(ValueError, match="unknown"):
            Recorder("z", "atlantis", kernel, net)

    def test_message_stamped_with_src_dst(self):
        kernel, net, a, b = make_pair()
        a.send("b", Ping())
        kernel.run()
        _, msg = b.received[0]
        assert msg.src == "a"
        assert msg.dst == "b"
        assert msg.sent_at == 0.0


class TestCrashAndPartition:
    def test_crashed_destination_drops_message(self):
        kernel, net, a, b = make_pair()
        b.crash()
        a.send("b", Ping())
        kernel.run()
        assert b.received == []
        assert net.messages_dropped == 1

    def test_crashed_sender_drops_message(self):
        kernel, net, a, b = make_pair()
        a.crash()
        a.send("b", Ping())
        kernel.run()
        assert b.received == []

    def test_recovered_node_receives_again(self):
        kernel, net, a, b = make_pair()
        b.crash()
        b.recover()
        a.send("b", Ping())
        kernel.run()
        assert len(b.received) == 1

    def test_crash_mid_flight_drops_message(self):
        kernel, net, a, b = make_pair()
        a.send("b", Ping())
        kernel.schedule(1.0, b.crash)  # before 36.5 ms delivery
        kernel.run()
        assert b.received == []

    def test_partition_blocks_both_directions(self):
        kernel, net, a, b = make_pair()
        net.partition("a", "b")
        a.send("b", Ping())
        b.send("a", Ping())
        kernel.run()
        assert a.received == [] and b.received == []

    def test_heal_restores_delivery(self):
        kernel, net, a, b = make_pair()
        net.partition("a", "b")
        net.heal("a", "b")
        a.send("b", Ping())
        kernel.run()
        assert len(b.received) == 1

    def test_timer_suppressed_while_crashed(self):
        kernel, net, a, b = make_pair()
        fired = []
        a.set_timer(5.0, fired.append, "x")
        a.crash()
        kernel.run()
        assert fired == []


class TestCpuQueueModel:
    def test_zero_service_time_processes_on_delivery(self):
        kernel, net, a, b = make_pair()
        a.send("b", Ping())
        kernel.run()
        assert b.messages_handled == 1

    def test_messages_queue_fifo_with_service_time(self):
        kernel, net, a, b = make_pair(service_time_ms=10.0)
        for _ in range(3):
            a.send("b", Ping())
        kernel.run()
        times = [at for at, _ in b.received]
        # All arrive ~36.5 ms; service: first done ~46.5, then +10 each.
        assert times[1] - times[0] == pytest.approx(10.0)
        assert times[2] - times[1] == pytest.approx(10.0)

    def test_queue_delay_reflects_backlog(self):
        kernel, net, a, b = make_pair(service_time_ms=10.0)
        for _ in range(5):
            a.send("b", Ping())
        kernel.run(until=37.0)
        assert b.queue_delay_ms > 0


class TestBandwidthAccounting:
    def test_no_accounting_before_start(self):
        kernel, net, a, b = make_pair()
        a.send("b", Ping())
        kernel.run()
        assert net.account("a").bytes_sent == 0

    def test_accounting_window(self):
        kernel, net, a, b = make_pair()
        net.start_accounting()
        a.send("b", Ping())
        kernel.run()
        net.stop_accounting()
        size = Ping().size_bytes()
        assert net.account("a").bytes_sent == size
        assert net.account("b").bytes_received == size
        assert net.account("a").messages_sent == 1

    def test_bandwidth_mbps(self):
        kernel, net, a, b = make_pair()
        net.start_accounting()
        a.send("b", BigPayload(data=b"x" * 125_000))  # 1 Mbit payload
        kernel.run(until=1000.0)
        net.stop_accounting()
        send_mbps, _ = net.bandwidth_mbps("a")
        assert send_mbps == pytest.approx(1.0, rel=0.01)

    def test_zero_window_rates_are_zero(self):
        kernel, net, a, b = make_pair()
        assert net.bandwidth_mbps("a") == (0.0, 0.0)
