"""The Retwis workload: transactions of a Twitter-like application.

The transaction mix is Table 2 of the paper (reproduced from TAPIR):

====================  ======  ======  ==========
Transaction type      # gets  # puts  workload %
====================  ======  ======  ==========
Add User              1       3       5%
Follow/Unfollow       2       2       15%
Post Tweet            3       5       30%
Load Timeline         rand(1,10)  0   50%
====================  ======  ======  ==========

Transactions average about 4.5 keys.  Read-modify-write keys increment a
counter embedded in the stored value; blind-write keys receive a fresh
payload.  Values are padded to ``value_size`` bytes so that the bandwidth
experiment (Figure 7) sees realistic message sizes.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.txn import TransactionSpec
from repro.workloads.zipf import ZipfianGenerator

#: (txn_type, cumulative probability) — Table 2's distribution.
RETWIS_MIX: Tuple[Tuple[str, float], ...] = (
    ("add_user", 0.05),
    ("follow_unfollow", 0.20),
    ("post_tweet", 0.50),
    ("load_timeline", 1.00),
)


def bump_counter(value, pad: int) -> str:
    """Read-modify-write: parse the stored counter and increment it."""
    try:
        counter = int(value) if value is not None else 0
    except (TypeError, ValueError):
        counter = 0
    return str(counter + 1).zfill(pad)


class RetwisWorkload:
    """Generates Retwis :class:`~repro.txn.TransactionSpec` instances."""

    name = "retwis"

    def __init__(self, n_keys: int = 1_000_000, theta: float = 0.75,
                 value_size: int = 64, seed: int = 0):
        self.n_keys = n_keys
        self.value_size = value_size
        self.rng = random.Random(seed)
        self.zipf = ZipfianGenerator(n_keys, theta, rng=self.rng)

    # ------------------------------------------------------------------
    def _pick_type(self) -> str:
        u = self.rng.random()
        for txn_type, cumulative in RETWIS_MIX:
            if u <= cumulative:
                return txn_type
        return RETWIS_MIX[-1][0]  # pragma: no cover - float edge

    def _rmw_spec(self, txn_type: str, n_rmw: int,
                  n_blind: int) -> TransactionSpec:
        """A transaction with ``n_rmw`` read-modify-write keys plus
        ``n_blind`` blind-write keys."""
        keys = self.zipf.distinct_keys(n_rmw + n_blind)
        rmw_keys = tuple(keys[:n_rmw])
        blind_keys = tuple(keys[n_rmw:])
        pad = self.value_size

        def compute(reads: Dict[str, object]) -> Optional[Dict[str, object]]:
            writes = {k: bump_counter(reads.get(k), pad) for k in rmw_keys}
            for k in blind_keys:
                writes[k] = "1".zfill(pad)
            return writes

        return TransactionSpec(
            read_keys=rmw_keys, write_keys=rmw_keys + blind_keys,
            compute_writes=compute, txn_type=txn_type)

    def next_spec(self) -> TransactionSpec:
        """Draw the next transaction per the Table 2 mix."""
        txn_type = self._pick_type()
        if txn_type == "add_user":
            # 1 get, 3 puts: the read key is rewritten plus two fresh keys.
            return self._rmw_spec("add_user", n_rmw=1, n_blind=2)
        if txn_type == "follow_unfollow":
            # 2 gets, 2 puts over the same two keys.
            return self._rmw_spec("follow_unfollow", n_rmw=2, n_blind=0)
        if txn_type == "post_tweet":
            # 3 gets, 5 puts: three read-modify-writes plus two blind puts.
            return self._rmw_spec("post_tweet", n_rmw=3, n_blind=2)
        # Load Timeline: rand(1, 10) gets, read-only.
        count = self.rng.randint(1, 10)
        keys = tuple(self.zipf.distinct_keys(count))
        return TransactionSpec(read_keys=keys, write_keys=(),
                               txn_type="load_timeline")
