"""Optimistic concurrency control: the pending-transaction list.

Every participant (leader **and** follower, for CPC) maintains a list of
pending transactions — prepared but not yet committed or aborted — together
with their read/write key sets, the data versions used to prepare them, and
the Raft term in which they were prepared (§4.1.4, §4.2).  A new transaction
prepares only if it has no read-write or write-write conflict with any
pending transaction.

The snapshot form of the list is what rides on Raft vote messages during
CPC leader recovery (§4.3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.txn import TID

PREPARED = "prepared"
ABORT = "abort"


@dataclass(frozen=True)
class PendingTxn:
    """One entry in a pending-transaction list."""

    tid: TID
    read_keys: FrozenSet[str]
    write_keys: FrozenSet[str]
    #: Versions of the partition's read keys used to prepare (§4.2).
    read_versions: Tuple[Tuple[str, int], ...]
    #: Raft term in which this participant prepared the transaction.
    term: int
    #: Id of the transaction's coordinator (needed to re-send prepare
    #: results after a leader change).
    coordinator_id: str
    #: True while only a fast-path vote backs this entry (no replicated
    #: PrepareRecord applied yet).
    provisional: bool = False

    def versions_dict(self) -> Dict[str, int]:
        """The read versions as a plain mapping."""
        return dict(self.read_versions)


def freeze_versions(versions: Dict[str, int]) -> Tuple[Tuple[str, int], ...]:
    """Canonical, hashable form of a read-version map."""
    return tuple(sorted(versions.items()))


class PendingList:
    """The pending-transaction list of one participant for one partition.

    Conflict checks are indexed by key (``key -> tids reading/writing it``)
    so that the simulator's own cost per check is O(transaction keys), not
    O(pending transactions); the *modeled* CPU cost of validation remains
    proportional to the list length (see the servers' ``service_time_for``).
    """

    def __init__(self) -> None:
        self._txns: Dict[TID, PendingTxn] = {}
        self._readers: Dict[str, set] = {}
        self._writers: Dict[str, set] = {}

    def __len__(self) -> int:
        return len(self._txns)

    def __contains__(self, tid: TID) -> bool:
        return tid in self._txns

    def get(self, tid: TID) -> Optional[PendingTxn]:
        """The entry for ``tid``, or None."""
        return self._txns.get(tid)

    def add(self, entry: PendingTxn) -> None:
        """Insert or replace an entry, maintaining the key indexes."""
        if entry.tid in self._txns:
            self._unindex(self._txns[entry.tid])
        self._txns[entry.tid] = entry
        for key in entry.read_keys:
            self._readers.setdefault(key, set()).add(entry.tid)
        for key in entry.write_keys:
            self._writers.setdefault(key, set()).add(entry.tid)

    def remove(self, tid: TID) -> None:
        """Drop an entry (idempotent)."""
        entry = self._txns.pop(tid, None)
        if entry is not None:
            self._unindex(entry)

    def _unindex(self, entry: PendingTxn) -> None:
        for key in entry.read_keys:
            readers = self._readers.get(key)
            if readers is not None:
                readers.discard(entry.tid)
                if not readers:
                    del self._readers[key]
        for key in entry.write_keys:
            writers = self._writers.get(key)
            if writers is not None:
                writers.discard(entry.tid)
                if not writers:
                    del self._writers[key]

    def confirm(self, tid: TID) -> None:
        """Clear the provisional flag once the prepare is replicated."""
        entry = self._txns.get(tid)
        if entry is not None and entry.provisional:
            self._txns[tid] = replace(entry, provisional=False)

    def entries(self) -> List[PendingTxn]:
        """All pending entries, in insertion order."""
        return list(self._txns.values())

    # ------------------------------------------------------------------
    # Conflict checks
    # ------------------------------------------------------------------
    def conflicts(self, tid: TID, read_keys: Iterable[str],
                  write_keys: Iterable[str]) -> bool:
        """Read-write / write-write conflict check against pending
        transactions (§4.1.4).

        The transaction's own earlier entry (a retransmission) never
        conflicts with itself.
        """
        for key in write_keys:
            for other in self._writers.get(key, ()):
                if other != tid:
                    return True
            for other in self._readers.get(key, ()):
                if other != tid:
                    return True
        for key in read_keys:
            for other in self._writers.get(key, ()):
                if other != tid:
                    return True
        return False

    def blocks_read_only(self, keys: Iterable[str]) -> bool:
        """Whether a read-only transaction over ``keys`` hits a pending
        writer (§4.4.2's OCC validation)."""
        return any(self._writers.get(key) for key in keys)

    # ------------------------------------------------------------------
    # Snapshots (for vote piggybacking)
    # ------------------------------------------------------------------
    def snapshot(self) -> Tuple[PendingTxn, ...]:
        """An immutable copy of the list, ordered by TID for determinism."""
        return tuple(sorted(self._txns.values(), key=lambda e: e.tid))
