"""The YCSB+T workload.

YCSB+T wraps YCSB's key-value operations in transactions.  Following the
paper's configuration (§6.2), every transaction performs 4 read-modify-write
operations on distinct keys drawn from the Zipfian distribution.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.txn import TransactionSpec
from repro.workloads.retwis import bump_counter
from repro.workloads.zipf import ZipfianGenerator


class YcsbTWorkload:
    """Generates YCSB+T :class:`~repro.txn.TransactionSpec` instances."""

    name = "ycsbt"

    def __init__(self, n_keys: int = 1_000_000, theta: float = 0.75,
                 ops_per_txn: int = 4, value_size: int = 64, seed: int = 0):
        if ops_per_txn < 1:
            raise ValueError("ops_per_txn must be positive")
        self.n_keys = n_keys
        self.ops_per_txn = ops_per_txn
        self.value_size = value_size
        self.rng = random.Random(seed)
        self.zipf = ZipfianGenerator(n_keys, theta, rng=self.rng)

    def next_spec(self) -> TransactionSpec:
        """Draw the next 4-op read-modify-write transaction."""
        keys = tuple(self.zipf.distinct_keys(self.ops_per_txn))
        pad = self.value_size

        def compute(reads: Dict[str, object]) -> Optional[Dict[str, object]]:
            return {k: bump_counter(reads.get(k), pad) for k in keys}

        return TransactionSpec(read_keys=keys, write_keys=keys,
                               compute_writes=compute, txn_type="ycsbt_rmw")
