"""Reconnaissance transactions: dependent reads under the 2FI model.

2FI transactions cannot perform dependent reads — a read whose key depends
on a previous read's value (§3.2).  The paper's workaround (after Thomson
and Abadi) is a **reconnaissance transaction**: first run a read-only 2FI
transaction to resolve the dependency (e.g. look up a customer id in a
secondary index keyed by name), then run the real transaction with the
resolved keys, *revalidating* inside it that the reconnaissance results
still hold; if they don't, abort and retry both.

:class:`ReconnaissanceRunner` packages that pattern over any client with a
``submit(spec, on_complete)`` interface (Carousel or TAPIR).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.txn import (
    REASON_CLIENT_ABORT,
    TransactionSpec,
    TxnResult,
)

#: Resolves the reconnaissance reads into the main transaction's key sets:
#: ``recon_reads -> (read_keys, write_keys)`` or None to give up.
KeyResolver = Callable[[Dict[str, Any]],
                       Optional[Tuple[Tuple[str, ...], Tuple[str, ...]]]]

#: The main transaction's write function; receives the reconnaissance
#: reads and the main reads: ``(recon_reads, reads) -> writes | None``.
DependentWriteFunction = Callable[[Dict[str, Any], Dict[str, Any]],
                                  Optional[Dict[str, Any]]]


@dataclass
class ReconnaissanceOutcome:
    """Final outcome of a reconnaissance-transaction pair."""

    committed: bool
    attempts: int
    recon_reads: Dict[str, Any]
    result: Optional[TxnResult]
    reason: str = ""


class ReconnaissanceRunner:
    """Runs dependent-read transactions as a recon + revalidating pair.

    Parameters
    ----------
    client:
        Any transactional client exposing ``submit``.
    kernel:
        The simulation kernel (for retry backoff timers).
    max_attempts:
        How many times to retry the pair when revalidation fails before
        reporting an abort.
    retry_backoff_ms:
        Delay before retrying after a failed revalidation.
    """

    def __init__(self, client, kernel, max_attempts: int = 3,
                 retry_backoff_ms: float = 50.0):
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.client = client
        self.kernel = kernel
        self.max_attempts = max_attempts
        self.retry_backoff_ms = retry_backoff_ms
        self.revalidation_failures = 0

    def run(self, recon_keys: Tuple[str, ...],
            resolve_keys: KeyResolver,
            compute_writes: DependentWriteFunction,
            on_complete: Callable[[ReconnaissanceOutcome], None],
            txn_type: str = "recon_pair") -> None:
        """Run the reconnaissance pair, retrying on revalidation failure.

        The main transaction automatically re-reads ``recon_keys`` (they
        are added to its read set) and aborts if any of their values
        changed since the reconnaissance transaction read them — the
        paper's "check that the customer's name matches" step.
        """
        self._attempt(1, recon_keys, resolve_keys, compute_writes,
                      on_complete, txn_type)

    # ------------------------------------------------------------------
    def _attempt(self, attempt: int, recon_keys, resolve_keys,
                 compute_writes, on_complete, txn_type) -> None:
        recon_spec = TransactionSpec(
            read_keys=recon_keys, write_keys=(),
            txn_type=f"{txn_type}:recon")

        def recon_done(recon_result: TxnResult):
            if not recon_result.committed:
                self._retry_or_fail(attempt, recon_keys, resolve_keys,
                                    compute_writes, on_complete, txn_type,
                                    recon_result,
                                    reason=recon_result.reason)
                return
            recon_reads = dict(recon_result.reads)
            resolved = resolve_keys(recon_reads)
            if resolved is None:
                on_complete(ReconnaissanceOutcome(
                    committed=False, attempts=attempt,
                    recon_reads=recon_reads, result=recon_result,
                    reason=REASON_CLIENT_ABORT))
                return
            read_keys, write_keys = resolved
            self._run_main(attempt, recon_keys, recon_reads, read_keys,
                           write_keys, resolve_keys, compute_writes,
                           on_complete, txn_type)

        self.client.submit(recon_spec, recon_done)

    def _run_main(self, attempt, recon_keys, recon_reads, read_keys,
                  write_keys, resolve_keys, compute_writes, on_complete,
                  txn_type) -> None:
        # Re-read the reconnaissance keys inside the main transaction so
        # the dependency can be revalidated under OCC.
        all_reads = tuple(dict.fromkeys(tuple(recon_keys) + read_keys))

        def main_writes(reads: Dict[str, Any]) -> Optional[Dict[str, Any]]:
            for key in recon_keys:
                if reads.get(key) != recon_reads.get(key):
                    self.revalidation_failures += 1
                    return None  # stale reconnaissance: abort and retry
            return compute_writes(recon_reads,
                                  {k: reads[k] for k in read_keys})

        main_spec = TransactionSpec(
            read_keys=all_reads, write_keys=write_keys,
            compute_writes=main_writes, txn_type=f"{txn_type}:main")

        def main_done(result: TxnResult):
            if result.committed:
                on_complete(ReconnaissanceOutcome(
                    committed=True, attempts=attempt,
                    recon_reads=recon_reads, result=result,
                    reason=result.reason))
            else:
                self._retry_or_fail(attempt, recon_keys, resolve_keys,
                                    compute_writes, on_complete, txn_type,
                                    result, reason=result.reason)

        self.client.submit(main_spec, main_done)

    def _retry_or_fail(self, attempt, recon_keys, resolve_keys,
                       compute_writes, on_complete, txn_type, result,
                       reason) -> None:
        if attempt >= self.max_attempts:
            on_complete(ReconnaissanceOutcome(
                committed=False, attempts=attempt, recon_reads={},
                result=result, reason=reason))
            return
        self.kernel.schedule(
            self.retry_backoff_ms, self._attempt, attempt + 1, recon_keys,
            resolve_keys, compute_writes, on_complete, txn_type)
