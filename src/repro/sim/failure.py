"""Failure injection: fail-stop crashes, recoveries, and partitions.

The paper assumes the fail-stop model in an asynchronous network (§3.1) and
requires uninterrupted operation with up to ``f`` simultaneous replica
failures per partition (§4.3).  The injector schedules crashes, recoveries
and network partitions at chosen virtual times so that the recovery tests
and the failure-ablation benchmark can exercise those paths deterministically.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.sim.kernel import Kernel
from repro.sim.network import Network


class FailureInjector:
    """Schedules fail-stop events against a network's nodes."""

    def __init__(self, kernel: Kernel, network: Network):
        self.kernel = kernel
        self.network = network
        #: Log of ``(time_ms, action, subject)`` tuples, for assertions.
        self.log: List[Tuple[float, str, str]] = []

    def crash_at(self, node_id: str, at_ms: float) -> None:
        """Crash ``node_id`` at virtual time ``at_ms`` (fail-stop)."""
        def do_crash():
            self.network.node(node_id).crash()
            self.log.append((self.kernel.now, "crash", node_id))

        self.kernel.schedule_at(at_ms, do_crash)

    def recover_at(self, node_id: str, at_ms: float) -> None:
        """Recover a previously crashed node at ``at_ms``."""
        def do_recover():
            self.network.node(node_id).recover()
            self.log.append((self.kernel.now, "recover", node_id))

        self.kernel.schedule_at(at_ms, do_recover)

    def crash_now(self, node_id: str) -> None:
        """Crash ``node_id`` immediately."""
        self.network.node(node_id).crash()
        self.log.append((self.kernel.now, "crash", node_id))

    def partition_at(self, group_a: List[str], group_b: List[str],
                     at_ms: float) -> None:
        """Partition every pair across the two groups at ``at_ms``."""
        def do_partition():
            for a in group_a:
                for b in group_b:
                    self.network.partition(a, b)
            self.log.append((self.kernel.now, "partition",
                             f"{group_a}|{group_b}"))

        self.kernel.schedule_at(at_ms, do_partition)

    def heal_at(self, group_a: List[str], group_b: List[str],
                at_ms: float) -> None:
        """Heal a previously injected partition at ``at_ms``."""
        def do_heal():
            for a in group_a:
                for b in group_b:
                    self.network.heal(a, b)
            self.log.append((self.kernel.now, "heal",
                             f"{group_a}|{group_b}"))

        self.kernel.schedule_at(at_ms, do_heal)
