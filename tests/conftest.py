"""Shared pytest configuration: opt-in gates for the marked tests.

Tier-1 (``pytest -x -q``) must stay fast and fully deterministic, so
tests that bind sockets for real-time differential runs (``cluster``)
or simply take long (``slow``) are skipped unless explicitly enabled:

    pytest --run-cluster          # localhost TCP conformance runs
    pytest --run-slow             # long-running tests
    pytest --run-cluster --run-slow   # everything

The markers themselves are declared in ``pyproject.toml``.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--run-slow", action="store_true", default=False,
        help="run tests marked slow (long-running)")
    parser.addoption(
        "--run-cluster", action="store_true", default=False,
        help="run tests marked cluster (localhost TCP / OS processes)")


def pytest_collection_modifyitems(config, items):
    gates = [
        ("slow", "--run-slow"),
        ("cluster", "--run-cluster"),
    ]
    for marker, flag in gates:
        if config.getoption(flag):
            continue
        skip = pytest.mark.skip(reason=f"{marker} test: pass {flag}")
        for item in items:
            if marker in item.keywords:
                item.add_marker(skip)
