"""Raft consensus, extended for Carousel.

Carousel extends Raft (§3.3, §4.3) to manage each partition's consensus
group.  Two extensions from the paper are implemented here rather than in
the Carousel layer because they change Raft's own messages and election:

* Vote messages piggyback the voter's **pending-transaction list**
  (§4.3.3 step 1), which a newly elected leader needs to decide which
  transactions may have been prepared through CPC's fast path.
* A **leadership-change hook** lets the host (a Carousel data server) run
  the five-step CPC failure-handling protocol before serving requests.

The implementation is a faithful single-decree-log Raft: leader election
with randomized timeouts, log replication with consistency checks and
conflict rollback, and commitment restricted to entries from the leader's
own term.
"""

from repro.raft.log import LogEntry, RaftLog
from repro.raft.messages import (
    AppendEntries,
    AppendEntriesReply,
    RequestVote,
    RequestVoteReply,
)
from repro.raft.node import (
    FOLLOWER,
    CANDIDATE,
    LEADER,
    RaftConfig,
    RaftHost,
    RaftMember,
)

__all__ = [
    "LogEntry",
    "RaftLog",
    "RequestVote",
    "RequestVoteReply",
    "AppendEntries",
    "AppendEntriesReply",
    "RaftConfig",
    "RaftMember",
    "RaftHost",
    "FOLLOWER",
    "CANDIDATE",
    "LEADER",
]
