"""Figure 4: latency CDF for the Retwis workload (EC2 topology, 200 tps).

Paper result (§6.3): median latencies TAPIR 334 ms, Carousel Basic 290 ms,
Carousel Fast 232 ms; both Carousel variants are below TAPIR across the
whole distribution and the gap widens at higher percentiles.  TAPIR's
median is ~44% above Carousel Fast's.
"""

from repro.bench.report import render_cdf, render_latency_table
from repro.bench.runner import SYSTEM_LABELS

PAPER_MEDIANS_MS = {"tapir": 334.0, "carousel-basic": 290.0,
                    "carousel-fast": 232.0}


def _recorders(results):
    return {SYSTEM_LABELS[s]: r.stats.latency for s, r in results.items()}


def test_fig4_latency_cdf(fig4_results, benchmark):
    medians = benchmark.pedantic(
        lambda: {s: r.stats.latency.median()
                 for s, r in fig4_results.items()},
        rounds=1, iterations=1)

    print("\nFigure 4: Retwis latency (EC2 topology, 200 tps)")
    print(render_latency_table(_recorders(fig4_results)))
    print("\nCDF series:")
    print(render_cdf(_recorders(fig4_results)))
    print("\npaper medians:", {SYSTEM_LABELS[s]: v
                               for s, v in PAPER_MEDIANS_MS.items()})

    # Ordering: Carousel Fast < Carousel Basic < TAPIR at the median.
    assert medians["carousel-fast"] < medians["carousel-basic"] \
        < medians["tapir"]

    # Rough agreement with the paper's absolute medians (the simulator
    # shares the paper's RTT matrix, so these land close).
    for system, paper in PAPER_MEDIANS_MS.items():
        assert abs(medians[system] - paper) / paper < 0.25, \
            (system, medians[system], paper)

    # TAPIR's median is roughly 44% above Carousel Fast's (paper: 1.44x).
    ratio = medians["tapir"] / medians["carousel-fast"]
    assert 1.2 <= ratio <= 1.7, ratio


def test_fig4_gap_widens_at_higher_percentiles(fig4_results, benchmark):
    def gaps():
        tapir = fig4_results["tapir"].stats.latency
        fast = fig4_results["carousel-fast"].stats.latency
        return {p: tapir.p(p) - fast.p(p) for p in (50, 95)}

    gap = benchmark.pedantic(gaps, rounds=1, iterations=1)
    # "The performance gap widens at higher percentiles" (§6.3).
    assert gap[95] > gap[50] > 0


def test_fig4_read_only_optimization_visible(fig4_results, benchmark):
    def timeline_median():
        stats = fig4_results["carousel-basic"].stats
        return (stats.by_type["load_timeline"].median(),
                stats.by_type["post_tweet"].median())

    ro_median, rw_median = benchmark.pedantic(timeline_median, rounds=1,
                                              iterations=1)
    # Read-only transactions complete in one WANRT (§4.4.2): visibly
    # cheaper than read-write transactions.
    assert ro_median < rw_median
