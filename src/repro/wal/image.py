"""Host-side export of a WAL image for offline inspection.

This is an operator/debugging artifact, not part of the simulation: the
exported document carries a wall-clock ``exported_at`` stamp that is
never read back into the DES (which is why ``wal/`` sits on the detlint
wall-clock allowlist alongside ``perf/`` and ``sweep/``).  Records are
serialized as ``(type, repr)`` rows — enough to diff two images or eyeball
what survived a crash, without inventing a parallel codec for every
record type.
"""

from __future__ import annotations

import json
import time
from typing import Optional

from repro.wal.log import WriteAheadLog


def image_document(wal: WriteAheadLog) -> dict:
    """A JSON-serializable snapshot of the durable image."""
    return {
        "owner": wal.owner_id,
        "exported_at": time.time(),
        "sync_latency_ms": wal.sync_latency_ms,
        "torn_tail": wal.torn_tail,
        "counters": {
            "appends": wal.appends,
            "syncs": wal.syncs,
            "crashes": wal.crashes,
            "records_lost": wal.records_lost,
        },
        "records": [
            {"type": type(record).__name__, "value": repr(record)}
            for record in wal.replay()
        ],
    }


def write_image(wal: WriteAheadLog, path: str, indent: Optional[int] = 2) -> str:
    """Write the image document to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(image_document(wal), fh, indent=indent, sort_keys=True)
        fh.write("\n")
    return path
