"""Schedule minimization: shrink a failing nemesis timeline.

Given a schedule whose run violates an oracle, find a small *subsequence*
that still fails.  Events keep their original absolute times — a
subsequence is the same timeline with some faults simply not injected —
so each candidate replays deterministically through
:func:`repro.chaos.runner.run_chaos`.  This holds for power-cycle
(``restart``) events too: the crash and its WAL-image restart stay
pinned to their absolute times, and dropping the event drops the pair.

The strategy mirrors :mod:`repro.analysis.divergence`'s bisection: try
each event alone (most planted bugs need exactly one fault window), then
bisect halves, then greedily drop one event at a time until the result
is 1-minimal (removing any single remaining event makes the failure
disappear).

Every layer asks one question of a *batch* of candidates: "which is the
first (lowest-index) candidate that still fails?".  That question is the
``first_failing`` hook.  The default answer scans lazily with
``still_fails`` — exactly the historical sequential behaviour, stopping
at the first failure.  A parallel caller (``repro chaos --jobs N``)
instead evaluates the whole batch concurrently through
:meth:`repro.sweep.executor.SweepExecutor.first_failing` and returns the
smallest failing index — the same selection, so the minimized schedule
is identical regardless of worker count; only wall-clock changes.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, TypeVar

Event = TypeVar("Event")

#: Answers "which is the first failing candidate?" for a batch of
#: candidate schedules; ``None`` means none of them fail.
FirstFailing = Callable[[List[List[Event]]], Optional[int]]


def _lazy_first_failing(still_fails: Callable[[List[Event]], bool]
                        ) -> FirstFailing:
    def first_failing(candidates: List[List[Event]]) -> Optional[int]:
        for i, candidate in enumerate(candidates):
            if still_fails(candidate):
                return i
        return None

    return first_failing


def minimize_schedule(events: Sequence[Event],
                      still_fails: Callable[[List[Event]], bool],
                      *,
                      first_failing: Optional[FirstFailing] = None
                      ) -> List[Event]:
    """Shrink ``events`` to a 1-minimal failing subsequence.

    ``still_fails(candidate)`` re-runs the scenario with only the
    candidate events injected and reports whether an oracle still
    trips.  The caller must already know the full schedule fails; an
    empty input returns empty.

    ``first_failing`` optionally overrides how candidate batches are
    evaluated (see the module docstring); it must return the smallest
    index of a failing candidate, which keeps the result independent of
    evaluation order.
    """
    if first_failing is None:
        first_failing = _lazy_first_failing(still_fails)
    current = list(events)
    if len(current) <= 1:
        return current
    # Fast path: one event alone often reproduces the failure.
    winner = first_failing([[event] for event in current])
    if winner is not None:
        return [current[winner]]
    # Bisection: keep whichever half still fails, while one does.
    while len(current) > 2:
        half = len(current) // 2
        winner = first_failing([current[:half], current[half:]])
        if winner is None:
            break
        current = current[:half] if winner == 0 else current[half:]
    # Greedy pass: drop single events until 1-minimal.
    changed = True
    while changed and len(current) > 1:
        changed = False
        candidates = [current[:i] + current[i + 1:]
                      for i in range(len(current))]
        winner = first_failing(candidates)
        if winner is not None:
            current = candidates[winner]
            changed = True
    return current
