"""Calendar-queue event scheduler (Brown 1988), a drop-in alternative to
the kernel's binary heap.

A calendar queue hashes events into "days" (buckets) by time —
``day = int(time / width)``, bucket ``day % n_buckets`` — and dequeues by
scanning forward from the current day.  With the bucket width adapted so
each bucket holds O(1) events, both enqueue and dequeue are amortized
O(1), versus the heap's O(log n); and, unlike a heap, a cancelled event
can be *physically removed* from its (small, sorted) bucket immediately,
so cancellation-heavy workloads — protocol timeouts that almost always
get cancelled — never pay dequeue or compaction cost for dead events.

Buckets store ``(time, seq, event)`` triples rather than bare events:
``(time, seq)`` is the kernel's strict total order and is unique, so
every ``insort``/``bisect`` comparison resolves on the first two fields
as a C-level tuple compare and never calls the Python ``Event.__lt__``
the heap pays on every sift level.  The scan pops the globally minimal
event, so the pop sequence is byte-identical to the heap's (see
``tests/property/test_scheduler_equivalence.py``).

Correctness of the forward scan relies on ``day`` being monotone in
``time`` (IEEE division and truncation are monotone) and on the kernel
never scheduling into the virtual past: every live event's day is >= the
day of the last popped event, so the first bucket head whose day matches
the scan position is the global minimum.  When every event is more than
one full calendar year ahead, a direct O(n_buckets) search finds the
minimum instead.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import List, Optional

#: Smallest bucket count; shrinks stop here.
_MIN_BUCKETS = 16
#: Bucket width as a multiple of the mean inter-event gap (Brown's rule
#: of thumb keeps a handful of events per bucket).
_WIDTH_FACTOR = 3.0


class CalendarQueue:
    """Priority queue of :class:`~repro.sim.kernel.Event` objects.

    Implements the kernel's scheduler interface: :meth:`push`,
    :meth:`pop_until`, :meth:`discard`, :meth:`pending`, plus the
    ``compactions`` observability attribute (always 0 here — cancelled
    events are removed eagerly, never compacted).
    """

    __slots__ = ("_buckets", "_mask", "_width", "_count", "_day",
                 "compactions", "resizes")

    def __init__(self, width: float = 1.0,
                 n_buckets: int = _MIN_BUCKETS) -> None:
        if n_buckets & (n_buckets - 1):
            raise ValueError("n_buckets must be a power of two")
        if width <= 0:
            raise ValueError("width must be positive")
        self._buckets: List[list] = [[] for _ in range(n_buckets)]
        self._mask = n_buckets - 1
        self._width = width
        self._count = 0
        #: Day index where the next dequeue scan starts (the day of the
        #: last popped event; no live event can be earlier).
        self._day = 0
        self.compactions = 0
        self.resizes = 0

    # ------------------------------------------------------------------
    def push(self, event) -> None:
        """Insert ``event``, keeping its bucket sorted by (time, seq)."""
        time = event.time
        day = int(time / self._width)
        insort(self._buckets[day & self._mask], (time, event.seq, event))
        if day < self._day:
            # Keep the invariant `_day <= day(min live event)`: a push may
            # land before the scan pointer when no pop has consumed the
            # virtual time in between (e.g. right after a resize).
            self._day = day
        self._count += 1
        if self._count > (self._mask + 1) << 1:
            self._resize((self._mask + 1) << 1)

    def discard(self, event) -> None:
        """Remove a cancelled event from its bucket immediately.

        O(log b + b) for bucket size b: a bisect (seq numbers are unique,
        so ``(time, seq)`` pinpoints the exact slot — and sorts before
        the full triple, so ``bisect_left`` lands exactly on it) plus
        the list shift.
        """
        time = event.time
        bucket = self._buckets[int(time / self._width) & self._mask]
        i = bisect_left(bucket, (time, event.seq))
        if i < len(bucket) and bucket[i][2] is event:
            del bucket[i]
            self._count -= 1

    def pop_until(self, limit: Optional[float]):
        """Remove and return the earliest event, or ``None`` when empty
        or when that event is scheduled after ``limit``."""
        if not self._count:
            return None
        buckets = self._buckets
        mask = self._mask
        width = self._width
        day = self._day
        for i in range(mask + 1):
            d = day + i
            bucket = buckets[d & mask]
            if bucket:
                head = bucket[0]
                if int(head[0] / width) == d:
                    if limit is not None and head[0] > limit:
                        return None
                    del bucket[0]
                    self._count -= 1
                    self._day = d
                    if self._count < (mask + 1) >> 2 and \
                            mask + 1 > _MIN_BUCKETS:
                        self._resize((mask + 1) >> 1)
                    return head[2]
        # Every event is at least a full year ahead of the scan pointer:
        # fall back to a direct search for the global minimum.
        best = None
        for bucket in buckets:
            if bucket and (best is None or bucket[0] < best):
                best = bucket[0]
        if limit is not None and best[0] > limit:
            return None
        bucket = buckets[int(best[0] / width) & mask]
        del bucket[0]
        self._count -= 1
        self._day = int(best[0] / width)
        return best[2]

    def pending(self) -> int:
        """Live events still queued (cancelled ones are already gone)."""
        return self._count

    # ------------------------------------------------------------------
    def _resize(self, n_new: int) -> None:
        """Rebuild with ``n_new`` buckets and a width re-fitted to the
        *head-local* mean inter-event gap.

        Brown's original samples events near the queue head; fitting to
        the overall span instead goes badly wrong for bimodal
        populations (imminent deliveries plus far-out protocol timeouts
        that will be cancelled anyway): the span-based width packs the
        entire active head into a handful of buckets.  The head-gap fit
        is clamped below so all live events span at most four wraps of
        the calendar, bounding the forward scan.
        """
        entries = []
        for bucket in self._buckets:
            entries.extend(bucket)
        if entries:
            times = sorted(entry[0] for entry in entries)
            span = times[-1] - times[0]
            if span > 0:
                m = min(len(times), 64)
                head_span = times[m - 1] - times[0]
                if head_span > 0:
                    width = _WIDTH_FACTOR * head_span / (m - 1)
                else:
                    width = _WIDTH_FACTOR * span / len(times)
                self._width = max(width, span / (n_new << 2))
        self._buckets = [[] for _ in range(n_new)]
        self._mask = n_new - 1
        width = self._width
        mask = self._mask
        buckets = self._buckets
        for entry in entries:
            insort(buckets[int(entry[0] / width) & mask], entry)
        # Re-anchor the scan pointer at the earliest live event (never
        # later than any event, so the forward-scan invariant holds).
        if entries:
            self._day = int(min(entry[0] for entry in entries) / width)
        self.resizes += 1
