"""Unit tests for the chaos harness building blocks: backoff policies,
nemesis schedule generation, link-fault determinism, schedule
minimization, and duplicate-delivery idempotence of the protocol
handlers the nemesis stresses."""

import random

import pytest

from repro.bench.cluster import (
    CarouselCluster,
    DeploymentSpec,
    LayeredCluster,
)
from repro.analysis.digest import DigestRecorder
from repro.chaos.cli import parse_seeds
from repro.chaos.minimize import minimize_schedule
from repro.chaos.nemesis import (
    KIND_CRASH,
    KIND_FLAP,
    KIND_LINK,
    KIND_PARTITION,
    NemesisEvent,
    apply_schedule,
    generate_schedule,
    schedule_horizon,
)
from repro.core.backoff import RetryPolicy
from repro.core.client import PHASE_COMMIT, _ClientTxn
from repro.core.config import FAST, CarouselConfig
from repro.core.messages import (
    CoordPrepareRequest,
    PartitionSets,
    Writeback,
)
from repro.layered.messages import LayeredWriteback
from repro.raft.messages import AppendEntries
from repro.sim.failure import FailureInjector
from repro.sim.kernel import Kernel
from repro.sim.network import LinkFaults, Network
from repro.sim.stats import link_fault_summary
from repro.sim.topology import uniform_topology
from repro.txn import TID, TransactionSpec

from tests.support import RaftCluster


def tiny_cluster(**kwargs):
    spec = DeploymentSpec(topology=uniform_topology(3, 2.0),
                          n_partitions=3, seed=2, jitter_fraction=0.0)
    cluster = CarouselCluster(spec, CarouselConfig(mode=FAST, **kwargs))
    cluster.run(200)
    return cluster


class TestRetryPolicy:
    def test_degenerate_policy_is_fixed_and_rng_free(self):
        policy = RetryPolicy(base_ms=500.0)
        # rng=None proves the degenerate policy never touches the RNG.
        assert [policy.delay_ms(n, None) for n in range(4)] == [500.0] * 4

    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(base_ms=100.0, multiplier=2.0, max_ms=600.0)
        delays = [policy.delay_ms(n, None) for n in range(5)]
        assert delays == [100.0, 200.0, 400.0, 600.0, 600.0]

    def test_huge_attempt_counts_do_not_overflow(self):
        policy = RetryPolicy(base_ms=1.0, multiplier=2.0, max_ms=64.0)
        assert policy.delay_ms(10_000, None) == 64.0

    def test_jitter_bounds_and_determinism(self):
        policy = RetryPolicy(base_ms=100.0, multiplier=2.0, max_ms=800.0,
                             jitter_fraction=0.25)
        delays = [policy.delay_ms(n, random.Random(7)) for n in range(6)]
        again = [policy.delay_ms(n, random.Random(7)) for n in range(6)]
        assert delays == again
        for n, delay in enumerate(delays):
            nominal = min(100.0 * 2.0 ** n, 800.0)
            assert nominal * 0.75 <= delay <= nominal * 1.25

    @pytest.mark.parametrize("kwargs", [
        dict(base_ms=0.0),
        dict(base_ms=100.0, multiplier=0.5),
        dict(base_ms=100.0, max_ms=50.0),
        dict(base_ms=100.0, jitter_fraction=1.0),
        dict(base_ms=100.0, jitter_fraction=-0.1),
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestNemesisSchedule:
    SERVERS = [f"s{i}" for i in range(5)]
    LINKS = [("s0", "s1"), ("s1", "s2"), ("s2", "s3")]

    def gen(self, seed=11, n_events=8):
        return generate_schedule(seed, self.SERVERS, self.LINKS,
                                 start_ms=1000.0, end_ms=11_000.0,
                                 n_events=n_events)

    def test_same_seed_is_identical(self):
        assert self.gen() == self.gen()

    def test_different_seeds_differ(self):
        assert self.gen(seed=11) != self.gen(seed=12)

    def test_events_are_valid_and_sorted(self):
        events = self.gen()
        assert len(events) == 8
        assert events == sorted(events,
                                key=lambda e: (e.at_ms, e.kind, e.targets))
        for event in events:
            assert 1000.0 <= event.at_ms <= 11_000.0
            assert event.kind in (KIND_CRASH, KIND_FLAP, KIND_PARTITION,
                                  KIND_LINK)
            if event.kind == KIND_LINK:
                assert event.faults is not None
                assert tuple(sorted(event.targets)) in \
                    {tuple(sorted(link)) for link in self.LINKS}
            else:
                assert event.targets[0] in self.SERVERS
            assert event.describe()

    def test_horizon_is_last_event_end(self):
        events = self.gen()
        assert schedule_horizon(events) == max(e.end_ms for e in events)

    def test_event_validation(self):
        with pytest.raises(ValueError):
            NemesisEvent(kind="meteor", at_ms=1.0, duration_ms=1.0,
                         targets=("s0",))
        with pytest.raises(ValueError):
            NemesisEvent(kind=KIND_LINK, at_ms=1.0, duration_ms=1.0,
                         targets=("s0", "s1"))  # link event without faults

    def test_apply_schedule_pairs_faults_with_recovery(self):
        cluster = RaftCluster(n=3, seed=5)
        cluster.start()
        cluster.run(100)
        injector = FailureInjector(cluster.kernel, cluster.network)
        events = [
            NemesisEvent(kind=KIND_CRASH, at_ms=200.0, duration_ms=100.0,
                         targets=("n1",)),
            NemesisEvent(kind=KIND_LINK, at_ms=250.0, duration_ms=100.0,
                         targets=("n0", "n2"),
                         faults=LinkFaults(drop_prob=1.0)),
            NemesisEvent(kind=KIND_PARTITION, at_ms=300.0,
                         duration_ms=50.0, targets=("n2",)),
        ]
        apply_schedule(injector, events, ["n0", "n1", "n2"])
        cluster.run(400)
        actions = [action for __, action, __subj in injector.log]
        assert actions.count("crash") == 1
        assert actions.count("recover") == 1
        assert actions.count("degrade-link") == 1
        assert actions.count("restore-link") == 1
        assert actions.count("partition") == 1
        assert actions.count("heal") == 1


class TestLinkFaultDeterminism:
    def run_faulty_raft(self, seed):
        """A Raft cluster whose n0<->n1 link drops/dups/delays traffic."""
        cluster = RaftCluster(n=3, seed=seed)
        cluster.kernel.digest = DigestRecorder()
        faults = LinkFaults(drop_prob=0.3, dup_prob=0.3, delay_prob=0.2,
                            delay_ms=15.0)
        cluster.network.set_link_faults("n0", "n1", faults)
        cluster.start()
        leader = None
        for __ in range(40):
            cluster.run(50)
            leader = cluster.leader()
            if leader is not None:
                break
        if leader is not None:
            for i in range(10):
                leader.propose(("cmd", i))
                cluster.run(30)
        cluster.run(500)
        return cluster

    def test_same_seed_same_fault_counters_and_digest(self):
        a = self.run_faulty_raft(seed=3)
        b = self.run_faulty_raft(seed=3)
        assert link_fault_summary(a.network) == link_fault_summary(b.network)
        assert a.network.messages_dropped == b.network.messages_dropped
        assert a.kernel.digest.records == b.kernel.digest.records
        # The adversary actually did something.
        rows = link_fault_summary(a.network)
        assert sum(row[4] + row[5] for row in rows) > 0

    def test_fault_free_runs_are_unperturbed(self):
        # A run with a zero-fault LinkFaults table entry must be
        # byte-identical to one with no faults at all: the fault RNG is
        # separate from the kernel RNG and zero-probability faults draw
        # deterministically without changing delivery.
        plain = RaftCluster(n=3, seed=9)
        plain.kernel.digest = DigestRecorder()
        plain.start()
        plain.run(2000)
        clean = RaftCluster(n=3, seed=9)
        clean.kernel.digest = DigestRecorder()
        clean.network.set_link_faults("n0", "n1", LinkFaults())
        clean.network.clear_all_link_faults()
        clean.start()
        clean.run(2000)
        assert plain.kernel.digest.records == clean.kernel.digest.records


class TestMinimize:
    @staticmethod
    def ev(i):
        return NemesisEvent(kind=KIND_CRASH, at_ms=float(i + 1),
                            duration_ms=1.0, targets=(f"s{i}",))

    def test_single_culprit_found_by_singles_pass(self):
        events = [self.ev(i) for i in range(6)]
        culprit = events[3]
        replays = []

        def still_fails(candidate):
            replays.append(len(candidate))
            return culprit in candidate

        minimal = minimize_schedule(events, still_fails)
        assert minimal == [culprit]

    def test_conjunction_of_two_events(self):
        events = [self.ev(i) for i in range(8)]
        pair = {events[1], events[6]}

        def still_fails(candidate):
            return pair <= set(candidate)

        minimal = minimize_schedule(events, still_fails)
        assert set(minimal) == pair

    def test_irreducible_schedule_returned_whole(self):
        events = [self.ev(i) for i in range(4)]

        def still_fails(candidate):
            return set(candidate) == set(events)

        assert minimize_schedule(events, still_fails) == events


class TestParseSeeds:
    def test_forms(self):
        assert parse_seeds("0..3") == [0, 1, 2, 3]
        assert parse_seeds("7") == [7]
        assert parse_seeds("1,4,7") == [1, 4, 7]
        assert parse_seeds("0..1,5") == [0, 1, 5]

    def test_rejects_empty_and_backward(self):
        with pytest.raises(ValueError):
            parse_seeds("")
        with pytest.raises(ValueError):
            parse_seeds("5..2")


class TestDuplicateDeliveryIdempotence:
    """The nemesis duplicates messages; every handler must tolerate it."""

    def test_duplicate_coordinator_registration(self):
        cluster = tiny_cluster()
        coordinator = cluster.leader_of("p0").coordinator
        member = cluster.leader_of("p0").members["p0"]
        tid = TID("client-injected", 1)
        msg = CoordPrepareRequest(
            tid=tid, client_id=cluster.clients[0].node_id, group_id="p0",
            participants={"p1": PartitionSets(read_keys=("k",),
                                              write_keys=("k",))})
        msg.src = cluster.clients[0].node_id
        coordinator.on_coord_prepare(msg)
        log_after_first = member.log.last_index
        state = coordinator.states[tid]
        coordinator.on_coord_prepare(msg)  # duplicate delivery
        assert coordinator.states[tid] is state
        assert member.log.last_index == log_after_first  # no re-proposal
        assert list(state.participants) == ["p1"]

    def test_duplicate_writeback_single_apply(self):
        cluster = tiny_cluster()
        component = cluster.leader_of("p1").partitions["p1"]
        member = component.member
        tid = TID("client-injected", 2)
        msg = Writeback(tid=tid, partition_id="p1", decision="commit",
                        writes={"k": "v"})
        msg.src = cluster.leader_of("p0").node_id
        component.on_writeback(msg)
        log_after_first = member.log.last_index
        component.on_writeback(msg)  # duplicate while replication runs
        assert member.log.last_index == log_after_first
        cluster.run(100)
        assert component.resolved[tid] == "commit"
        assert component.store.version("k") == 1

    def test_stale_term_inflight_marker_reproposes(self):
        # A proposal whose term died with a deposed leader must not
        # dedup retransmissions forever: Raft drops commit callbacks on
        # step-down, so the marker is dead weight (the chaos harness
        # found exactly this as a stranded-writeback liveness bug).
        cluster = tiny_cluster()
        component = cluster.leader_of("p1").partitions["p1"]
        member = component.member
        tid = TID("client-injected", 3)
        component._writeback_inflight[tid] = member.current_term - 1
        msg = Writeback(tid=tid, partition_id="p1", decision="commit",
                        writes={"k": "v"})
        msg.src = cluster.leader_of("p0").node_id
        log_before = member.log.last_index
        component.on_writeback(msg)
        assert member.log.last_index == log_before + 1  # re-proposed
        assert component._writeback_inflight[tid] == member.current_term

    def test_layered_stale_term_inflight_marker_reproposes(self):
        spec = DeploymentSpec(topology=uniform_topology(3, 2.0),
                              n_partitions=3, seed=2, jitter_fraction=0.0)
        cluster = LayeredCluster(spec)
        cluster.run(200)
        partition = cluster.leader_of("p1").partitions["p1"]
        member = partition.member
        tid = TID("client-injected", 4)
        partition._inflight[tid] = member.current_term - 1
        msg = LayeredWriteback(tid=tid, partition_id="p1",
                               decision="commit", writes={"k": "v"})
        msg.src = cluster.leader_of("p0").node_id
        log_before = member.log.last_index
        partition.on_writeback(msg)
        assert member.log.last_index == log_before + 1
        assert partition._inflight[tid] == member.current_term
        cluster.run(100)
        assert partition.resolved[tid] == "commit"

    def test_commit_phase_retry_reregisters_with_coordinator(self):
        # The chaos harness's stranded-commit counterexample: the sets
        # record never replicated before the coordinator group's leader
        # moved, so the successor has no state and a bare CommitRequest
        # (which carries no participant sets) is dropped forever.  The
        # retry must re-send the registration alongside the commit.
        cluster = tiny_cluster()
        client = cluster.clients[0]
        spec = TransactionSpec(read_keys=("k",), write_keys=("k",),
                               compute_writes=lambda reads: {"k": 1})
        tid = client.begin()
        txn = _ClientTxn(tid=tid, spec=spec, on_complete=None,
                         started_ms=0.0)
        client._active[tid] = txn
        client._build_participants(txn)
        client._choose_coordinator(txn)
        txn.phase = PHASE_COMMIT
        txn.writes = {"k": 1}
        sent = []
        client.send = lambda dst, msg: sent.append((dst, msg))
        client._retry(txn)
        kinds = [type(msg).__name__ for __, msg in sent]
        assert kinds == ["CoordPrepareRequest", "CommitRequest"]
        register = sent[0][1]
        assert dict(register.participants) == dict(txn.participants)
        assert all(dst == txn.coordinator_id for dst, __ in sent)

    def test_duplicate_append_entries_idempotent(self):
        cluster = RaftCluster(n=3, seed=4)
        cluster.start()
        cluster.run(200)
        leader = cluster.leader()
        leader.propose(("put", "x"))
        cluster.run(200)
        follower = next(m for m in cluster.members.values()
                        if not m.is_leader)
        applied_before = list(cluster.applied[follower.node_id].commands)
        last = follower.log.last_index
        entry = follower.log.entry_at(last)
        dup = AppendEntries(
            group_id="g0", term=leader.current_term,
            leader_id=leader.node_id, prev_log_index=last - 1,
            prev_log_term=follower.log.term_at(last - 1) or 0,
            entries=[entry], leader_commit=leader.commit_index)
        dup.src = leader.node_id
        for __ in range(2):  # deliver the same replication RPC twice
            follower._on_append_entries(dup)
        assert follower.log.last_index == last
        assert cluster.applied[follower.node_id].commands == applied_before
