"""Determinism sanitizer: static analysis plus a runtime bisector.

The whole reproduction rests on the DES being bit-for-bit deterministic
under a fixed seed (see the kernel docstring's rules: all randomness from
``kernel.random``, events ordered by ``(time, seq)``).  This package turns
those rules from review guidance into tooling:

* :mod:`repro.analysis.detlint` — an AST linter whose rules catch the
  nondeterminism bug classes this codebase has actually had (hash-ordered
  ``set`` iteration in send loops, wall-clock reads, stray RNGs, ...).
* :mod:`repro.analysis.divergence` — a dual-process harness that runs the
  same scenario twice under different ``PYTHONHASHSEED`` values, records a
  compact digest stream of kernel activity, and localizes the *first*
  diverging event with its causal context.
* :mod:`repro.analysis.protolint` — a protocol-conformance analyzer over
  the extracted message graph (:mod:`repro.analysis.msggraph`): dead
  letters, dead handlers, missing reply obligations, retry coverage,
  idempotence guards, constructor field mismatches, and FSM conformance
  against the declared state machines in :mod:`repro.analysis.fsm`.

They are exposed on the command line as ``python -m repro lint``,
``python -m repro protolint``, and ``python -m repro divergence``; CI
gates on clean lint + protolint runs plus planted-bug self-checks.
"""

from repro.analysis.detlint import RULES, Rule, lint_paths, lint_source
from repro.analysis.digest import DigestRecorder
from repro.analysis.divergence import DivergenceReport, run_divergence
from repro.analysis.findings import (Finding, format_findings,
                                     format_github)
from repro.analysis.msggraph import MessageGraph, build_graph
from repro.analysis.protolint import (MessageContract, PROTOCOLS,
                                      render_catalog)
from repro.analysis.protolint import lint_paths as protolint_paths

__all__ = [
    "DigestRecorder",
    "DivergenceReport",
    "Finding",
    "MessageContract",
    "MessageGraph",
    "PROTOCOLS",
    "RULES",
    "Rule",
    "build_graph",
    "format_findings",
    "format_github",
    "lint_paths",
    "lint_source",
    "protolint_paths",
    "render_catalog",
    "run_divergence",
]
