"""End-to-end WANRT invariants: trace each system, check the paper's claims.

These tests drive the same harness as ``python -m repro trace`` on the
Figure 2 scenario (client in us-west, two partitions) and assert the
sequential wide-area round-trip counts the paper claims for each protocol
variant, plus the tracer's own guarantees: determinism of the export and
non-interference with the simulation.
"""

import time

import pytest

from repro.sim.kernel import Kernel
from repro.trace.export import chrome_trace_json
from repro.trace.harness import _build_cluster, _pick_keys, run_traced
from repro.trace.invariants import check_transaction
from repro.trace.tracer import NULL_TRACER, Tracer
from repro.txn import TransactionSpec


def _traced(system, **kwargs):
    run = run_traced(system, **kwargs)
    assert run.txn_traces, f"no transaction traced for {system}"
    return run.txn_traces[0]


# (label, run_traced kwargs, expected variant, expected WANRT)
SCENARIOS = [
    ("basic", dict(), "carousel-basic", 2.0),
    ("fast", dict(), "carousel-fast", 1.0),
    ("basic-read-only", dict(read_only=True), "carousel-read-only", 1.0),
    ("layered", dict(), "layered", 4.0),
    ("tapir-fast", dict(), "tapir-fast", 1.0),
    ("tapir-slow", dict(force_slow_path=True), "tapir-slow", 3.0),
]


@pytest.mark.parametrize("label,kwargs,variant,wanrt",
                         SCENARIOS, ids=[s[0] for s in SCENARIOS])
def test_sequential_wanrt_matches_paper_claim(label, kwargs, variant, wanrt):
    system = label.split("-")[0]
    txn = _traced(system, **kwargs)
    assert txn.committed is True
    assert txn.sequential_wanrt() == wanrt
    report = check_transaction(txn)  # raises InvariantViolation on breach
    assert report.ok
    assert report.variant == variant


def test_layered_costs_at_least_one_more_wanrt_than_basic():
    """The paper's core comparison: layering 2PC on consensus serializes
    round trips Carousel overlaps (§2, §6)."""
    basic = _traced("basic")
    layered = _traced("layered")
    assert layered.sequential_wanrt() >= basic.sequential_wanrt() + 1
    assert layered.latency_ms() > basic.latency_ms()


def test_counter_agrees_with_critical_path_walk():
    for system in ("basic", "fast", "tapir", "layered"):
        txn = _traced(system)
        walked = sum(1 for m in txn.critical_path() if m.cross_dc)
        assert txn.wan_hops == walked, system


def test_every_traced_message_belongs_to_the_txn():
    txn = _traced("basic")
    assert txn.messages
    assert all(m.tid == txn.tid for m in txn.messages)
    assert all(s.tid == txn.tid for s in txn.spans)


def test_chrome_export_is_deterministic_across_runs():
    first = chrome_trace_json(run_traced("fast").tracer)
    second = chrome_trace_json(run_traced("fast").tracer)
    assert first == second


def test_tracing_does_not_perturb_virtual_time():
    """A traced run and an untraced run of the same seed commit the same
    transaction with byte-identical virtual-time results."""
    traced = run_traced("basic", seed=7)
    assert len(traced.results) == 1

    cluster = _build_cluster("basic", 7)
    cluster.run(500)
    keys = _pick_keys(cluster, "us-west")
    cluster.populate({k: "v0" for k in keys})
    assert cluster.kernel.tracer is NULL_TRACER
    done = []
    spec = TransactionSpec(read_keys=keys, write_keys=keys,
                           compute_writes=lambda r: {k: "t0" for k in r},
                           txn_type="traced")
    cluster.client("us-west").submit(spec, done.append)
    deadline = cluster.kernel.now + 30_000
    while not done and cluster.kernel.now < deadline:
        cluster.run(50)
    cluster.run(2_000)

    assert len(done) == 1
    assert done[0].committed == traced.results[0].committed
    assert done[0].latency_ms == traced.results[0].latency_ms


def _drain_events(kernel, n):
    def tick(remaining):
        if remaining:
            kernel.schedule(0.1, tick, remaining - 1)

    tick(n)
    kernel.run()


def test_null_tracer_fast_path_overhead_smoke():
    """With tracing off the kernel pays one attribute check per event; an
    untraced event loop must not be slower than a traced one (generous
    bound — this is a smoke test, not a benchmark)."""
    n = 20_000

    def timed(attach):
        kernel = Kernel(seed=3)
        if attach:
            Tracer(kernel)
        best = float("inf")
        for __ in range(3):
            start = time.perf_counter()
            _drain_events(kernel, n)
            best = min(best, time.perf_counter() - start)
        return best

    untraced = timed(attach=False)
    traced = timed(attach=True)
    assert untraced < traced * 2 + 0.05
