"""Pluggable runtime: the same protocol code on simulated or real I/O.

The protocol classes in :mod:`repro.core`, :mod:`repro.layered`,
:mod:`repro.tapir`, and :mod:`repro.raft` consume a deliberately narrow
runtime surface — a clock, one seeded RNG, one-shot timers, ``send``, and
``spawn`` (see :mod:`repro.runtime.api`).  This package pins that surface
down as an explicit interface and provides two backends:

* ``des`` (:mod:`repro.runtime.des`) — the existing discrete-event
  kernel and simulated network, byte-identical to constructing
  :class:`~repro.sim.kernel.Kernel` and :class:`~repro.sim.network.Network`
  directly;
* ``asyncio`` (:mod:`repro.runtime.aio`) — a wall-clock kernel over an
  asyncio event loop and a TCP transport with a length-prefixed wire
  codec (:mod:`repro.runtime.wire`), so the exact same coordinator,
  participant, replica, and Raft classes serve real traffic on a
  localhost cluster (``python -m repro serve`` / ``cluster``).

The DES backend remains the fast deterministic oracle for the production
path: :mod:`repro.runtime.conformance` drives an identical seeded
workload through both backends and asserts they agree on every
transaction decision, on the final replicated state, and on the shape of
the wire traffic (``python -m repro conform``).
"""

from repro.runtime.api import (
    BACKENDS,
    KERNEL_ATTRS,
    TRANSPORT_ATTRS,
    Runtime,
    missing_kernel_attrs,
    missing_transport_attrs,
)
from repro.runtime.des import DesRuntime

__all__ = [
    "BACKENDS",
    "KERNEL_ATTRS",
    "TRANSPORT_ATTRS",
    "Runtime",
    "DesRuntime",
    "missing_kernel_attrs",
    "missing_transport_attrs",
]
