"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import Kernel


def test_time_starts_at_zero():
    assert Kernel().now == 0.0


def test_schedule_and_run_advances_clock():
    kernel = Kernel()
    fired = []
    kernel.schedule(5.0, lambda: fired.append(kernel.now))
    kernel.run()
    assert fired == [5.0]
    assert kernel.now == 5.0


def test_events_fire_in_time_order():
    kernel = Kernel()
    order = []
    kernel.schedule(10.0, order.append, "late")
    kernel.schedule(1.0, order.append, "early")
    kernel.schedule(5.0, order.append, "middle")
    kernel.run()
    assert order == ["early", "middle", "late"]


def test_simultaneous_events_fire_in_scheduling_order():
    kernel = Kernel()
    order = []
    for label in ("a", "b", "c"):
        kernel.schedule(3.0, order.append, label)
    kernel.run()
    assert order == ["a", "b", "c"]


def test_negative_delay_is_clamped_to_now():
    kernel = Kernel()
    kernel.schedule(5.0, lambda: kernel.schedule(-2.0, lambda: None))
    kernel.run()
    assert kernel.now == 5.0


def test_cancelled_event_does_not_fire():
    kernel = Kernel()
    fired = []
    event = kernel.schedule(1.0, fired.append, "x")
    event.cancel()
    kernel.run()
    assert fired == []


def test_run_until_stops_before_later_events():
    kernel = Kernel()
    fired = []
    kernel.schedule(1.0, fired.append, "a")
    kernel.schedule(100.0, fired.append, "b")
    kernel.run(until=50.0)
    assert fired == ["a"]
    assert kernel.now == 50.0


def test_run_until_advances_clock_even_when_heap_drains():
    kernel = Kernel()
    kernel.schedule(1.0, lambda: None)
    kernel.run(until=90.0)
    assert kernel.now == 90.0


def test_run_max_events():
    kernel = Kernel()
    fired = []
    for i in range(10):
        kernel.schedule(float(i), fired.append, i)
    executed = kernel.run(max_events=3)
    assert executed == 3
    assert fired == [0, 1, 2]


def test_stop_halts_run():
    kernel = Kernel()
    fired = []
    kernel.schedule(1.0, fired.append, "a")
    kernel.schedule(2.0, kernel.stop)
    kernel.schedule(3.0, fired.append, "b")
    kernel.run()
    assert fired == ["a"]


def test_events_scheduled_during_run_are_executed():
    kernel = Kernel()
    fired = []

    def first():
        fired.append("first")
        kernel.schedule(1.0, lambda: fired.append("nested"))

    kernel.schedule(1.0, first)
    kernel.run()
    assert fired == ["first", "nested"]
    assert kernel.now == 2.0


def test_schedule_at_absolute_time():
    kernel = Kernel()
    fired = []
    kernel.schedule_at(42.0, lambda: fired.append(kernel.now))
    kernel.run()
    assert fired == [42.0]


def test_deterministic_rng_per_seed():
    a = [Kernel(seed=7).random.random() for _ in range(1)][0]
    b = Kernel(seed=7).random.random()
    c = Kernel(seed=8).random.random()
    assert a == b
    assert a != c


def test_pending_events_excludes_cancelled():
    kernel = Kernel()
    kernel.schedule(1.0, lambda: None)
    event = kernel.schedule(2.0, lambda: None)
    event.cancel()
    assert kernel.pending_events() == 1


def test_run_returns_executed_count():
    kernel = Kernel()
    for i in range(5):
        kernel.schedule(float(i), lambda: None)
    assert kernel.run() == 5


def test_double_cancel_does_not_double_count():
    kernel = Kernel()
    kernel.schedule(1.0, lambda: None)
    event = kernel.schedule(2.0, lambda: None)
    event.cancel()
    event.cancel()
    assert kernel.pending_events() == 1


def test_cancel_after_fire_is_harmless():
    kernel = Kernel()
    fired = []
    event = kernel.schedule(1.0, fired.append, "x")
    kernel.schedule(2.0, lambda: None)
    kernel.run()
    event.cancel()
    assert fired == ["x"]
    assert kernel.pending_events() == 0


def test_heap_compaction_when_cancelled_majority():
    kernel = Kernel()
    live = [kernel.schedule(float(i), lambda: None) for i in range(5)]
    dead = [kernel.schedule(100.0 + i, lambda: None) for i in range(10)]
    for event in dead:
        event.cancel()
    assert kernel.heap_compactions >= 1
    assert len(kernel._heap) < 15  # compaction dropped dead entries
    assert kernel.pending_events() == 5
    executed = kernel.run()
    assert executed == len(live)


def test_no_compaction_below_threshold():
    kernel = Kernel()
    events = [kernel.schedule(float(i), lambda: None) for i in range(20)]
    for event in events[:5]:
        event.cancel()
    assert kernel.heap_compactions == 0
    assert kernel.pending_events() == 15


def test_pending_events_and_run_after_compaction():
    kernel = Kernel()
    fired = []
    keep = kernel.schedule(50.0, fired.append, "keep")
    doomed = [kernel.schedule(float(i), lambda: None) for i in range(20)]
    for event in doomed:
        event.cancel()
    assert kernel.heap_compactions >= 1
    assert kernel.pending_events() == 1
    kernel.run()
    assert fired == ["keep"]
    assert kernel.now == 50.0
    assert keep._owner is None
