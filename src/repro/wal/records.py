"""WAL record types for every durable role in the tree.

These are deliberately *not* :class:`repro.net.message.Message`
subclasses: they never travel on the network, they are appended to a
node-local :class:`repro.wal.log.WriteAheadLog` and replayed into a
freshly constructed node after a power cycle.  Keeping them out of the
message hierarchy keeps the protolint message graph (and the generated
PROTOCOL.md catalog) unchanged.

All records are frozen dataclasses holding only immutable payloads
(tuples, strings, numbers) so a WAL image is a plain value — two
images compare equal iff the durable histories are identical, which is
what the property tests in ``tests/property/test_wal_properties.py``
lean on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


# --------------------------------------------------------------------------
# Raft persistent state (Figure 2 of the Raft paper: currentTerm, votedFor,
# log[]).  Term/vote updates and log installs are journaled separately so
# replay can reconstruct exactly the sequence of persistent-state mutations.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class RaftTermRecord:
    """currentTerm/votedFor at the instant they changed."""

    group_id: str
    term: int
    voted_for: Optional[str]


@dataclass(frozen=True)
class RaftAppendRecord:
    """Log entries installed at their carried indexes.

    Replay truncates the in-memory log at ``entry.index`` before
    appending each entry, so a later record for an index that was
    previously occupied (a follower-side conflict splice) subsumes the
    truncation — no separate truncate record is needed.
    """

    group_id: str
    entries: Tuple  # tuple of raft.log.LogEntry (frozen dataclasses)


# --------------------------------------------------------------------------
# Carousel coordinator decision log (2PC outcome durability, paper §4.3).
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class CoordDecisionWal:
    """A 2PC decision, fsynced before the client reply externalizes it."""

    tid: str
    group_id: str
    client_id: str
    decision: str
    reason: str
    # ((partition_id, ((read keys...), (write keys...))), ...) sorted by pid
    participants: Tuple
    # ((key, value), ...) sorted by key
    writes: Tuple


@dataclass(frozen=True)
class CoordFinishWal:
    """All writeback acks arrived; the decision needs no re-drive."""

    tid: str


# --------------------------------------------------------------------------
# Layered (2PC-over-Raft baseline) coordinator decision log.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class LayeredDecisionWal:
    tid: str
    group_id: str
    client_id: str
    decision: str
    # ((partition_id, (write keys...)), ...) sorted by pid
    participants: Tuple
    # ((key, value), ...) sorted by key
    writes: Tuple


@dataclass(frozen=True)
class LayeredFinishWal:
    tid: str


# --------------------------------------------------------------------------
# Carousel participant / OCC prepared-set redo.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class OccPrepareWal:
    """A provisional pending-list entry, fsynced before the vote is cast.

    Restart redo re-adds the entry as provisional; undo happens the same
    way it does in steady state — the replicated PrepareRecord /
    CommitRecord stream removes or confirms it as the Raft log
    re-applies.
    """

    partition_id: str
    tid: str
    read_keys: Tuple[str, ...]
    write_keys: Tuple[str, ...]
    # ((key, version), ...) sorted by key
    read_versions: Tuple
    term: int
    coordinator_id: str


# --------------------------------------------------------------------------
# TAPIR replica durable state (prepared set, resolved outcomes, store).
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class TapirPrepareWal:
    """A successful PREPARE validation, fsynced before PREPARE_OK."""

    tid: str
    # ((key, version), ...) as validated
    read_versions: Tuple
    write_keys: Tuple[str, ...]


@dataclass(frozen=True)
class TapirFinalizeWal:
    """A consensus FINALIZE outcome adopted by this replica."""

    tid: str
    result: str


@dataclass(frozen=True)
class TapirResolveWal:
    """Commit/abort resolution, fsynced before the ack."""

    tid: str
    commit: bool
    # ((key, value, version), ...) in application order
    writes: Tuple
