"""Unit tests for report rendering and the command-line interface."""

import json

import pytest

from repro.bench.report import (
    format_table,
    latency_summary_rows,
    render_bandwidth,
    render_cdf,
    render_latency_table,
    render_throughput_sweep,
)
from repro.cli import build_parser, main
from repro.sim.stats import LatencyRecorder


def recorder_with(values, name="x"):
    rec = LatencyRecorder(name)
    for v in values:
        rec.record(v)
    return rec


class TestFormatTable:
    def test_alignment_and_separator(self):
        out = format_table(["a", "long-header"], [["1", "2"]])
        lines = out.splitlines()
        assert len(lines) == 3
        assert "long-header" in lines[0]
        assert set(lines[1]) <= {"-", " "}

    def test_cells_stringified(self):
        out = format_table(["n"], [[42], [3.5]])
        assert "42" in out and "3.5" in out

    def test_wide_cells_expand_column(self):
        out = format_table(["x"], [["wider-than-header"]])
        header, sep, row = out.splitlines()
        assert len(sep) >= len("wider-than-header")


class TestLatencyRendering:
    def test_summary_rows(self):
        rows = latency_summary_rows({
            "sys": recorder_with([10.0, 20.0, 30.0])})
        assert rows[0][0] == "sys"
        assert rows[0][1] == "3"
        assert rows[0][2] == "20"

    def test_render_latency_table(self):
        out = render_latency_table({"sys": recorder_with([1.0, 2.0])})
        assert "median (ms)" in out and "sys" in out

    def test_render_cdf_series(self):
        out = render_cdf({"sys": recorder_with([1.0, 2.0, 3.0])},
                         points=2)
        assert out.startswith("sys:")
        assert "1.00)" in out  # reaches cumulative 1.0


class TestSweepRendering:
    def test_rows_per_point(self):
        out = render_throughput_sweep(
            {"alpha": [(1000.0, 950.0, 0.05), (2000.0, 1700.0, 0.15)]})
        assert out.count("alpha") == 2
        assert "5.0%" in out and "15.0%" in out


class TestBandwidthRendering:
    def test_all_roles_present(self):
        out = render_bandwidth({"sys": {
            "client_send": 1.0, "client_recv": 2.0,
            "leader_send": 3.0, "leader_recv": 4.0,
            "follower_send": 5.0, "follower_recv": 6.0}})
        for value in ("1.00", "2.00", "3.00", "4.00", "5.00", "6.00"):
            assert value in out

    def test_missing_roles_default_zero(self):
        out = render_bandwidth({"sys": {}})
        assert "0.00" in out


class TestCli:
    def test_parser_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig4"])
        assert args.scale == "quick"
        assert args.json is None

    def test_table1_runs(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "115" in out  # asia-australia RTT

    def test_table2_runs(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "load_timeline" in out

    def test_trace_basic_runs(self, capsys):
        assert main(["trace-basic"]) == 0
        out = capsys.readouterr().out
        assert "ReadPrepareRequest" in out
        assert "TxnReply" in out

    def test_json_output(self, tmp_path, capsys):
        path = tmp_path / "t1.json"
        assert main(["table1", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["us-west-us-east"] == 73.0
