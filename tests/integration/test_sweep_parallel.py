"""Integration tests for parallel figure sweeps.

The acceptance contract of ``repro.sweep``: the merged output of a real
figure sweep is byte-identical across worker counts and across the
cache, matches the historical in-process path exactly, and a worker
crash surfaces the failing spec instead of hanging.
"""

import pytest

from repro.bench.runner import run_workload
from repro.sim.topology import uniform_topology
from repro.sweep import (
    ResultCache,
    RunSpec,
    SweepError,
    SweepExecutor,
    canonical_json,
    code_fingerprint,
)
from repro.sweep.kinds import figure_spec

#: Two systems x two targets on a tiny uniform cluster: a real sweep,
#: small enough to run four times in this module.
_TOPO = uniform_topology(3, 5.0)
_PARAMS = dict(duration_ms=700.0, warmup_ms=200.0, cooldown_ms=100.0,
               n_keys=500, seed=6, clients_per_dc=2, closed_loop=True)


def _specs():
    return [
        figure_spec(system=system, workload="retwis", target_tps=target,
                    topology=_TOPO, label=f"{system}@{target:g}",
                    **_PARAMS)
        for system in ("carousel-fast", "tapir")
        for target in (150.0, 400.0)
    ]


def _blob(records):
    return canonical_json([r.to_json() for r in records])


def test_jobs1_and_jobs4_merge_byte_identical():
    seq = SweepExecutor(jobs=1).run(_specs())
    par = SweepExecutor(jobs=4).run(_specs())
    assert _blob(seq) == _blob(par)
    # Same params -> same spec -> same digests: the cache key does not
    # depend on worker count either.
    fp = code_fingerprint()
    assert [s.digest(fp) for s in _specs()] == \
        [s.digest(fp) for s in _specs()]


def test_sweep_matches_direct_in_process_run():
    record = SweepExecutor(jobs=1).run(_specs()[:1])[0]
    direct = run_workload("carousel-fast", "retwis", target_tps=150.0,
                          topology=_TOPO, **_PARAMS).record()
    assert canonical_json(record.to_json()) == \
        canonical_json(direct.to_json())
    assert record.op_counters == direct.op_counters


def test_warm_cache_reproduces_cold_results(tmp_path):
    cache = ResultCache(tmp_path)
    cold_ex = SweepExecutor(jobs=2, cache=cache)
    cold = cold_ex.run(_specs())
    assert cold_ex.stats.misses == 4 and cold_ex.stats.hits == 0

    warm_ex = SweepExecutor(jobs=2, cache=cache)
    warm = warm_ex.run(_specs())
    assert warm_ex.stats.hits == 4 and warm_ex.stats.misses == 0
    assert _blob(warm) == _blob(cold)


def test_worker_crash_reports_failing_spec_and_does_not_hang():
    bad = RunSpec.make(
        "figure",
        dict(_PARAMS, system="no-such-system", workload="retwis",
             target_tps=100.0, topology=_TOPO.to_json()),
        label="the-crasher")
    specs = _specs()[:2] + [bad]
    with pytest.raises(SweepError) as excinfo:
        SweepExecutor(jobs=2).run(specs)
    failures = excinfo.value.failures
    assert [spec.label for spec, _ in failures] == ["the-crasher"]
    assert "unknown system" in failures[0][1]
    assert "the-crasher" in str(excinfo.value)
