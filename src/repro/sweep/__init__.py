"""repro.sweep: parallel experiment execution with result caching.

A *sweep* is a list of picklable, fully-seeded :class:`RunSpec`
descriptors; :class:`SweepExecutor` runs them across worker processes
(each in a fresh deterministic kernel) and merges the records in spec
order, so aggregate output is byte-identical at any ``--jobs`` value.
Records of cacheable kinds land in an on-disk content-addressed
:class:`ResultCache` keyed by ``sha256(spec, code fingerprint)`` — see
:mod:`repro.sweep.spec` — making a repeated figure run near-instant.

Consumers: the figure runners (:mod:`repro.bench.experiments`), the perf
suites (:mod:`repro.perf.suites`), and chaos schedule minimization
(:mod:`repro.chaos.minimize` via ``SweepExecutor.first_failing``).
"""

from repro.sweep.cache import CACHE_ENV, ResultCache, default_cache_dir
from repro.sweep.executor import SweepError, SweepExecutor, SweepStats
from repro.sweep.kinds import (
    KINDS,
    Kind,
    chaos_replay_spec,
    execute_spec,
    figure_spec,
    perf_suite_spec,
    register_kind,
)
from repro.sweep.spec import (
    CODE_PREFIXES,
    RunSpec,
    canonical_json,
    code_fingerprint,
)

__all__ = [
    "CACHE_ENV",
    "CODE_PREFIXES",
    "KINDS",
    "Kind",
    "ResultCache",
    "RunSpec",
    "SweepError",
    "SweepExecutor",
    "SweepStats",
    "canonical_json",
    "chaos_replay_spec",
    "code_fingerprint",
    "default_cache_dir",
    "execute_spec",
    "figure_spec",
    "perf_suite_spec",
    "register_kind",
]
