"""Carousel: low-latency transaction processing for globally-distributed
data — a complete Python reproduction of the SIGMOD 2018 paper.

Public API overview
-------------------

Transactions and results:
    :class:`repro.txn.TransactionSpec` (the 2FI model),
    :class:`repro.txn.TxnResult`, :class:`repro.txn.TID`.

Carousel:
    :class:`repro.core.CarouselClient`, :class:`repro.core.CarouselServer`,
    :class:`repro.core.CarouselConfig` (modes ``BASIC`` / ``FAST``).

Baseline:
    :class:`repro.tapir.TapirClient`, :class:`repro.tapir.TapirReplica`,
    :class:`repro.tapir.TapirConfig`.

Deployments and experiments:
    :class:`repro.bench.CarouselCluster`, :class:`repro.bench.TapirCluster`,
    :class:`repro.bench.DeploymentSpec`, :mod:`repro.bench.experiments`,
    and the ``python -m repro`` command line.

Substrates:
    :mod:`repro.sim` (deterministic discrete-event simulator),
    :mod:`repro.raft`, :mod:`repro.store`, :mod:`repro.workloads`.
"""

from repro.txn import (
    REASON_CLIENT_ABORT,
    REASON_COMMITTED,
    REASON_CONFLICT,
    REASON_FAILURE,
    REASON_STALE_READ,
    REASON_TIMEOUT,
    TID,
    TransactionSpec,
    TxnResult,
)

__version__ = "1.0.0"

__all__ = [
    "TID",
    "TransactionSpec",
    "TxnResult",
    "REASON_COMMITTED",
    "REASON_CLIENT_ABORT",
    "REASON_CONFLICT",
    "REASON_STALE_READ",
    "REASON_FAILURE",
    "REASON_TIMEOUT",
    "__version__",
]
