"""Differential conformance: the DES oracle vs. the asyncio/TCP backend.

The same seeded workload is driven through the same protocol classes on
both runtimes and the outcomes are compared:

* **decisions** — every transaction must reach the same commit/abort
  decision (and the same transaction id) on both backends;
* **state** — the final replicated state must be identical, and must
  independently satisfy the chaos value-parity and decision-consistency
  oracles (:mod:`repro.chaos.oracles`) on *each* backend;
* **traffic** — per-message-type send counts are reconciled against the
  static message graph (:mod:`repro.analysis.msggraph`): every observed
  type must be a declared message of the system's protocols, and the
  counts of request-driven types must match exactly across backends.
  Time-driven types (Raft heartbeats/elections, client failure-detector
  heartbeats) are exempt from count equality — wall clocks and virtual
  clocks legitimately tick differently — but still protocol-checked.

The workload is *sequential* (one transaction in flight at a time, keys
drawn from a dedicated string-seeded RNG), which makes the commit/abort
decision of every transaction a pure function of the protocol rather
than of racing timers, so the differential assertion is exact instead of
statistical.  The asyncio deployment runs every logical process of the
placement (driver + one per datacenter) inside one event loop, with all
inter-process traffic crossing real localhost TCP sockets through the
wire codec — the same code path ``python -m repro serve`` uses across OS
processes.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.msggraph import build_graph_from_paths
from repro.bench.cluster import (
    CarouselCluster,
    DeploymentSpec,
    LayeredCluster,
    TapirCluster,
)
from repro.chaos.oracles import ResultRow, check_decisions, check_stores
from repro.core.backoff import RetryPolicy
from repro.core.config import BASIC, FAST, CarouselConfig
from repro.raft.node import RaftConfig
from repro.runtime.aio import AioRuntime
from repro.runtime.harness import (
    SnapshotAdapter,
    merge_snapshots,
    snapshot_cluster,
)
from repro.sim.topology import ec2_five_regions
from repro.tapir.config import TapirConfig
from repro.txn import TransactionSpec

#: The four systems under differential test.
SYSTEMS = ("carousel-basic", "carousel-fast", "layered", "tapir")

#: Message types whose counts are driven by clocks, not by requests:
#: Raft heartbeats and elections, and the client failure-detector
#: heartbeat.  Wall time and virtual time tick differently, so only the
#: *request-driven* types must match count-for-count.
TIME_DRIVEN = frozenset({
    "AppendEntries", "AppendEntriesReply",
    "RequestVote", "RequestVoteReply",
    "ClientHeartbeat",
})

#: Which static-graph protocols each system's traffic may use.
SYSTEM_PROTOCOLS = {
    "carousel-basic": frozenset({"carousel", "raft"}),
    "carousel-fast": frozenset({"carousel", "raft"}),
    "layered": frozenset({"layered", "raft"}),
    "tapir": frozenset({"tapir"}),
}

# Conformance timing profile: fast Raft heartbeats so followers apply
# promptly on both clocks, and retry/timeout bases far above localhost
# (and simulated WAN) round trips so no retransmission or slow-path
# timer fires on either backend during a healthy sequential run.
_CONFORM_RAFT = dict(election_timeout_min_ms=1500.0,
                     election_timeout_max_ms=3000.0,
                     heartbeat_interval_ms=100.0)
_CONFORM_BACKOFF = dict(base_ms=3000.0, multiplier=2.0, max_ms=12_000.0,
                        jitter_fraction=0.1)


@dataclass
class ConformanceOptions:
    """Knobs for one differential run (defaults match the CLI)."""

    #: Sequential transactions per run.
    rounds: int = 12
    #: Distinct workload keys (``wk0..wkN-1``), all starting absent.
    n_keys: int = 4
    #: Fraction of transactions incrementing two keys (cross-partition).
    pair_fraction: float = 0.4
    #: Virtual settle/drain for the DES side (ms).
    settle_ms: float = 600.0
    drain_ms: float = 2000.0
    #: Per-transaction liveness bound on the DES side (virtual ms).
    txn_timeout_ms: float = 30_000.0
    #: Inter-transaction settle on the DES side (virtual ms).  Carousel
    #: acknowledges the client *before* writebacks reach every replica,
    #: so back-to-back transactions would race the previous write's
    #: propagation — a race that legitimately resolves differently on a
    #: virtual vs. a wall clock.  The gap lets each transaction's
    #: writebacks apply everywhere, making every decision a pure
    #: function of the protocol.
    gap_ms: float = 800.0
    #: Wall-clock settle/drain for the asyncio side (seconds).
    settle_s: float = 0.3
    drain_s: float = 1.0
    #: Per-transaction liveness bound on the asyncio side (seconds).
    txn_timeout_s: float = 20.0
    #: Inter-transaction settle on the asyncio side (seconds); covers a
    #: few Raft heartbeats so follower replicas apply the previous
    #: transaction's writeback before the next read-prepare fans out.
    gap_s: float = 0.4


@dataclass
class ConformanceResult:
    """Verdict of one ``(system, seed)`` differential run."""

    system: str
    seed: int
    rounds: int = 0
    committed: int = 0
    aborted: int = 0
    violations: List[str] = field(default_factory=list)
    counts_des: Dict[str, int] = field(default_factory=dict)
    counts_aio: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations


def build_system(system: str, seed: int, runtime=None, topology=None):
    """One conformance-profile deployment of ``system`` on ``runtime``
    (``None`` = the DES backend)."""
    spec = DeploymentSpec(seed=seed, topology=topology)
    if system in ("carousel-basic", "carousel-fast"):
        mode = FAST if system == "carousel-fast" else BASIC
        return CarouselCluster(spec, CarouselConfig(
            mode=mode,
            heartbeat_interval_ms=500.0,
            heartbeat_misses=3,
            client_retry_ms=_CONFORM_BACKOFF["base_ms"],
            retry_backoff_multiplier=_CONFORM_BACKOFF["multiplier"],
            retry_backoff_max_ms=_CONFORM_BACKOFF["max_ms"],
            retry_jitter_fraction=_CONFORM_BACKOFF["jitter_fraction"],
            raft=RaftConfig(**_CONFORM_RAFT)), runtime=runtime)
    if system == "layered":
        return LayeredCluster(spec, raft_config=RaftConfig(**_CONFORM_RAFT),
                              retry_policy=RetryPolicy(**_CONFORM_BACKOFF),
                              runtime=runtime)
    if system == "tapir":
        return TapirCluster(spec, TapirConfig(
            fast_path_timeout_ms=2000.0,
            retry_ms=_CONFORM_BACKOFF["base_ms"],
            retry_backoff_multiplier=_CONFORM_BACKOFF["multiplier"],
            retry_backoff_max_ms=_CONFORM_BACKOFF["max_ms"],
            retry_jitter_fraction=_CONFORM_BACKOFF["jitter_fraction"]),
            runtime=runtime)
    raise ValueError(f"unknown system {system!r}; expected one of "
                     f"{', '.join(SYSTEMS)}")


def build_conformance_plan(seed: int, opts: ConformanceOptions,
                           n_clients: int, keys: Sequence[str]
                           ) -> List[Tuple[int, Tuple[str, ...]]]:
    """The seeded sequential plan: ``(client_index, keys)`` rows, drawn
    from ``random.Random(f"conform:{seed}")`` — independent of both
    backends' kernel RNGs, so the submitted workload is identical by
    construction."""
    rng = random.Random(f"conform:{seed}")
    plan: List[Tuple[int, Tuple[str, ...]]] = []
    for _ in range(opts.rounds):
        client = rng.randrange(n_clients)
        if len(keys) >= 2 and rng.random() < opts.pair_fraction:
            picked = tuple(sorted(rng.sample(list(keys), 2)))
        else:
            picked = (keys[rng.randrange(len(keys))],)
        plan.append((client, picked))
    return plan


def increment_spec(keys: Tuple[str, ...]) -> TransactionSpec:
    """Read-modify-write increment of each key (the oracle workload)."""
    def compute(reads: Dict[str, Any]) -> Dict[str, Any]:
        return {k: (reads.get(k) or 0) + 1 for k in keys}

    return TransactionSpec(read_keys=keys, write_keys=keys,
                           compute_writes=compute, txn_type="conform-incr")


# ---------------------------------------------------------------------------
# DES side
# ---------------------------------------------------------------------------

def run_des_side(system: str, seed: int, opts: ConformanceOptions,
                 plan: Sequence[Tuple[int, Tuple[str, ...]]]
                 ) -> Tuple[Any, List[ResultRow], dict, List[str]]:
    """Drive ``plan`` sequentially through the DES backend.

    Returns ``(cluster, results, snapshot, violations)`` where
    ``snapshot`` includes sender-side per-type counts collected through
    the network's trace hook (whose jitter draws are bit-identical to
    the fast path, so counting does not perturb the simulation).
    """
    cluster = build_system(system, seed)
    counts: Dict[str, int] = {}

    def _count(msg, delay_ms: float) -> None:
        name = msg.type_name
        counts[name] = counts.get(name, 0) + 1

    cluster.network.trace_hook = _count
    kernel = cluster.kernel
    violations: List[str] = []
    kernel.run(until=kernel.now + opts.settle_ms)
    results: List[ResultRow] = []
    for i, (client_index, picked) in enumerate(plan):
        client = cluster.clients[client_index]
        spec = increment_spec(picked)
        done = len(results)
        kernel.spawn(lambda c=client, s=spec, ks=picked: c.submit(
            s, lambda res, ks=ks: results.append((ks, res))))
        deadline = kernel.now + opts.txn_timeout_ms
        while len(results) <= done and kernel.now < deadline:
            kernel.run(until=min(kernel.now + 100.0, deadline))
        if len(results) <= done:
            violations.append(
                f"des: transaction {i} on {client.node_id} got no "
                f"terminal response within {opts.txn_timeout_ms:.0f} "
                "virtual ms")
            break
        kernel.run(until=kernel.now + opts.gap_ms)
    kernel.run(until=kernel.now + opts.drain_ms)
    cluster.network.trace_hook = None
    snapshot = snapshot_cluster(system, cluster)
    snapshot["sent_by_type"] = counts
    return cluster, results, snapshot, violations


# ---------------------------------------------------------------------------
# asyncio side (in-process multi-runtime deployment over localhost TCP)
# ---------------------------------------------------------------------------

async def drive_plan_async(driver_cluster: Any,
                           plan: Sequence[Tuple[int, Tuple[str, ...]]],
                           opts: ConformanceOptions
                           ) -> Tuple[List[ResultRow], List[str]]:
    """Drive ``plan`` sequentially through a driver cluster's clients on
    the current event loop (shared by the in-process conformance run and
    the multi-process ``repro cluster`` driver)."""
    results: List[ResultRow] = []
    violations: List[str] = []
    for i, (client_index, picked) in enumerate(plan):
        client = driver_cluster.clients[client_index]
        spec = increment_spec(picked)
        arrived = asyncio.Event()

        def _hook(res, ks=picked, ev=arrived):
            results.append((ks, res))
            ev.set()

        client.submit(spec, _hook)
        try:
            await asyncio.wait_for(arrived.wait(),
                                   timeout=opts.txn_timeout_s)
        except asyncio.TimeoutError:
            violations.append(
                f"aio: transaction {i} on {client.node_id} got no "
                f"terminal response within {opts.txn_timeout_s:.0f} s")
            break
        await asyncio.sleep(opts.gap_s)
    return results, violations


async def run_aio_side(system: str, seed: int, opts: ConformanceOptions,
                       plan: Sequence[Tuple[int, Tuple[str, ...]]]
                       ) -> Tuple[Any, List[ResultRow], dict, List[str]]:
    """Drive ``plan`` through the asyncio/TCP backend.

    Builds one :class:`AioRuntime` per logical process (driver + one per
    datacenter) on the current loop; every process builds the same
    deployment and constructs only the nodes it hosts, so all
    server<->server and client<->server traffic crosses real sockets.
    """
    loop = asyncio.get_running_loop()
    topology = ec2_five_regions()
    procs = ["driver"] + [f"dc-{dc}" for dc in topology.datacenters]
    runtimes = {proc: AioRuntime(proc, seed, topology, loop)
                for proc in procs}
    try:
        table: Dict[str, Tuple[str, int]] = {}
        for proc, rt in runtimes.items():
            port = await rt.start()
            table[proc] = ("127.0.0.1", port)
        for rt in runtimes.values():
            rt.network.set_addresses(table)
        clusters = {proc: build_system(system, seed, runtime=rt,
                                       topology=topology)
                    for proc, rt in runtimes.items()}
        driver = clusters["driver"]
        await asyncio.sleep(opts.settle_s)
        results, violations = await drive_plan_async(driver, plan, opts)
        await asyncio.sleep(opts.drain_s)

        merged = merge_snapshots(
            [snapshot_cluster(system, cluster)
             for cluster in clusters.values()])
        return driver, results, merged, violations
    finally:
        for rt in runtimes.values():
            await rt.close()


# ---------------------------------------------------------------------------
# Reconciliation
# ---------------------------------------------------------------------------

def _message_graph():
    root = Path(__file__).resolve().parents[1]  # src/repro
    return build_graph_from_paths([str(root)])


def reconcile_counts(system: str, counts_des: Dict[str, int],
                     counts_aio: Dict[str, int],
                     graph=None) -> List[str]:
    """Check both backends' traffic against the static message graph.

    Every observed type must be a declared wire message of one of the
    system's protocols, and request-driven types must match
    count-for-count across backends (:data:`TIME_DRIVEN` types only
    need protocol membership).
    """
    if graph is None:
        graph = _message_graph()
    allowed = SYSTEM_PROTOCOLS[system]
    violations: List[str] = []
    for backend, counts in (("des", counts_des), ("aio", counts_aio)):
        for name in sorted(counts):
            definition = graph.messages.get(name)
            if definition is None:
                violations.append(
                    f"{backend}: sent {name!r}, which is not a message "
                    "type in the static graph")
            elif definition.protocol not in allowed:
                violations.append(
                    f"{backend}: sent {name!r} from protocol "
                    f"{definition.protocol!r}, outside {system}'s "
                    f"protocols {sorted(allowed)}")
    des_types = {n for n in counts_des if n not in TIME_DRIVEN}
    aio_types = {n for n in counts_aio if n not in TIME_DRIVEN}
    for name in sorted(des_types | aio_types):
        if counts_des.get(name, 0) != counts_aio.get(name, 0):
            violations.append(
                f"count mismatch for {name}: des={counts_des.get(name, 0)} "
                f"aio={counts_aio.get(name, 0)}")
    return violations


def _check_oracles(backend: str, cluster: Any, merged: dict,
                   results: Sequence[ResultRow],
                   keys: Sequence[str]) -> List[str]:
    adapter = SnapshotAdapter(merged, cluster.ring, cluster.directory,
                              cluster.partition_ids,
                              clients=cluster.clients)
    violations = []
    for v in check_decisions(adapter, results):
        violations.append(f"{backend}: {v}")
    for v in check_stores(adapter, results, keys):
        violations.append(f"{backend}: {v}")
    return violations


def evaluate(system: str, seed: int,
             plan: Sequence[Tuple[int, Tuple[str, ...]]],
             keys: Sequence[str],
             des_cluster: Any, des_results: List[ResultRow],
             des_snapshot: dict,
             aio_cluster: Any, aio_results: List[ResultRow],
             aio_merged: dict,
             violations: List[str], graph=None) -> ConformanceResult:
    """Compare one DES run against one asyncio run of the same plan."""
    result = ConformanceResult(
        system=system, seed=seed, rounds=len(plan),
        committed=sum(1 for _, r in des_results if r.committed),
        aborted=sum(1 for _, r in des_results if not r.committed),
        counts_des=dict(des_snapshot["sent_by_type"]),
        counts_aio=dict(aio_merged["sent_by_type"]))

    # Per-transaction decisions, in submission order (the workload is
    # sequential, so arrival order == submission order on both sides).
    if len(des_results) != len(aio_results):
        violations.append(
            f"terminal responses differ: des={len(des_results)} "
            f"aio={len(aio_results)}")
    for i, ((_, des_r), (_, aio_r)) in enumerate(
            zip(des_results, aio_results)):
        if des_r.tid != aio_r.tid:
            violations.append(
                f"txn {i}: tid differs: des={des_r.tid} aio={aio_r.tid}")
        if des_r.committed != aio_r.committed:
            violations.append(
                f"txn {i} ({des_r.tid}): decision differs: "
                f"des={'commit' if des_r.committed else 'abort'} "
                f"aio={'commit' if aio_r.committed else 'abort'}")

    # Final replicated state: byte-equal stores, and each backend must
    # independently satisfy the chaos value-parity/decision oracles.
    des_merged = merge_snapshots([des_snapshot])
    if des_merged["stores"] != aio_merged["stores"]:
        diff_nodes = sorted(
            node for node in set(des_merged["stores"])
            | set(aio_merged["stores"])
            if des_merged["stores"].get(node) !=
            aio_merged["stores"].get(node))
        violations.append(
            f"final replicated state differs at: {', '.join(diff_nodes)}")
    violations += _check_oracles("des", des_cluster, des_merged,
                                 des_results, keys)
    violations += _check_oracles("aio", aio_cluster, aio_merged,
                                 aio_results, keys)

    violations += reconcile_counts(system, result.counts_des,
                                   result.counts_aio, graph=graph)
    result.violations = violations
    return result


def run_conformance(system: str, seed: int,
                    opts: Optional[ConformanceOptions] = None,
                    graph=None) -> ConformanceResult:
    """One full differential run of ``system`` at ``seed``."""
    opts = opts or ConformanceOptions()
    if system not in SYSTEMS:
        raise ValueError(f"unknown system {system!r}; expected one of "
                         f"{', '.join(SYSTEMS)}")
    keys = [f"wk{i}" for i in range(opts.n_keys)]
    n_clients = len(ec2_five_regions().datacenters)
    plan = build_conformance_plan(seed, opts, n_clients, keys)

    des_cluster, des_results, des_snapshot, violations = \
        run_des_side(system, seed, opts, plan)
    aio_cluster, aio_results, aio_merged, aio_violations = \
        asyncio.run(run_aio_side(system, seed, opts, plan))
    return evaluate(system, seed, plan, keys,
                    des_cluster, des_results, des_snapshot,
                    aio_cluster, aio_results, aio_merged,
                    list(violations) + aio_violations, graph=graph)


def format_result(result: ConformanceResult) -> str:
    """One human-readable block per run, counts included."""
    lines = [f"{result.system} seed={result.seed}: "
             f"{'OK' if result.ok else 'FAIL'} "
             f"({result.rounds} txns, {result.committed} committed, "
             f"{result.aborted} aborted)"]
    names = sorted(set(result.counts_des) | set(result.counts_aio))
    for name in names:
        des = result.counts_des.get(name, 0)
        aio = result.counts_aio.get(name, 0)
        marker = "" if des == aio else \
            ("  (time-driven)" if name in TIME_DRIVEN else "  (MISMATCH)")
        lines.append(f"    {name:<24} des={des:<6} aio={aio:<6}{marker}")
    for violation in result.violations:
        lines.append(f"    VIOLATION: {violation}")
    return "\n".join(lines)
