"""repro.perf: kernel-throughput benchmarking and perf-regression
tracking.

The discrete-event kernel is this repository's "hardware": every figure,
chaos run, and future million-client sweep executes exactly as fast as
the kernel churns events.  This package measures that as a first-class
subsystem:

* :mod:`repro.perf.suites` — microbenchmarks (raw event churn, timer
  schedule/cancel, network send/deliver with and without tracing and
  fault models, Zipf key generation) and end-to-end benchmarks
  (committed txns/sec for all four systems under the Retwis driver).
* :mod:`repro.perf.schema` — the ``BENCH_<label>.json`` document format
  and its stdlib validator.  Every suite reports both wall-clock rates
  (host-dependent) and deterministic operation counters
  (host-independent), so CI can flag behavioural regressions exactly
  without trusting noisy timers.
* :mod:`repro.perf.compare` — diff two BENCH files: rates against a
  relative threshold, op counters exactly.
* :mod:`repro.perf.cli` — ``python -m repro perf`` / ``repro perf
  compare``.

This package is the one place in the simulated codebase allowed to read
the wall clock (``time.perf_counter``); detlint's DL003 allowlist is
scoped to ``perf/`` accordingly.
"""

from repro.perf.schema import BENCH_SCHEMA, validate_bench
from repro.perf.suites import SUITES, SuiteResult, run_suites
from repro.perf.compare import compare_benches

__all__ = [
    "BENCH_SCHEMA",
    "validate_bench",
    "SUITES",
    "SuiteResult",
    "run_suites",
    "compare_benches",
]
