"""Unit and small-cluster tests for the Raft implementation."""

import pytest

from repro.raft.node import FOLLOWER, LEADER, RaftConfig, RaftNoop
from tests.support import RaftCluster


class TestConfigValidation:
    def test_defaults_valid(self):
        RaftConfig()

    def test_bad_timeouts(self):
        with pytest.raises(ValueError):
            RaftConfig(election_timeout_min_ms=0)
        with pytest.raises(ValueError):
            RaftConfig(election_timeout_min_ms=100,
                       election_timeout_max_ms=50)
        with pytest.raises(ValueError):
            RaftConfig(heartbeat_interval_ms=5000)


class TestBootstrap:
    def test_bootstrap_leader_assumes_leadership(self):
        cluster = RaftCluster(n=3)
        cluster.start()
        cluster.run(100)
        leader = cluster.leader()
        assert leader is not None and leader.node_id == "n0"
        assert leader.current_term == 1

    def test_followers_learn_leader_via_heartbeat(self):
        cluster = RaftCluster(n=3)
        cluster.start()
        cluster.run(100)
        for node_id in ("n1", "n2"):
            member = cluster.members[node_id]
            assert member.state == FOLLOWER
            assert member.leader_id == "n0"
            assert member.current_term == 1

    def test_no_election_while_leader_heartbeats(self):
        cluster = RaftCluster(n=3)
        cluster.start()
        cluster.run(5000)
        assert all(m.elections_started == 0
                   for m in cluster.members.values())

    def test_leaderless_start_elects_exactly_one_leader(self):
        cluster = RaftCluster(n=3, bootstrap=None, seed=7)
        cluster.start()
        cluster.run(2000)
        leaders = [m for m in cluster.members.values() if m.is_leader]
        assert len(leaders) == 1


class TestReplication:
    def test_propose_commits_on_all_members(self):
        cluster = RaftCluster(n=3)
        cluster.start()
        cluster.run(50)
        leader = cluster.leader()
        committed = []
        leader.propose("write-x", on_committed=committed.append)
        cluster.run(200)
        assert len(committed) == 1
        assert committed[0].command == "write-x"
        for recorder in cluster.applied.values():
            assert "write-x" in recorder.commands

    def test_commit_requires_one_round_trip(self):
        cluster = RaftCluster(n=3, rtt_ms=10.0)
        cluster.start()
        cluster.run(50)
        leader = cluster.leader()
        start = cluster.kernel.now
        done = []
        leader.propose("cmd", on_committed=lambda e: done.append(
            cluster.kernel.now - start))
        cluster.run(100)
        # One WAN round trip (10 ms); allow small scheduling slack.
        assert done and done[0] == pytest.approx(10.0, abs=1.0)

    def test_propose_on_follower_returns_none(self):
        cluster = RaftCluster(n=3)
        cluster.start()
        cluster.run(50)
        assert cluster.members["n1"].propose("nope") is None

    def test_commands_apply_in_order_everywhere(self):
        cluster = RaftCluster(n=5)
        cluster.start()
        cluster.run(50)
        leader = cluster.leader()
        for i in range(10):
            leader.propose(f"cmd{i}")
        cluster.run(500)
        expected = [f"cmd{i}" for i in range(10)]
        for recorder in cluster.applied.values():
            assert recorder.commands == expected

    def test_commit_with_minority_crashed(self):
        cluster = RaftCluster(n=5)
        cluster.start()
        cluster.run(50)
        cluster.hosts["n3"].crash()
        cluster.hosts["n4"].crash()
        committed = []
        cluster.leader().propose("still-works",
                                 on_committed=committed.append)
        cluster.run(200)
        assert committed

    def test_no_commit_without_majority(self):
        cluster = RaftCluster(n=5)
        cluster.start()
        cluster.run(50)
        for node_id in ("n2", "n3", "n4"):
            cluster.hosts[node_id].crash()
        committed = []
        cluster.leader().propose("stuck", on_committed=committed.append)
        cluster.run(1000)
        assert committed == []

    def test_single_member_group_commits_instantly(self):
        cluster = RaftCluster(n=1)
        cluster.start()
        cluster.run(10)
        committed = []
        cluster.leader().propose("solo", on_committed=committed.append)
        cluster.run(10)
        assert committed


class TestElectionsAndFailover:
    def test_new_leader_elected_after_crash(self):
        cluster = RaftCluster(n=3, seed=3)
        cluster.start()
        cluster.run(100)
        cluster.hosts["n0"].crash()
        cluster.run(3000)
        leader = cluster.leader()
        assert leader is not None
        assert leader.node_id != "n0"
        assert leader.current_term > 1

    def test_committed_entries_survive_failover(self):
        cluster = RaftCluster(n=3, seed=5)
        cluster.start()
        cluster.run(100)
        committed = []
        cluster.leader().propose("durable", on_committed=committed.append)
        cluster.run(200)
        assert committed
        cluster.hosts["n0"].crash()
        cluster.run(3000)
        new_leader = cluster.leader()
        assert new_leader is not None
        new_committed = []
        new_leader.propose("after-failover",
                           on_committed=new_committed.append)
        cluster.run(500)
        assert new_committed
        for member in cluster.live_members():
            commands = cluster.applied[member.node_id].commands
            assert commands.index("durable") < \
                commands.index("after-failover")

    def test_noop_committed_by_new_leader(self):
        cluster = RaftCluster(n=3, seed=5)
        cluster.start()
        cluster.run(100)
        cluster.hosts["n0"].crash()
        cluster.run(3000)
        leader = cluster.leader()
        noops = [e for e in leader.log.all_entries()
                 if isinstance(e.command, RaftNoop)]
        assert noops
        assert leader.commit_index >= noops[-1].index

    def test_vote_payloads_delivered_to_new_leader(self):
        payloads = {}

        cluster = RaftCluster(n=3, seed=9)
        for node_id, member in cluster.members.items():
            member.vote_payload_fn = lambda nid=node_id: f"pending-{nid}"
        cluster.start()
        cluster.run(100)
        cluster.leadership_events.clear()
        cluster.hosts["n0"].crash()
        cluster.run(3000)
        assert cluster.leadership_events
        __, winner, __, vote_payloads = cluster.leadership_events[-1]
        # Winner's own payload plus at least one voter's payload.
        assert vote_payloads[winner] == f"pending-{winner}"
        assert len(vote_payloads) >= 2
        for voter, payload in vote_payloads.items():
            assert payload == f"pending-{voter}"

    def test_old_leader_steps_down_on_higher_term(self):
        cluster = RaftCluster(n=3, seed=11)
        cluster.start()
        cluster.run(100)
        cluster.hosts["n0"].crash()
        cluster.run(3000)
        cluster.hosts["n0"].recover()
        cluster.run(2000)
        n0 = cluster.members["n0"]
        assert n0.state == FOLLOWER
        assert n0.current_term >= 2

    def test_recovered_node_catches_up_log(self):
        cluster = RaftCluster(n=3, seed=13)
        cluster.start()
        cluster.run(100)
        cluster.hosts["n2"].crash()
        for i in range(5):
            cluster.leader().propose(f"missed-{i}")
        cluster.run(500)
        cluster.hosts["n2"].recover()
        cluster.run(2000)
        commands = cluster.applied["n2"].commands
        for i in range(5):
            assert f"missed-{i}" in commands

    def test_at_most_one_leader_per_term(self):
        # Run a churny scenario and assert election safety throughout.
        cluster = RaftCluster(n=5, bootstrap=None, seed=17)
        cluster.start()
        cluster.run(2000)
        cluster.hosts["n0"].crash()
        cluster.run(2000)
        cluster.hosts["n0"].recover()
        cluster.hosts["n1"].crash()
        cluster.run(2000)
        terms_seen = {}
        for at, node_id, term, __ in cluster.leadership_events:
            assert terms_seen.setdefault(term, node_id) == node_id, \
                f"two leaders in term {term}"

    def test_partition_minority_leader_cannot_commit(self):
        cluster = RaftCluster(n=3, seed=19)
        cluster.start()
        cluster.run(100)
        # Cut the leader off from both followers.
        cluster.network.partition("n0", "n1")
        cluster.network.partition("n0", "n2")
        committed = []
        cluster.members["n0"].propose("isolated",
                                      on_committed=committed.append)
        cluster.run(3000)
        assert committed == []
        # Majority side elected its own leader.
        majority_leader = [m for m in (cluster.members["n1"],
                                       cluster.members["n2"])
                           if m.is_leader]
        assert majority_leader

    def test_log_divergence_repaired_after_heal(self):
        cluster = RaftCluster(n=3, seed=23)
        cluster.start()
        cluster.run(100)
        cluster.network.partition("n0", "n1")
        cluster.network.partition("n0", "n2")
        cluster.members["n0"].propose("orphan")  # will be overwritten
        cluster.run(3000)
        new_leader = cluster.leader()
        assert new_leader.node_id != "n0"
        committed = []
        new_leader.propose("winner", on_committed=committed.append)
        cluster.run(500)
        assert committed
        cluster.network.heal_all()
        cluster.run(3000)
        n0_commands = cluster.applied["n0"].commands
        assert "winner" in n0_commands
        assert "orphan" not in n0_commands
