"""Unit tests for participant-side behaviour, driven through a small
cluster with direct message injection."""

import pytest

from repro.bench.cluster import CarouselCluster, DeploymentSpec
from repro.core.config import BASIC, FAST, CarouselConfig
from repro.core.messages import (
    PrepareQuery,
    ReadPrepareRequest,
    Writeback,
)
from repro.core.occ import ABORT, PREPARED
from repro.sim.topology import uniform_topology
from repro.txn import TID, TransactionSpec


def make_cluster(mode=BASIC):
    spec = DeploymentSpec(topology=uniform_topology(3, 2.0),
                          n_partitions=3, seed=6, jitter_fraction=0.0)
    cluster = CarouselCluster(spec, CarouselConfig(mode=mode))
    cluster.run(200)
    return cluster


def leader_component(cluster, pid="p1"):
    return cluster.leader_of(pid).partitions[pid]


def rp_request(tid, pid, coordinator, reads=("k",), writes=("k",),
               fast=False, want_read=True):
    msg = ReadPrepareRequest(
        tid=tid, partition_id=pid, coordinator_id=coordinator,
        coord_group_id="p0", read_keys=tuple(reads),
        write_keys=tuple(writes), want_read=want_read, fast_path=fast)
    msg.src = "client-injected"
    return msg


class TestLeaderPrepare:
    def test_prepare_adds_pending_and_replicates(self):
        cluster = make_cluster()
        component = leader_component(cluster)
        coordinator = cluster.leader_of("p0").node_id
        tid = TID("c", 1)
        # Use a real client node id as the injected source.
        msg = rp_request(tid, "p1", coordinator)
        msg.src = cluster.clients[0].node_id
        component.on_read_prepare(msg)
        assert tid in component.pending
        assert component.pending.get(tid).provisional
        cluster.run(50)  # replication round trip
        assert tid in component.prepare_log
        assert not component.pending.get(tid).provisional
        assert component.prepares_attempted == 1

    def test_conflicting_prepare_rejected(self):
        cluster = make_cluster()
        component = leader_component(cluster)
        coordinator = cluster.leader_of("p0").node_id
        client = cluster.clients[0].node_id
        first = rp_request(TID("c", 1), "p1", coordinator)
        first.src = client
        component.on_read_prepare(first)
        second = rp_request(TID("c", 2), "p1", coordinator)
        second.src = client
        component.on_read_prepare(second)
        cluster.run(50)
        assert component.prepare_log[TID("c", 1)].decision == PREPARED
        assert component.prepare_log[TID("c", 2)].decision == ABORT
        assert component.prepares_rejected == 1

    def test_retransmission_does_not_duplicate(self):
        cluster = make_cluster()
        component = leader_component(cluster)
        coordinator = cluster.leader_of("p0").node_id
        client = cluster.clients[0].node_id
        tid = TID("c", 1)
        for __ in range(3):
            msg = rp_request(tid, "p1", coordinator)
            msg.src = client
            component.on_read_prepare(msg)
        cluster.run(50)
        assert component.prepares_attempted == 1
        # Exactly one prepare record replicated for this tid.
        member = component.member
        prepare_entries = [
            e for e in member.log.all_entries()
            if getattr(e.command, "tid", None) == tid]
        assert len(prepare_entries) == 1

    def test_follower_ignores_non_fast_request(self):
        cluster = make_cluster()
        pid = "p1"
        info = cluster.directory.lookup(pid)
        follower_id = info.followers()[0]
        follower = cluster.servers[follower_id].partitions[pid]
        msg = rp_request(TID("c", 5), pid,
                         cluster.leader_of("p0").node_id,
                         want_read=False, fast=False)
        msg.src = cluster.clients[0].node_id
        follower.on_read_prepare(msg)
        assert TID("c", 5) not in follower.pending
        assert follower.fast_votes_cast == 0

    def test_follower_fast_votes_and_tracks_provisional(self):
        cluster = make_cluster(mode=FAST)
        pid = "p1"
        info = cluster.directory.lookup(pid)
        follower_id = info.followers()[0]
        follower = cluster.servers[follower_id].partitions[pid]
        msg = rp_request(TID("c", 6), pid,
                         cluster.leader_of("p0").node_id,
                         want_read=False, fast=True)
        msg.src = cluster.clients[0].node_id
        follower.on_read_prepare(msg)
        assert follower.fast_votes_cast == 1
        entry = follower.pending.get(TID("c", 6))
        assert entry is not None and entry.provisional


class TestWriteback:
    def test_commit_applies_once_despite_duplicates(self):
        cluster = make_cluster()
        pid = "p1"
        component = leader_component(cluster, pid)
        coordinator_server = cluster.leader_of("p0")
        tid = TID("c", 9)
        for __ in range(3):
            wb = Writeback(tid=tid, partition_id=pid, decision="commit",
                           writes={"wkey": "v"})
            wb.src = coordinator_server.node_id
            component.on_writeback(wb)
            cluster.run(30)
        assert component.store.read("wkey").value == "v"
        assert component.store.read("wkey").version == 1
        assert component.resolved[tid] == "commit"

    def test_abort_writeback_clears_pending(self):
        cluster = make_cluster()
        pid = "p1"
        component = leader_component(cluster, pid)
        coordinator = cluster.leader_of("p0").node_id
        client = cluster.clients[0].node_id
        tid = TID("c", 10)
        msg = rp_request(tid, pid, coordinator)
        msg.src = client
        component.on_read_prepare(msg)
        cluster.run(30)
        assert tid in component.pending
        wb = Writeback(tid=tid, partition_id=pid, decision="abort")
        wb.src = coordinator
        component.on_writeback(wb)
        cluster.run(30)
        assert tid not in component.pending
        assert component.resolved[tid] == "abort"

    def test_writeback_before_prepare_blocks_late_prepare(self):
        # An abort writeback can overtake the prepare; the late prepare
        # must observe the resolution and answer ABORT.
        cluster = make_cluster()
        pid = "p1"
        component = leader_component(cluster, pid)
        coordinator = cluster.leader_of("p0").node_id
        tid = TID("c", 11)
        wb = Writeback(tid=tid, partition_id=pid, decision="abort")
        wb.src = coordinator
        component.on_writeback(wb)
        cluster.run(30)
        msg = rp_request(tid, pid, coordinator)
        msg.src = cluster.clients[0].node_id
        component.on_read_prepare(msg)
        cluster.run(30)
        assert tid not in component.pending


class TestPrepareQuery:
    def test_query_replays_known_decision(self):
        cluster = make_cluster()
        pid = "p1"
        component = leader_component(cluster, pid)
        coord_server = cluster.leader_of("p0")
        client = cluster.clients[0].node_id
        tid = TID("c", 12)
        msg = rp_request(tid, pid, coord_server.node_id)
        msg.src = client
        component.on_read_prepare(msg)
        cluster.run(50)
        # Drop a fresh query at the leader: the coordinator's component on
        # the p0 leader should receive (and record) the prepare result.
        query = PrepareQuery(tid=tid, partition_id=pid,
                             coordinator_id=coord_server.node_id,
                             coord_group_id="p0",
                             read_keys=("k",), write_keys=("k",))
        query.src = coord_server.node_id
        component.on_prepare_query(query)
        cluster.run(30)
        state = coord_server.coordinator.states.get(tid)
        assert state is not None
        assert state.decisions[pid][0] == PREPARED

    def test_query_for_unknown_tid_prepares_fresh(self):
        cluster = make_cluster()
        pid = "p1"
        component = leader_component(cluster, pid)
        coord_server = cluster.leader_of("p0")
        tid = TID("c", 13)
        query = PrepareQuery(tid=tid, partition_id=pid,
                             coordinator_id=coord_server.node_id,
                             coord_group_id="p0",
                             read_keys=("q",), write_keys=("q",))
        query.src = coord_server.node_id
        component.on_prepare_query(query)
        cluster.run(50)
        assert tid in component.prepare_log
        state = coord_server.coordinator.states.get(tid)
        assert state is not None and pid in state.decisions
