"""Integration tests for the Carousel protocol (Basic and Fast)."""

import pytest

from repro.bench.cluster import CarouselCluster, DeploymentSpec
from repro.core.config import BASIC, FAST, CarouselConfig
from repro.sim.topology import ec2_five_regions, uniform_topology
from repro.txn import (
    REASON_CLIENT_ABORT,
    REASON_COMMITTED,
    REASON_CONFLICT,
    TransactionSpec,
)


def make_cluster(mode=BASIC, seed=1, topology=None, **config_kwargs):
    spec = DeploymentSpec(seed=seed, jitter_fraction=0.0,
                          topology=topology or ec2_five_regions())
    cluster = CarouselCluster(spec, CarouselConfig(mode=mode,
                                                   **config_kwargs))
    cluster.run(500)  # settle: followers adopt the bootstrap term
    return cluster


def submit_and_run(cluster, client, spec, ms=3000):
    results = []
    client.submit(spec, results.append)
    cluster.run(ms)
    assert results, "transaction did not complete"
    return results[0]


def transfer_spec(a="alice", b="bob", amount=5):
    def compute(reads):
        return {a: (reads[a] or 0) - amount, b: (reads[b] or 0) + amount}
    return TransactionSpec(read_keys=(a, b), write_keys=(a, b),
                           compute_writes=compute, txn_type="transfer")


@pytest.mark.parametrize("mode", [BASIC, FAST])
class TestCommitPaths:
    def test_multi_partition_commit(self, mode):
        cluster = make_cluster(mode)
        cluster.populate({"alice": 100, "bob": 0})
        result = submit_and_run(cluster, cluster.client("us-west"),
                                transfer_spec())
        assert result.committed
        assert result.reason == REASON_COMMITTED
        readback = submit_and_run(
            cluster, cluster.client("europe"),
            TransactionSpec(read_keys=("alice", "bob"), write_keys=()))
        assert readback.reads == {"alice": 95, "bob": 5}

    def test_writes_replicated_to_all_replicas(self, mode):
        cluster = make_cluster(mode)
        result = submit_and_run(
            cluster, cluster.client("asia"),
            TransactionSpec(read_keys=("k1",), write_keys=("k1",),
                            compute_writes=lambda r: {"k1": "v1"}))
        assert result.committed
        cluster.run(3000)  # let the writeback phase finish everywhere
        pid = cluster.ring.partition_for("k1")
        for store in cluster.stores_of(pid):
            assert store.read("k1").value == "v1"

    def test_client_abort_after_reads(self, mode):
        cluster = make_cluster(mode)
        cluster.populate({"acct": 3})

        def refuse(reads):
            return None  # application decides to abort (§3.2)

        result = submit_and_run(
            cluster, cluster.client("us-east"),
            TransactionSpec(read_keys=("acct",), write_keys=("acct",),
                            compute_writes=refuse))
        assert not result.committed
        assert result.reason == REASON_CLIENT_ABORT
        cluster.run(2000)
        pid = cluster.ring.partition_for("acct")
        assert cluster.leader_of(pid).partitions[pid].store.read(
            "acct").value == 3

    def test_partial_write_set(self, mode):
        # The client may supply values for only some declared write keys.
        cluster = make_cluster(mode)
        cluster.populate({"w1": "old1", "w2": "old2"})
        result = submit_and_run(
            cluster, cluster.client("us-west"),
            TransactionSpec(read_keys=(), write_keys=("w1", "w2"),
                            compute_writes=lambda r: {"w1": "new1"}))
        assert result.committed
        cluster.run(2000)
        readback = submit_and_run(
            cluster, cluster.client("us-west"),
            TransactionSpec(read_keys=("w1", "w2"), write_keys=()))
        assert readback.reads == {"w1": "new1", "w2": "old2"}

    def test_read_only_one_roundtrip(self, mode):
        cluster = make_cluster(mode)
        cluster.populate({"r1": "x"})
        client = cluster.client("us-west")
        result = submit_and_run(
            cluster, client,
            TransactionSpec(read_keys=("r1",), write_keys=()))
        assert result.committed
        pid = cluster.ring.partition_for("r1")
        leader_dc = cluster.directory.lookup(pid).leader_datacenter()
        rtt = cluster.topology.rtt("us-west", leader_dc)
        assert result.latency_ms <= rtt + 2.0

    def test_missing_keys_read_as_none(self, mode):
        cluster = make_cluster(mode)
        result = submit_and_run(
            cluster, cluster.client("asia"),
            TransactionSpec(read_keys=("never-written",), write_keys=()))
        assert result.committed
        assert result.reads == {"never-written": None}

    def test_empty_transaction_commits_immediately(self, mode):
        cluster = make_cluster(mode)
        result = submit_and_run(
            cluster, cluster.client("asia"),
            TransactionSpec(read_keys=(), write_keys=()), ms=10)
        assert result.committed
        assert result.latency_ms == 0.0

    def test_sequential_rmw_serializes(self, mode):
        cluster = make_cluster(mode)
        client = cluster.client("europe")

        def increment(reads):
            return {"ctr": (reads["ctr"] or 0) + 1}

        for __ in range(5):
            result = submit_and_run(
                cluster, client,
                TransactionSpec(read_keys=("ctr",), write_keys=("ctr",),
                                compute_writes=increment))
            assert result.committed
        final = submit_and_run(
            cluster, client,
            TransactionSpec(read_keys=("ctr",), write_keys=()))
        assert final.reads == {"ctr": 5}


class TestConflicts:
    def test_concurrent_write_write_conflict_aborts_one(self):
        cluster = make_cluster(BASIC)
        cluster.populate({"hot": 0})
        results = []
        spec = TransactionSpec(
            read_keys=("hot",), write_keys=("hot",),
            compute_writes=lambda r: {"hot": (r["hot"] or 0) + 1})
        spec2 = TransactionSpec(
            read_keys=("hot",), write_keys=("hot",),
            compute_writes=lambda r: {"hot": (r["hot"] or 0) + 1})
        cluster.client("us-west").submit(spec, results.append)
        cluster.client("europe").submit(spec2, results.append)
        cluster.run(5000)
        assert len(results) == 2
        outcomes = sorted(r.committed for r in results)
        assert outcomes == [False, True]
        aborted = next(r for r in results if not r.committed)
        assert aborted.reason == REASON_CONFLICT
        cluster.run(3000)
        final = submit_and_run(
            cluster, cluster.client("us-west"),
            TransactionSpec(read_keys=("hot",), write_keys=()))
        assert final.reads == {"hot": 1}

    def test_read_only_aborts_against_pending_writer(self):
        cluster = make_cluster(BASIC)
        results = []
        writer = TransactionSpec(
            read_keys=("shared",), write_keys=("shared",),
            compute_writes=lambda r: {"shared": 1})
        reader = TransactionSpec(read_keys=("shared",), write_keys=())
        pid = cluster.ring.partition_for("shared")
        leader_dc = cluster.directory.lookup(pid).leader_datacenter()
        # Start the writer from the leader's own datacenter so its prepare
        # lands first, then read from far away while it is still pending.
        cluster.client(leader_dc).submit(writer, results.append)
        cluster.run(2.0)
        cluster.client(leader_dc).submit(reader, results.append)
        cluster.run(8000)
        reader_result = next(r for r in results
                             if r.txn_type == "generic" and not r.reads
                             or not r.committed)
        # Either the read-only aborted on the pending writer, or (timing)
        # both completed; assert no wrong value was ever returned.
        for r in results:
            if r.committed and "shared" in r.reads:
                assert r.reads["shared"] in (None, 1)

    def test_disjoint_transactions_both_commit(self):
        cluster = make_cluster(BASIC)
        results = []
        a = TransactionSpec(read_keys=("ka",), write_keys=("ka",),
                            compute_writes=lambda r: {"ka": 1})
        b = TransactionSpec(read_keys=("kb",), write_keys=("kb",),
                            compute_writes=lambda r: {"kb": 2})
        cluster.client("us-west").submit(a, results.append)
        cluster.client("asia").submit(b, results.append)
        cluster.run(5000)
        assert all(r.committed for r in results)


class TestLatencyBounds:
    """The paper's headline WANRT claims, checked against the simulator."""

    def test_basic_at_most_two_wanrt(self):
        cluster = make_cluster(BASIC)
        client = cluster.client("us-west")
        result = submit_and_run(cluster, client, transfer_spec())
        assert result.committed
        worst_rtt = max(cluster.topology.rtt("us-west", dc)
                        for dc in cluster.topology.datacenters)
        assert result.latency_ms <= 2 * worst_rtt + 5.0

    def test_fast_local_replica_txn_one_wanrt(self):
        """With CPC and local replicas for every key, one WANRT (§4.4.1)."""
        cluster = make_cluster(FAST)
        # Find a key whose partition has a replica in the client's DC.
        client_dc = "us-west"
        key = None
        for i in range(1000):
            candidate = f"probe{i}"
            pid = cluster.ring.partition_for(candidate)
            info = cluster.directory.lookup(pid)
            if info.replica_in(client_dc) and \
                    info.leader_datacenter() != client_dc:
                key = candidate
                break
        assert key is not None
        pid = cluster.ring.partition_for(key)
        info = cluster.directory.lookup(pid)
        result = submit_and_run(
            cluster, cluster.client(client_dc),
            TransactionSpec(read_keys=(key,), write_keys=(key,),
                            compute_writes=lambda r: {key: "v"}))
        assert result.committed
        # One WANRT here means: no more than the worst single round trip
        # among this partition's replicas (the CPC fast path spans all of
        # them), plus intra-DC slack.
        worst_leg = max(cluster.topology.rtt(client_dc, dc)
                        for dc in info.datacenters)
        assert result.latency_ms <= worst_leg + 5.0

    def test_fast_is_not_slower_than_basic_for_rpt(self):
        latencies = {}
        for mode in (BASIC, FAST):
            cluster = make_cluster(mode, seed=3)
            cluster.populate({"alice": 1, "bob": 2})
            result = submit_and_run(cluster, cluster.client("us-west"),
                                    transfer_spec())
            assert result.committed
            latencies[mode] = result.latency_ms
        assert latencies[FAST] <= latencies[BASIC] + 1.0


class TestStaleLocalReads:
    def test_stale_follower_read_aborts(self):
        """A lagging local replica causes a stale-read abort (§4.4.1) —
        never a wrong commit."""
        cluster = make_cluster(FAST)
        client_dc = "us-west"
        key = None
        for i in range(1000):
            candidate = f"stale{i}"
            pid = cluster.ring.partition_for(candidate)
            info = cluster.directory.lookup(pid)
            if info.replica_in(client_dc) and \
                    info.leader_datacenter() != client_dc:
                key = candidate
                pid_key = pid
                break
        assert key is not None
        info = cluster.directory.lookup(pid_key)
        local_replica = info.replica_in(client_dc)
        # Install a newer version at the leader than at the local replica,
        # simulating a writeback the follower has not applied yet.
        for server in cluster.replicas_of(pid_key):
            version = 2 if server.node_id != local_replica else 1
            server.partitions[pid_key].store.write(key, f"v{version}",
                                                   version)
        result = submit_and_run(
            cluster, cluster.client(client_dc),
            TransactionSpec(read_keys=(key,), write_keys=(key,),
                            compute_writes=lambda r: {key: "new"}))
        # The local replica answers first with the stale version; the
        # coordinator must detect the mismatch and abort.
        assert not result.committed
        assert result.reason == "stale_read"
