"""Span-based distributed tracing in virtual time.

The tracer attaches to a :class:`~repro.sim.kernel.Kernel` and observes a
simulation without perturbing it: it consumes no randomness, schedules no
events, and changes no protocol state, so a traced run is byte-for-byte
identical (in virtual time) to an untraced one.

Two kinds of records are collected per transaction:

* **Spans** — protocol phases (read, prepare, CPC fast/slow, commit,
  writeback, Raft replication) opened and closed by instrumentation hooks
  in the protocol layers.
* **Message annotations** — one :class:`MessageAnn` per network send, with
  source/destination datacenter, wire bytes, and whether the hop crossed a
  datacenter boundary.

Causal provenance
-----------------
Every kernel event carries a :class:`TraceCtx`: the transaction it belongs
to, the number of cross-datacenter hops on the causal chain that produced
it, and the last message on that chain.  The kernel captures the current
context into each event it schedules and restores it before running the
event's callback; the network derives a child context for each delivery
(incrementing ``wan_hops`` on cross-DC hops).  When a transaction
completes, the context of the completing event *is* the realized critical
path, and its ``wan_hops / 2`` is the transaction's **sequential WAN
round-trip count** — the quantity the Carousel paper's entire argument is
about (Basic = 2, CPC fast path = 1, §4).

Joins (an event that logically waits on *several* chains but is triggered
by a timer, like TAPIR's fast-path timeout) are handled explicitly with
:meth:`Tracer.absorb`, which deepens the current context to the deepest
dependency.

The disabled default, :data:`NULL_TRACER`, makes every hook a no-op so the
simulator's hot path pays a single ``tracer.enabled`` attribute check.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

#: Span kinds used by the built-in instrumentation.
SPAN_READ = "read"
SPAN_READ_ONLY = "read-only"
SPAN_PREPARE = "prepare"
SPAN_CPC_FAST = "cpc-fast"
SPAN_CPC_SLOW = "cpc-slow"
SPAN_COMMIT = "commit"
SPAN_WRITEBACK = "writeback"
SPAN_RAFT = "raft-replication"
#: Fault-injection events (crash/recover/partition/heal/link faults);
#: recorded with ``tid=None`` so they land in ``orphan_spans`` and render
#: alongside — not inside — protocol transactions.
SPAN_NEMESIS = "nemesis"
#: Recovery activity: WAL restore after a power cycle and §4.3.3
#: leader-failover participant recovery; recorded with ``tid=None``.
SPAN_RECOVERY = "recovery"


class TraceCtx:
    """Causal context carried by kernel events.

    ``wan_hops`` counts the cross-datacenter message hops on the causal
    chain from the transaction's submission to this point; ``last_msg`` is
    the :class:`MessageAnn` of the chain's most recent message (its
    ``parent`` links form the full chain).
    """

    __slots__ = ("tid", "wan_hops", "last_msg")

    def __init__(self, tid: Any, wan_hops: int = 0,
                 last_msg: Optional["MessageAnn"] = None):
        self.tid = tid
        self.wan_hops = wan_hops
        self.last_msg = last_msg

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TraceCtx {self.tid} hops={self.wan_hops}>"


class MessageAnn:
    """Annotation of one network send: endpoints, bytes, WAN classification.

    ``parent`` is the annotation of the previous message on the causal
    chain (or ``None`` at the chain's root); ``wan_hops`` is the chain
    depth *including* this hop.
    """

    __slots__ = ("msg_id", "parent", "tid", "msg_type", "src", "src_dc",
                 "dst", "dst_dc", "size_bytes", "cross_dc", "send_ms",
                 "recv_ms", "wan_hops")

    def __init__(self, msg_id: int, parent: Optional["MessageAnn"],
                 tid: Any, msg_type: str, src: str, src_dc: str,
                 dst: str, dst_dc: str, size_bytes: int, cross_dc: bool,
                 send_ms: float, recv_ms: float, wan_hops: int):
        self.msg_id = msg_id
        self.parent = parent
        self.tid = tid
        self.msg_type = msg_type
        self.src = src
        self.src_dc = src_dc
        self.dst = dst
        self.dst_dc = dst_dc
        self.size_bytes = size_bytes
        self.cross_dc = cross_dc
        self.send_ms = send_ms
        self.recv_ms = recv_ms
        self.wan_hops = wan_hops

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        span = "WAN" if self.cross_dc else "local"
        return (f"<MessageAnn #{self.msg_id} {self.msg_type} "
                f"{self.src}->{self.dst} [{span}] hops={self.wan_hops}>")


class Span:
    """One traced protocol phase on one node.

    ``end_ms`` is ``None`` while the span is open.  A *point* span has
    ``start_ms == end_ms``.
    """

    __slots__ = ("span_id", "tid", "kind", "node", "dc", "start_ms",
                 "end_ms", "detail")

    def __init__(self, span_id: int, tid: Any, kind: str, node: str,
                 dc: str, start_ms: float,
                 end_ms: Optional[float] = None, detail: str = ""):
        self.span_id = span_id
        self.tid = tid
        self.kind = kind
        self.node = node
        self.dc = dc
        self.start_ms = start_ms
        self.end_ms = end_ms
        self.detail = detail

    @property
    def duration_ms(self) -> Optional[float]:
        """Span length in ms, or ``None`` while still open."""
        if self.end_ms is None:
            return None
        return self.end_ms - self.start_ms

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Span {self.kind} @{self.node} "
                f"[{self.start_ms:.1f}..{self.end_ms}]>")


class TxnTrace:
    """Everything recorded about one traced transaction."""

    def __init__(self, tid: Any, system: str = "", client: str = "",
                 dc: str = "", start_ms: float = 0.0):
        self.tid = tid
        self.system = system
        self.client = client
        self.dc = dc
        self.start_ms = start_ms
        self.end_ms: Optional[float] = None
        self.committed: Optional[bool] = None
        self.reason = ""
        #: Cross-DC hop count of the completing event's context, set at
        #: ``txn_end``; ``None`` until the transaction completes.
        self.wan_hops: Optional[int] = None
        #: Last message on the realized critical path.
        self.final_msg: Optional[MessageAnn] = None
        self.spans: List[Span] = []
        self.messages: List[MessageAnn] = []

    # -- derived quantities --------------------------------------------
    def latency_ms(self) -> Optional[float]:
        """Submission-to-completion latency, or ``None`` if unfinished."""
        if self.end_ms is None:
            return None
        return self.end_ms - self.start_ms

    def critical_path(self) -> List[MessageAnn]:
        """The realized chain of messages that gated completion, in send
        order (root first)."""
        path: List[MessageAnn] = []
        ann = self.final_msg
        while ann is not None:
            path.append(ann)
            ann = ann.parent
        path.reverse()
        return path

    def sequential_wan_hops(self) -> int:
        """Cross-DC hops on the critical path (the context counter when
        set, else a walk of the message chain)."""
        if self.wan_hops is not None:
            return self.wan_hops
        return sum(1 for ann in self.critical_path() if ann.cross_dc)

    def sequential_wanrt(self) -> float:
        """Sequential wide-area round trips: critical-path WAN hops / 2."""
        return self.sequential_wan_hops() / 2.0

    def wanrt_between(self, start_ms: float, end_ms: float) -> float:
        """Sequential WANRT contributed by critical-path messages sent and
        received within ``[start_ms, end_ms]`` (e.g. one phase span)."""
        hops = sum(1 for ann in self.critical_path()
                   if ann.cross_dc
                   and ann.send_ms >= start_ms - 1e-9
                   and ann.recv_ms <= end_ms + 1e-9)
        return hops / 2.0

    # -- span lookups ---------------------------------------------------
    def span(self, kind: str) -> Optional[Span]:
        """The first span of ``kind``, or ``None``."""
        for span in self.spans:
            if span.kind == kind:
                return span
        return None

    def spans_of(self, kind: str) -> List[Span]:
        """All spans of ``kind``, in creation order."""
        return [span for span in self.spans if span.kind == kind]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TxnTrace {self.tid} {self.system} "
                f"spans={len(self.spans)} msgs={len(self.messages)}>")


class NullTracer:
    """Disabled tracer: every hook is a cheap no-op.

    A kernel's default tracer is the shared :data:`NULL_TRACER` instance,
    so with tracing off the simulator's hot path pays one attribute check
    (``tracer.enabled``) per guarded site and nothing else.
    """

    enabled = False

    def __init__(self) -> None:
        self.current: Optional[TraceCtx] = None

    def txn_begin(self, tid: Any, system: str = "", client: str = "",
                  dc: str = "") -> Optional[TxnTrace]:
        """No-op; returns ``None``."""
        return None

    def txn_end(self, tid: Any, committed: bool, reason: str = "") -> None:
        """No-op."""

    def span_begin(self, tid: Any, kind: str, node: str = "",
                   dc: str = "", detail: str = "") -> Optional[Span]:
        """No-op; returns ``None``."""
        return None

    def span_end(self, span: Optional[Span],
                 detail: Optional[str] = None) -> None:
        """No-op (and ``None``-safe when tracing was off at span start)."""

    def add_span(self, tid: Any, kind: str, node: str = "", dc: str = "",
                 start_ms: Optional[float] = None,
                 detail: str = "") -> Optional[Span]:
        """No-op; returns ``None``."""
        return None

    def point(self, tid: Any, kind: str, node: str = "", dc: str = "",
              detail: str = "") -> Optional[Span]:
        """No-op; returns ``None``."""
        return None

    def on_send(self, msg: Any, src: Any, dst: Any,
                delay: float) -> Optional[TraceCtx]:
        """No-op; returns ``None``."""
        return None

    def absorb(self, ctx: Optional[TraceCtx]) -> None:
        """No-op."""


#: The shared disabled tracer installed on every kernel by default.
NULL_TRACER = NullTracer()


class Tracer(NullTracer):
    """A recording tracer.  Attach to a kernel, run, inspect/export.

    Usage::

        tracer = Tracer(cluster.kernel)     # installs itself
        ... run the workload ...
        for txn in tracer.transactions():
            print(txn.sequential_wanrt())
    """

    enabled = True

    def __init__(self, kernel: Any = None):
        super().__init__()
        self.kernel: Any = None
        self.txns: Dict[Any, TxnTrace] = {}
        #: Spans/messages with no (or an unknown) transaction id, e.g.
        #: Raft no-op replication or background heartbeats.
        self.orphan_spans: List[Span] = []
        self.orphan_messages: List[MessageAnn] = []
        self._next_msg_id = 0
        self._next_span_id = 0
        if kernel is not None:
            self.attach(kernel)

    # -- lifecycle ------------------------------------------------------
    def attach(self, kernel: Any) -> "Tracer":
        """Install this tracer on ``kernel`` and start observing."""
        self.kernel = kernel
        kernel.tracer = self
        return self

    def detach(self) -> None:
        """Restore the kernel's disabled default tracer."""
        if self.kernel is not None and self.kernel.tracer is self:
            self.kernel.tracer = NULL_TRACER

    def _now(self) -> float:
        return self.kernel.now if self.kernel is not None else 0.0

    # -- transaction lifecycle -----------------------------------------
    def txn_begin(self, tid: Any, system: str = "", client: str = "",
                  dc: str = "") -> TxnTrace:
        """Open a transaction trace and root a fresh causal context."""
        trace = TxnTrace(tid=tid, system=system, client=client, dc=dc,
                         start_ms=self._now())
        self.txns[tid] = trace
        self.current = TraceCtx(tid, 0, None)
        return trace

    def txn_end(self, tid: Any, committed: bool, reason: str = "") -> None:
        """Close a transaction trace; the current context's WAN-hop depth
        becomes the transaction's sequential critical-path count."""
        trace = self.txns.get(tid)
        if trace is None:
            return
        trace.end_ms = self._now()
        trace.committed = committed
        trace.reason = reason
        ctx = self.current
        if ctx is not None and ctx.tid == tid:
            trace.wan_hops = ctx.wan_hops
            trace.final_msg = ctx.last_msg

    # -- spans ----------------------------------------------------------
    def _record_span(self, span: Span) -> Span:
        trace = self.txns.get(span.tid)
        if trace is not None:
            trace.spans.append(span)
        else:
            self.orphan_spans.append(span)
        return span

    def span_begin(self, tid: Any, kind: str, node: str = "",
                   dc: str = "", detail: str = "") -> Span:
        """Open a span at the current virtual time."""
        span = Span(self._next_span_id, tid, kind, node, dc,
                    start_ms=self._now(), detail=detail)
        self._next_span_id += 1
        return self._record_span(span)

    def span_end(self, span: Optional[Span],
                 detail: Optional[str] = None) -> None:
        """Close ``span`` now (``None``-safe; idempotent)."""
        if span is None:
            return
        if span.end_ms is None:
            span.end_ms = self._now()
        if detail is not None:
            span.detail = detail

    def add_span(self, tid: Any, kind: str, node: str = "", dc: str = "",
                 start_ms: Optional[float] = None,
                 detail: str = "") -> Span:
        """Record a completed span retroactively, ending now."""
        now = self._now()
        start = now if start_ms is None else start_ms
        span = Span(self._next_span_id, tid, kind, node, dc,
                    start_ms=start, end_ms=now, detail=detail)
        self._next_span_id += 1
        return self._record_span(span)

    def point(self, tid: Any, kind: str, node: str = "", dc: str = "",
              detail: str = "") -> Span:
        """Record an instantaneous (zero-duration) span."""
        return self.add_span(tid, kind, node=node, dc=dc, detail=detail)

    # -- network hook ---------------------------------------------------
    def on_send(self, msg: Any, src: Any, dst: Any,
                delay: float) -> TraceCtx:
        """Annotate one send; called by the network.  Returns the derived
        context the delivery event will carry."""
        parent_ctx = self.current
        cross = src.dc != dst.dc
        if parent_ctx is not None:
            tid = parent_ctx.tid
            hops = parent_ctx.wan_hops + (1 if cross else 0)
            parent = parent_ctx.last_msg
        else:
            tid = None
            hops = 1 if cross else 0
            parent = None
        now = self._now()
        ann = MessageAnn(
            msg_id=self._next_msg_id, parent=parent, tid=tid,
            msg_type=msg.type_name, src=src.node_id, src_dc=src.dc,
            dst=dst.node_id, dst_dc=dst.dc, size_bytes=msg.size_bytes(),
            cross_dc=cross, send_ms=now, recv_ms=now + delay,
            wan_hops=hops)
        self._next_msg_id += 1
        trace = self.txns.get(tid)
        if trace is not None:
            trace.messages.append(ann)
        else:
            self.orphan_messages.append(ann)
        return TraceCtx(tid, hops, ann)

    # -- joins ----------------------------------------------------------
    def absorb(self, ctx: Optional[TraceCtx]) -> None:
        """Merge a remembered dependency context into the current one.

        Used at *join points* the event chain cannot see — a handler
        triggered by a timer whose decision causally depends on earlier
        message arrivals (e.g. TAPIR's fast-path timeout reading the votes
        collected so far).  Deepens the current context to the dependency's
        depth; never shallows it.
        """
        if ctx is None:
            return
        cur = self.current
        if cur is None or ctx.wan_hops > cur.wan_hops:
            self.current = ctx

    # -- accessors ------------------------------------------------------
    def transactions(self) -> List[TxnTrace]:
        """All transaction traces, in begin order."""
        return list(self.txns.values())

    def get(self, tid: Any) -> Optional[TxnTrace]:
        """The trace for ``tid``, or ``None``."""
        return self.txns.get(tid)
