"""One chaos run: cluster + workload + nemesis schedule + oracles.

A run builds a fresh deterministic cluster for the requested system,
schedules a seeded increment workload and a seeded nemesis timeline up
front, advances virtual time past the last fault, heals everything, waits
for quiescence, and then evaluates the safety and liveness oracles
(:mod:`repro.chaos.oracles`).  Everything is derived from the run seed —
re-running the same ``(system, seed, schedule)`` triple is byte-identical,
which is what lets :mod:`repro.chaos.minimize` replay subsequences.

Timing uses the aggressive chaos profile: fast Raft elections, fast
client heartbeats, and an 800 ms retransmission base with exponential
backoff (multiplier 2, cap 6.4 s, 10 % deterministic jitter) so lost
messages are retried promptly without synchronized retry storms.
"""

from __future__ import annotations

import random
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.cluster import (
    CarouselCluster,
    DeploymentSpec,
    LayeredCluster,
    TapirCluster,
)
from repro.chaos.nemesis import (
    NemesisEvent,
    apply_schedule,
    generate_schedule,
    schedule_horizon,
)
from repro.chaos.oracles import (
    OracleViolation,
    ResultRow,
    check_decisions,
    check_durability,
    check_liveness,
    check_stores,
)
from repro.core.backoff import RetryPolicy
from repro.core.config import BASIC, FAST, CarouselConfig
from repro.raft.node import RaftConfig
from repro.sim.failure import FailureInjector
from repro.sim.stats import link_fault_summary, restart_summary
from repro.tapir.config import TapirConfig
from repro.trace.tracer import Tracer
from repro.txn import TransactionSpec

#: The four systems the nemesis torments.
SYSTEMS = ("carousel-basic", "carousel-fast", "layered", "tapir")

_ALIASES = {
    "basic": "carousel-basic",
    "fast": "carousel-fast",
    "carousel": "carousel-fast",
}

#: Virtual ms the cluster runs before anything else happens (heartbeats
#: establish; leaders are bootstrap-assigned so no elections are needed).
_SETTLE_MS = 600.0

_CHAOS_RAFT = dict(election_timeout_min_ms=400.0,
                   election_timeout_max_ms=800.0,
                   heartbeat_interval_ms=100.0)
_CHAOS_BACKOFF = dict(base_ms=800.0, multiplier=2.0, max_ms=6400.0,
                      jitter_fraction=0.1)

#: Virtual ms the final-restart verification phase runs: long enough for
#: every group to elect a leader from scratch (400–800 ms timeouts, with
#: retries for split votes), commit its term no-op, and re-apply its log.
_RESTART_VERIFY_MS = 15_000.0


def canonical_system(name: str) -> str:
    """Resolve a system name or alias to its canonical form."""
    canon = _ALIASES.get(name, name)
    if canon not in SYSTEMS:
        raise ValueError(f"unknown system {name!r}; expected one of "
                         f"{', '.join(SYSTEMS)} (or basic/fast)")
    return canon


@dataclass
class ChaosOptions:
    """Knobs for one chaos run (defaults match the CLI)."""

    #: Number of workload transactions per run.
    rounds: int = 25
    #: Distinct workload keys (``ck0..ckN-1``), all starting absent.
    n_keys: int = 4
    #: Fraction of transactions touching two keys (cross-partition 2PC).
    pair_fraction: float = 0.4
    #: Quiet lead-in before the first submission or fault.
    warmup_ms: float = 1000.0
    #: Width of the submission/fault window.
    window_ms: float = 15_000.0
    #: Hard bound on post-heal convergence time (liveness bound).
    quiescence_ms: float = 60_000.0
    #: Extra settle time after the last client goes idle, so server-side
    #: writeback/commit retransmissions (capped at 6.4 s) drain too.
    drain_ms: float = 8000.0
    #: Nemesis events per generated schedule.
    n_events: int = 6
    #: Extra sampling weight for power-cycle (``restart``) events; the
    #: default of 0 keeps pre-existing seeded timelines byte-identical.
    restart_weight: int = 0
    #: After the normal oracles pass judgment on the quiesced state,
    #: power-cycle *every* server and run the durability oracle against
    #: the state rebuilt purely from WAL images.
    final_restart: bool = False
    #: Attach a recording tracer (costs memory; used for counterexamples).
    trace: bool = False


@dataclass
class ChaosRunResult:
    """Everything one chaos run produced."""

    system: str
    seed: int
    schedule: List[NemesisEvent]
    submitted: int = 0
    committed: int = 0
    aborted: int = 0
    violations: List[OracleViolation] = field(default_factory=list)
    #: ``(time_ms, action, subject)`` from the failure injector.
    nemesis_log: List[Tuple[float, str, str]] = field(default_factory=list)
    #: ``(node_id, restarts)`` for every node that power-cycled (includes
    #: the final-restart verification phase when enabled).
    restart_counts: List[Tuple[str, int]] = field(default_factory=list)
    #: Per-link fault counters (see ``repro.sim.stats.link_fault_summary``).
    link_rows: List[Tuple] = field(default_factory=list)
    messages_dropped: int = 0
    messages_delivered: int = 0
    #: The recording tracer, when ``ChaosOptions.trace`` was set.
    tracer: Optional[Tracer] = None
    #: ``(write_keys, TxnResult)`` per terminal response, arrival order.
    results: List[ResultRow] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every oracle passed."""
        return not self.violations


class ClusterAdapter:
    """Uniform post-run access to cluster internals for the oracles.

    Bridges the structural differences between the four systems: where
    stores live (per-partition components vs. whole-replica stores),
    what "resolved" means (writeback decisions vs. IR commit booleans),
    and which nodes are legitimate nemesis targets.
    """

    def __init__(self, system: str, cluster: Any):
        self.system = system
        self.cluster = cluster

    def clients(self) -> List[Any]:
        """All workload clients, construction order."""
        return list(self.cluster.clients)

    def client_pending(self, client: Any) -> int:
        """Transactions this client still has in flight (or queued)."""
        pending = len(client._active)
        pending += len(getattr(client, "_queued", ()))
        return pending

    def client_quiesced(self, client: Any) -> bool:
        """No active/queued work and no unacknowledged commit rounds."""
        if self.client_pending(client):
            return False
        return not getattr(client, "_commit_acks_pending", None)

    def server_ids(self) -> List[str]:
        """Sorted server node ids — the nemesis's victim pool."""
        if self.system == "tapir":
            return sorted(self.cluster.replicas)
        return sorted(self.cluster.servers)

    def partitions_for(self, keys: Sequence[str]) -> List[str]:
        """Sorted partition ids holding ``keys``."""
        return sorted({self.cluster.ring.partition_for(k) for k in keys})

    def replica_groups(self) -> List[Tuple[str, ...]]:
        """The replica node-id set of every consensus group (for TAPIR,
        of every partition), sorted — the correlated-restart targets."""
        groups = set()
        for pid in self.cluster.partition_ids:
            groups.add(tuple(sorted(
                r.node_id for r in self.cluster.replicas_of(pid))))
        return sorted(groups)

    def stores_for_key(self, key: str) -> List[Tuple[str, Any]]:
        """``(node_id, VersionedKVStore)`` for every replica of ``key``."""
        pid = self.cluster.ring.partition_for(key)
        out = []
        for replica in self.cluster.replicas_of(pid):
            if self.system == "tapir":
                out.append((replica.node_id, replica.store))
            else:
                out.append((replica.node_id,
                            replica.partitions[pid].store))
        return out

    def resolved_for_pid(self, pid: str) -> List[Tuple[str, Dict]]:
        """``(location, {tid: "commit"|"abort"})`` per replica of ``pid``."""
        out = []
        for replica in self.cluster.replicas_of(pid):
            if self.system == "tapir":
                resolved = {tid: ("commit" if ok else "abort")
                            for tid, ok in replica.resolved.items()}
            else:
                resolved = dict(replica.partitions[pid].resolved)
            out.append((f"{replica.node_id}/{pid}", resolved))
        return out

    def resolved_maps(self) -> List[Tuple[str, Dict]]:
        """Resolved-outcome maps for every replica of every partition."""
        out = []
        for pid in self.cluster.partition_ids:
            out.extend(self.resolved_for_pid(pid))
        return out


def _build_cluster(system: str, seed: int) -> Any:
    spec = DeploymentSpec(seed=seed)
    if system in ("carousel-basic", "carousel-fast"):
        mode = FAST if system == "carousel-fast" else BASIC
        return CarouselCluster(spec, CarouselConfig(
            mode=mode,
            heartbeat_interval_ms=500.0,
            heartbeat_misses=3,
            client_retry_ms=_CHAOS_BACKOFF["base_ms"],
            retry_backoff_multiplier=_CHAOS_BACKOFF["multiplier"],
            retry_backoff_max_ms=_CHAOS_BACKOFF["max_ms"],
            retry_jitter_fraction=_CHAOS_BACKOFF["jitter_fraction"],
            raft=RaftConfig(**_CHAOS_RAFT)))
    if system == "layered":
        return LayeredCluster(spec, raft_config=RaftConfig(**_CHAOS_RAFT),
                              retry_policy=RetryPolicy(**_CHAOS_BACKOFF))
    if system == "tapir":
        return TapirCluster(spec, TapirConfig(
            fast_path_timeout_ms=250.0,
            retry_ms=_CHAOS_BACKOFF["base_ms"],
            retry_backoff_multiplier=_CHAOS_BACKOFF["multiplier"],
            retry_backoff_max_ms=_CHAOS_BACKOFF["max_ms"],
            retry_jitter_fraction=_CHAOS_BACKOFF["jitter_fraction"]))
    raise ValueError(f"unknown system {system!r}")  # pragma: no cover


def candidate_links(adapter: ClusterAdapter) -> List[Tuple[str, str]]:
    """Endpoint pairs the nemesis may degrade, restricted to links that
    actually carry protocol traffic (degrading a silent link tests
    nothing): intra-group Raft links, leader-to-leader links
    (coordinator prepares and writebacks), and client-to-server links.
    TAPIR replicas never talk to each other — IR is client-driven — so
    its candidates are the client/replica pairs.  Server/server links
    appear three times so the nemesis samples them more often: that is
    where replication and 2PC traffic concentrates.  Deterministic
    order."""
    cluster = adapter.cluster
    clients = sorted(c.node_id for c in adapter.clients())
    links = set()
    if adapter.system == "tapir":
        for client_id in clients:
            for replica_id in sorted(cluster.replicas):
                links.add((client_id, replica_id))
    else:
        leaders = []
        for pid in cluster.partition_ids:
            info = cluster.directory.lookup(pid)
            leaders.append(info.leader)
            replicas = list(info.replicas)
            for i, a in enumerate(replicas):
                for b in replicas[i + 1:]:
                    links.add(tuple(sorted((a, b))))
        for i, a in enumerate(leaders):
            for b in leaders[i + 1:]:
                if a != b:
                    links.add(tuple(sorted((a, b))))
        servers_by_dc: Dict[str, List[str]] = {}
        for server_id in adapter.server_ids():
            server = cluster.servers[server_id]
            servers_by_dc.setdefault(server.dc, []).append(server_id)
        client_links = set()
        for client in adapter.clients():
            for leader in leaders:
                client_links.add((client.node_id, leader))
            # Fast-mode local reads talk to same-datacenter replicas.
            for server_id in servers_by_dc.get(client.dc, ()):
                client_links.add((client.node_id, server_id))
        return sorted(links) * 3 + sorted(client_links)
    return sorted(links)


def _increment_spec(keys: Tuple[str, ...]) -> TransactionSpec:
    """Read-modify-write increment of each key (the oracle workload)."""
    def compute(reads: Dict[str, Any]) -> Dict[str, Any]:
        return {k: (reads.get(k) or 0) + 1 for k in keys}

    return TransactionSpec(read_keys=keys, write_keys=keys,
                           compute_writes=compute, txn_type="chaos-incr")


def build_workload_plan(seed: int, opts: ChaosOptions, n_clients: int,
                        keys: Sequence[str]
                        ) -> List[Tuple[float, int, Tuple[str, ...]]]:
    """The seeded submission plan: ``(at_ms, client_index, keys)`` rows.

    Drawn from ``random.Random(f"workload:{seed}")``, independent of the
    nemesis and kernel RNGs, so the workload is identical whether the run
    replays a full schedule or a minimized subsequence.
    """
    rng = random.Random(f"workload:{seed}")
    plan: List[Tuple[float, int, Tuple[str, ...]]] = []
    for _ in range(opts.rounds):
        at = opts.warmup_ms + rng.uniform(0.0, opts.window_ms)
        client = rng.randrange(n_clients)
        if len(keys) >= 2 and rng.random() < opts.pair_fraction:
            picked = tuple(sorted(rng.sample(list(keys), 2)))
        else:
            picked = (keys[rng.randrange(len(keys))],)
        plan.append((at, client, picked))
    plan.sort()
    return plan


def run_chaos(system: str, seed: int,
              opts: Optional[ChaosOptions] = None,
              schedule: Optional[Sequence[NemesisEvent]] = None,
              planted_bug: Optional[Callable[[], Any]] = None
              ) -> ChaosRunResult:
    """Run one seeded chaos scenario and evaluate every oracle.

    ``schedule`` overrides the generated nemesis timeline (used by the
    minimizer to replay subsequences); ``planted_bug`` is a context-
    manager factory from :mod:`repro.chaos.bugs` that stays active for
    the whole run (used to validate that the oracles catch known bugs).
    """
    opts = opts or ChaosOptions()
    canon = canonical_system(system)
    guard = planted_bug() if planted_bug is not None else nullcontext()
    with guard:
        cluster = _build_cluster(canon, seed)
        kernel = cluster.kernel
        adapter = ClusterAdapter(canon, cluster)
        kernel.run(until=_SETTLE_MS)
        tracer = Tracer(kernel) if opts.trace else None

        servers = adapter.server_ids()
        if schedule is None:
            schedule = generate_schedule(
                seed, servers, candidate_links(adapter),
                start_ms=opts.warmup_ms,
                end_ms=opts.warmup_ms + opts.window_ms,
                n_events=opts.n_events,
                restart_weight=opts.restart_weight,
                groups=adapter.replica_groups())
        schedule = list(schedule)
        injector = FailureInjector(kernel, cluster.network)
        apply_schedule(injector, schedule, servers)

        keys = [f"ck{i}" for i in range(opts.n_keys)]
        plan = build_workload_plan(seed, opts, len(cluster.clients), keys)
        results: List[ResultRow] = []
        for at, client_index, picked in plan:
            client = cluster.clients[client_index]
            spec = _increment_spec(picked)

            def _submit(client=client, spec=spec, picked=picked):
                client.submit(
                    spec, lambda res, ks=picked: results.append((ks, res)))

            kernel.schedule_at(at, _submit)
        expected = len(plan)

        # Run past the last scheduled fault, then heal the world: the
        # liveness oracle's clock starts at the final heal.
        horizon = max(schedule_horizon(schedule),
                      opts.warmup_ms + opts.window_ms)
        kernel.run(until=horizon)
        injector.heal_everything_now()

        # Quiescence: poll until every client is idle, then drain long
        # enough for server-side retransmissions to settle; give up (and
        # let the liveness oracle report it) at the quiescence bound.
        deadline = kernel.now + opts.quiescence_ms
        done_at: Optional[float] = None
        while kernel.now < deadline:
            kernel.run(until=min(kernel.now + 250.0, deadline))
            if done_at is None and len(results) >= expected and all(
                    adapter.client_quiesced(c) for c in adapter.clients()):
                done_at = kernel.now
            if done_at is not None and kernel.now - done_at >= opts.drain_ms:
                break

        violations = []
        violations.extend(check_liveness(adapter, expected, results))
        violations.extend(check_decisions(adapter, results))
        violations.extend(check_stores(adapter, results, keys))

        if opts.final_restart:
            # Durability verification, in two judgments.  First on the
            # quiesced state: a committed write absent (or an aborted
            # one present) here is already lost, whatever RAM still
            # holds.  Then power-cycle every server so all RAM state is
            # gone, give the groups time to re-elect and re-apply their
            # logs from the rebuilt WAL state, and judge again — this
            # time nothing can hide in volatile survivorship.
            violations.extend(check_durability(adapter, results, keys))
            for node_id in servers:
                injector.restart_now(node_id)
            kernel.run(until=kernel.now + _RESTART_VERIFY_MS)
            violations.extend(check_durability(adapter, results, keys))

        if tracer is not None:
            tracer.detach()
        return ChaosRunResult(
            system=canon, seed=seed, schedule=schedule,
            submitted=expected,
            committed=sum(1 for _, r in results if r.committed),
            aborted=sum(1 for _, r in results if not r.committed),
            violations=violations,
            nemesis_log=list(injector.log),
            restart_counts=restart_summary(cluster.network),
            link_rows=link_fault_summary(cluster.network),
            messages_dropped=cluster.network.messages_dropped,
            messages_delivered=cluster.network.messages_delivered,
            tracer=tracer, results=results)
