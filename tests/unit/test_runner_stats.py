"""Unit tests for experiment-result helpers and workload statistics."""

import pytest

from repro.bench.runner import SYSTEM_LABELS, SYSTEMS, ExperimentResult
from repro.sim.stats import LatencyRecorder, SeriesRecorder
from repro.workloads.driver import ABORTED, COMMITTED, WorkloadStats


def make_stats(commits=8, aborts=2, window=(0.0, 1000.0)):
    latency = LatencyRecorder("t")
    outcomes = SeriesRecorder()
    outcomes.set_window(*window)
    for i in range(commits):
        latency.record(10.0 + i)
        outcomes.record(COMMITTED, at_ms=500.0)
    for __ in range(aborts):
        outcomes.record(ABORTED, at_ms=500.0)
    return WorkloadStats(latency, outcomes)


class TestWorkloadStats:
    def test_committed_tps(self):
        stats = make_stats(commits=10, aborts=0)
        assert stats.committed_tps == 10.0  # 10 commits over 1 s

    def test_abort_rate(self):
        stats = make_stats(commits=8, aborts=2)
        assert stats.abort_rate == pytest.approx(0.2)

    def test_abort_rate_no_events(self):
        stats = make_stats(commits=0, aborts=0)
        assert stats.abort_rate == 0.0


class TestExperimentResult:
    def test_labels_cover_all_systems(self):
        assert set(SYSTEM_LABELS) == set(SYSTEMS)

    def test_label_property(self):
        result = ExperimentResult(system="carousel-fast", target_tps=100.0,
                                  stats=make_stats(), cluster=None,
                                  driver=None)
        assert result.label == "Carousel Fast"
