"""WAL unit tests: append/fsync durability stamps, crash truncation,
torn tails, CPU billing, crash-epoch timers, and the recover/restart race.
"""

from repro.sim.failure import FailureInjector
from repro.sim.kernel import Kernel
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.stats import restart_summary
from repro.sim.topology import uniform_topology
from repro.wal.image import image_document
from repro.wal.log import WriteAheadLog
from repro.wal.records import CoordDecisionWal, CoordFinishWal

import pytest


def _decision(tid: str) -> CoordDecisionWal:
    return CoordDecisionWal(tid=tid, group_id="g", client_id="c",
                            decision="commit", reason="committed",
                            participants=(), writes=())


class TestAppendFsync:
    def test_append_syncs_by_default(self):
        wal = WriteAheadLog("n1")
        wal.append(_decision("t1"))
        assert wal.unsynced == 0
        assert wal.appends == 1 and wal.syncs == 1
        assert wal.crash(now=0.0) == 0
        assert wal.replay() == [_decision("t1")]

    def test_unsynced_records_die_in_a_crash(self):
        wal = WriteAheadLog("n1")
        wal.append(_decision("t1"))
        wal.append(_decision("t2"), sync=False)
        assert wal.unsynced == 1
        assert wal.crash(now=0.0) == 1
        assert wal.replay() == [_decision("t1")]
        assert wal.records_lost == 1 and wal.crashes == 1

    def test_fsync_stamps_only_the_unsynced_tail(self):
        wal = WriteAheadLog("n1")
        wal.append(_decision("t1"), sync=False)
        wal.append(_decision("t2"), sync=False)
        assert wal.fsync() == 2
        assert wal.fsync() == 0  # nothing left to stamp
        assert wal.unsynced == 0

    def test_inflight_sync_lost_before_its_completion_time(self):
        clock = {"now": 100.0}
        wal = WriteAheadLog("n1", clock=lambda: clock["now"],
                            sync_latency_ms=5.0)
        wal.append(_decision("t1"))          # durable at 105
        clock["now"] = 104.0
        assert wal.crash() == 1              # still in flight
        assert wal.replay() == []

    def test_inflight_sync_survives_after_completion_time(self):
        clock = {"now": 100.0}
        wal = WriteAheadLog("n1", clock=lambda: clock["now"],
                            sync_latency_ms=5.0)
        wal.append(_decision("t1"))          # durable at 105
        clock["now"] = 105.0
        assert wal.crash() == 0
        assert wal.replay() == [_decision("t1")]


class TestTornTail:
    def test_torn_tail_keeps_a_deterministic_prefix(self):
        def run():
            clock = {"now": 0.0}
            wal = WriteAheadLog("n1", clock=lambda: clock["now"],
                                sync_latency_ms=10.0, torn_tail=True)
            for i in range(6):
                wal.append(_decision(f"t{i}"), sync=False)
            wal.fsync()                      # all durable at 10
            clock["now"] = 5.0               # mid-flight
            wal.crash()
            return wal.replay()

        first, second = run(), run()
        assert first == second               # same owner id, same cut
        all_records = [_decision(f"t{i}") for i in range(6)]
        assert first == all_records[:len(first)]  # survivors are a prefix

    def test_torn_tail_never_resurrects_unsynced_records(self):
        clock = {"now": 0.0}
        wal = WriteAheadLog("n1", clock=lambda: clock["now"],
                            sync_latency_ms=10.0, torn_tail=True)
        wal.append(_decision("t1"))          # in flight, durable at 10
        wal.append(CoordFinishWal(tid="t2"), sync=False)  # never fsynced
        clock["now"] = 5.0
        wal.crash()
        assert CoordFinishWal(tid="t2") not in wal.replay()


class TestCpuBilling:
    def _node(self, service_time_ms=0.0):
        kernel = Kernel(seed=1)
        topo = uniform_topology(1, 10.0)
        network = Network(kernel, topo, jitter_fraction=0.0)
        node = Node("n0", topo.datacenters[0], kernel, network,
                    service_time_ms=service_time_ms)
        return kernel, node

    def test_zero_latency_wal_is_passive(self):
        kernel, node = self._node()
        wal = WriteAheadLog("n0")
        wal.attach_host(node)
        busy_before = node._busy_until
        wal.append(_decision("t1"))
        assert node._busy_until == busy_before

    def test_sync_latency_charges_the_host_cpu_queue(self):
        kernel, node = self._node()
        wal = WriteAheadLog("n0", sync_latency_ms=2.5)
        wal.attach_host(node)
        wal.append(_decision("t1"))
        assert node._busy_until == 2.5
        wal.append(_decision("t2"))
        assert node._busy_until == 5.0       # back-to-back syncs queue up


class TestImage:
    def test_image_document_lists_surviving_records(self):
        wal = WriteAheadLog("n1")
        wal.append(_decision("t1"))
        doc = image_document(wal)
        assert doc["owner"] == "n1"
        assert doc["counters"]["appends"] == 1
        assert doc["records"][0]["type"] == "CoordDecisionWal"


class _RestartableNode(Node):
    """Minimal WAL-carrying node: counts restarts and replayed records."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.wal = WriteAheadLog(self.node_id)
        self.wal.attach_host(self)
        self.replayed = None
        self.fired = []

    def handle_message(self, msg):  # pragma: no cover - no traffic here
        pass

    def on_restart(self):
        self.replayed = self.wal.replay()


class TestCrashEpochTimers:
    def _cluster(self):
        kernel = Kernel(seed=1)
        topo = uniform_topology(1, 10.0)
        network = Network(kernel, topo, jitter_fraction=0.0)
        node = _RestartableNode("n0", topo.datacenters[0], kernel, network)
        return kernel, node

    def test_pre_crash_timer_is_dead_after_recovery(self):
        kernel, node = self._cluster()
        node.set_timer(50.0, node.fired.append, "pre-crash")
        kernel.schedule_at(10.0, node.crash)
        kernel.schedule_at(20.0, node.recover)
        kernel.run(until=100.0)
        assert node.fired == []              # armed by a dead incarnation

    def test_post_recovery_timer_fires(self):
        kernel, node = self._cluster()
        kernel.schedule_at(10.0, node.crash)
        kernel.schedule_at(20.0, node.recover)
        kernel.schedule_at(30.0, lambda: node.set_timer(
            5.0, node.fired.append, "post-recover"))
        kernel.run(until=100.0)
        assert node.fired == ["post-recover"]

    def test_timer_across_restart_is_dead_too(self):
        kernel, node = self._cluster()
        node.wal.append(_decision("t1"))
        node.set_timer(50.0, node.fired.append, "pre-restart")
        kernel.schedule_at(10.0, node.restart)
        kernel.run(until=100.0)
        assert node.fired == []
        assert node.replayed == [_decision("t1")]
        assert node.restarts == 1


class TestRestartRecoverRace:
    """A ``recover_at`` racing a ``restart_at`` at the same instant must
    yield to the restart — by scheduled time, not firing order, so the
    outcome is one restart and zero plain recoveries either way."""

    def _cluster(self):
        kernel = Kernel(seed=1)
        topo = uniform_topology(1, 10.0)
        network = Network(kernel, topo, jitter_fraction=0.0)
        node = _RestartableNode("n0", topo.datacenters[0], kernel, network)
        return kernel, node, FailureInjector(kernel, network)

    @pytest.mark.parametrize("restart_first", [True, False])
    def test_restart_wins_in_either_registration_order(self, restart_first):
        kernel, node, injector = self._cluster()
        injector.crash_at("n0", 10.0)
        if restart_first:
            injector.restart_at("n0", 20.0)
            injector.recover_at("n0", 20.0)
        else:
            injector.recover_at("n0", 20.0)
            injector.restart_at("n0", 20.0)
        kernel.run(until=50.0)
        actions = [(action, t) for t, action, subject in injector.log]
        assert ("restart", 20.0) in actions
        assert ("recover-superseded", 20.0) in actions
        assert ("recover", 20.0) not in actions
        assert node.restarts == 1 and not node.crashed

    def test_restart_counts_surface_in_stats(self):
        kernel, node, injector = self._cluster()
        injector.crash_at("n0", 10.0)
        injector.restart_at("n0", 20.0)
        kernel.run(until=50.0)
        assert restart_summary(node.network) == [("n0", 1)]
