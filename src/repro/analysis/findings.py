"""Lint findings, severities, and per-line suppression.

Shared by every static analyzer in :mod:`repro.analysis` — detlint (the
determinism sanitizer) and protolint (the protocol-conformance checker)
use the same :class:`Rule`/:class:`Finding` model, the same suppression
comments, and the same output formatters, so CI and editors only need one
grammar.

A :class:`Finding` is one rule violation at one source location.  Findings
can be suppressed in source with a ``# <tool>: ignore`` comment on the
flagged line (or on a comment-only line directly above it, for flagged
statements that are already long)::

    for pid in state.participants:        # detlint: ignore[values-fanout]
        ...

    # protolint: ignore[handler-mutation, PL006]
    def on_writeback(self, msg):
        ...

The bracket form suppresses only the named rules (codes like ``DL001`` or
slugs like ``set-iter-send``); the bare form suppresses every rule on that
line.  Suppressions are per-tool: a ``# detlint:`` comment never silences
protolint and vice versa.  Suppressions are deliberate, grep-able
exemptions: the CI gate fails on any finding that is *not* suppressed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: The analyzers that share this suppression grammar.
SUPPRESSION_TOOLS = ("detlint", "protolint")

#: ``# <tool>: ignore`` / ``# <tool>: ignore[rule, rule]``
_SUPPRESS_RE = re.compile(
    r"#\s*(?P<tool>" + "|".join(SUPPRESSION_TOOLS) +
    r"):\s*ignore(?:\[(?P<names>[A-Za-z0-9_\-, ]*)\])?")


@dataclass(frozen=True)
class Rule:
    """One lint rule: a stable code, a readable slug, and a severity.

    ``severity`` is informational — the CI gate fails on warnings too —
    but tells a reader whether a site is wrong per se (error) or correct
    only under an argument that should be stated (warning).
    """

    code: str
    slug: str
    severity: str
    summary: str

    def __str__(self) -> str:
        return f"{self.code}[{self.slug}]"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: Rule
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        """Render as ``path:line:col: CODE[slug] severity: message``."""
        return (f"{self.path}:{self.line}:{self.col}: {self.rule} "
                f"{self.rule.severity}: {self.message}")

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (the ``--format json`` schema)."""
        return {
            "code": self.rule.code,
            "slug": self.rule.slug,
            "severity": self.rule.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


def parse_suppressions(source: str,
                       tool: str = "detlint",
                       ) -> Dict[int, Optional[Set[str]]]:
    """Map 1-based line number -> suppressed rule names on that line.

    Only ``# <tool>: ignore`` comments count; annotations addressed to a
    different analyzer are invisible here.  ``None`` means "suppress every
    rule" (the bare ``ignore`` form); a set holds the codes/slugs named in
    the bracket form.  A suppression on a comment-only line also covers
    the next line, so long statements can carry their annotation above
    themselves.
    """
    result: Dict[int, Optional[Set[str]]] = {}

    def merge(lineno: int, names: Optional[Set[str]]) -> None:
        existing = result.get(lineno, set())
        if names is None or existing is None:
            result[lineno] = None
        else:
            result[lineno] = existing | names

    for lineno, text in enumerate(source.splitlines(), start=1):
        for match in _SUPPRESS_RE.finditer(text):
            if match.group("tool") != tool:
                continue
            group = match.group("names")
            if group is None:
                names: Optional[Set[str]] = None
            else:
                names = {part.strip() for part in group.split(",")
                         if part.strip()}
                if not names:
                    names = None
            merge(lineno, names)
            if text.lstrip().startswith("#"):
                # Comment-only line: the annotation covers the statement
                # below.
                merge(lineno + 1, names)
    return result


def is_suppressed(finding: Finding,
                  suppressions: Dict[int, Optional[Set[str]]]) -> bool:
    """Whether ``finding`` is covered by a source suppression."""
    names = suppressions.get(finding.line, set())
    if finding.line not in suppressions:
        return False
    if names is None:
        return True
    return finding.rule.code in names or finding.rule.slug in names


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Stable location order shared by every output format."""
    return sorted(findings,
                  key=lambda f: (f.path, f.line, f.col, f.rule.code))


def format_findings(findings: Iterable[Finding],
                    clean_message: str = "clean: no determinism findings",
                    ) -> str:
    """One line per finding, sorted by location, plus a summary line."""
    ordered = sort_findings(findings)
    lines = [f.format() for f in ordered]
    errors = sum(1 for f in ordered
                 if f.rule.severity == SEVERITY_ERROR)
    warnings = len(ordered) - errors
    if ordered:
        lines.append(f"{len(ordered)} finding(s): {errors} error(s), "
                     f"{warnings} warning(s)")
    else:
        lines.append(clean_message)
    return "\n".join(lines)


def format_github(findings: Iterable[Finding]) -> str:
    """GitHub Actions workflow-annotation lines (``--format github``).

    One ``::error``/``::warning`` command per finding; an empty string
    when clean (workflow commands for zero findings would be noise).
    """
    lines = []
    for f in sort_findings(findings):
        kind = ("error" if f.rule.severity == SEVERITY_ERROR
                else "warning")
        lines.append(f"::{kind} file={f.path},line={f.line},"
                     f"col={f.col},title={f.rule}::{f.message}")
    return "\n".join(lines)
