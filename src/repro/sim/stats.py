"""Measurement utilities: latency recorders, percentiles, CDFs, rates.

The evaluation in the paper reports latency CDFs (Figures 4 and 8),
committed throughput and abort rates over a measurement window (Figures 5
and 6), and average bandwidth (Figure 7).  This module provides the
recorders those experiments use.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def percentile(values: Sequence[float], p: float) -> float:
    """The ``p``-th percentile (0..100) by linear interpolation.

    Raises ``ValueError`` on an empty sequence — an experiment that measured
    nothing is a bug, not a zero.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile out of range: {p}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    # a + (b - a) * frac is exact when a == b, unlike the symmetric form,
    # which can exceed max() by a rounding ulp.
    return ordered[low] + (ordered[high] - ordered[low]) * frac


class LatencyRecorder:
    """Collects latency samples, optionally restricted to a time window.

    The paper runs each experiment for 90 seconds and discards the first and
    last 30 seconds; :meth:`set_window` implements that: samples whose
    completion time falls outside ``[start, end]`` are ignored.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: List[float] = []
        self._window: Optional[Tuple[float, float]] = None

    def set_window(self, start_ms: float, end_ms: float) -> None:
        """Only record samples completing within ``[start_ms, end_ms]``."""
        if end_ms < start_ms:
            raise ValueError("window end before start")
        self._window = (start_ms, end_ms)

    def record(self, latency_ms: float, at_ms: Optional[float] = None) -> None:
        """Record one sample; ``at_ms`` is the completion time for windowing."""
        if latency_ms < 0:
            raise ValueError("negative latency")
        if self._window is not None and at_ms is not None:
            start, end = self._window
            if not start <= at_ms <= end:
                return
        self.samples.append(latency_ms)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return len(self.samples)

    def median(self) -> float:
        """The 50th percentile."""
        return percentile(self.samples, 50.0)

    def p(self, pct: float) -> float:
        """The ``pct``-th percentile of recorded samples."""
        return percentile(self.samples, pct)

    def mean(self) -> float:
        """Arithmetic mean of recorded samples."""
        if not self.samples:
            raise ValueError("mean of empty recorder")
        return sum(self.samples) / len(self.samples)

    def cdf(self, points: Optional[int] = None) -> List[Tuple[float, float]]:
        """The empirical CDF as ``(latency_ms, cumulative_fraction)`` pairs.

        With ``points`` given, the CDF is downsampled to about that many
        evenly spaced points — enough to plot or print a figure's series.
        """
        if not self.samples:
            return []
        ordered = sorted(self.samples)
        n = len(ordered)
        pairs = [(v, (i + 1) / n) for i, v in enumerate(ordered)]
        if points is None or n <= points:
            return pairs
        step = n / points
        picked = [pairs[min(n - 1, int(i * step))] for i in range(points)]
        if picked[-1] != pairs[-1]:
            picked.append(pairs[-1])
        return picked

    def summary(self) -> Dict[str, float]:
        """Median/p95/p99/mean/count, for report tables."""
        return {
            "count": float(self.count),
            "median_ms": self.median(),
            "p95_ms": self.p(95.0),
            "p99_ms": self.p(99.0),
            "mean_ms": self.mean(),
        }

    def to_json(self) -> Dict[str, object]:
        """Full state (samples and window) for cross-process records."""
        return {
            "name": self.name,
            "samples": list(self.samples),
            "window": list(self._window) if self._window else None,
        }

    @classmethod
    def from_json(cls, doc: Dict[str, object]) -> "LatencyRecorder":
        recorder = cls(doc.get("name", ""))
        if doc.get("window") is not None:
            recorder.set_window(*doc["window"])
        recorder.samples = [float(v) for v in doc["samples"]]
        return recorder


class SeriesRecorder:
    """Counts categorized events inside a time window.

    Used for committed/aborted transaction counts: Figure 5 derives committed
    throughput and Figure 6 the abort rate from these counters.
    """

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}
        self._window: Optional[Tuple[float, float]] = None

    def set_window(self, start_ms: float, end_ms: float) -> None:
        """Only count events completing within ``[start_ms, end_ms]``."""
        if end_ms < start_ms:
            raise ValueError("window end before start")
        self._window = (start_ms, end_ms)

    @property
    def window_ms(self) -> float:
        if self._window is None:
            return 0.0
        return self._window[1] - self._window[0]

    def record(self, category: str, at_ms: Optional[float] = None) -> None:
        """Count one event; ``at_ms`` is the completion time for windowing."""
        if self._window is not None and at_ms is not None:
            start, end = self._window
            if not start <= at_ms <= end:
                return
        self.counts[category] = self.counts.get(category, 0) + 1

    def count(self, category: str) -> int:
        """Events recorded under ``category``."""
        return self.counts.get(category, 0)

    def total(self, categories: Optional[Iterable[str]] = None) -> int:
        """Total events across ``categories`` (all when omitted)."""
        if categories is None:
            return sum(self.counts.values())
        return sum(self.counts.get(c, 0) for c in categories)

    def rate_per_second(self, category: str) -> float:
        """Events per second for ``category`` over the window."""
        window_s = self.window_ms / 1000.0
        if window_s <= 0:
            raise ValueError("rate requested with no measurement window")
        return self.count(category) / window_s

    def fraction(self, category: str,
                 of: Optional[Iterable[str]] = None) -> float:
        """``count(category) / total(of)``; 0 when the denominator is 0."""
        denom = self.total(of)
        if denom == 0:
            return 0.0
        return self.count(category) / denom

    def to_json(self) -> Dict[str, object]:
        """Full state (counts and window) for cross-process records."""
        return {
            "counts": dict(sorted(self.counts.items())),
            "window": list(self._window) if self._window else None,
        }

    @classmethod
    def from_json(cls, doc: Dict[str, object]) -> "SeriesRecorder":
        recorder = cls()
        if doc.get("window") is not None:
            recorder.set_window(*doc["window"])
        recorder.counts = {str(k): int(v)
                           for k, v in doc["counts"].items()}
        return recorder


def link_fault_summary(network) -> List[Tuple[str, str, int, int, int,
                                              int, int]]:
    """Per-link fault counters from a :class:`~repro.sim.network.Network`.

    Rows of ``(src, dst, sent, delivered, dropped, duplicated, delayed)``
    sorted by link, one per link that ever had a fault model installed —
    the chaos report's "how lossy was this run" table.  Fault-free runs
    return an empty list.
    """
    rows = []
    for (src, dst), stats in sorted(network.link_stats().items()):
        rows.append((src, dst, stats.sent, stats.delivered,
                     stats.dropped, stats.duplicated, stats.delayed))
    return rows


def restart_summary(network) -> List[Tuple[str, int]]:
    """Per-node power-cycle counts, sorted by node id.

    Rows of ``(node_id, restarts)`` for every node that was restarted at
    least once (``Node.restarts``) — the chaos report's "who got
    power-cycled" table.  Runs without restarts return an empty list.
    """
    rows = []
    for node_id in sorted(network.nodes):
        node = network.nodes[node_id]
        if node.restarts:
            rows.append((node_id, node.restarts))
    return rows
