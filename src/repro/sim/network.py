"""Simulated network: message delivery, partitions, bandwidth accounting.

The network connects :class:`~repro.sim.node.Node` instances.  Sending a
message computes a one-way delay from the topology (RTT/2 between
datacenters), applies optional deterministic jitter, accounts the message's
bytes against per-node bandwidth meters, and schedules delivery on the
kernel.  Crashed destinations and partitioned pairs silently drop messages,
matching the fail-stop, asynchronous model the paper assumes (§3.1).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set, Tuple, TYPE_CHECKING

from repro.sim.kernel import Kernel
from repro.sim.message import Message
from repro.sim.topology import Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.node import Node


class BandwidthAccount:
    """Bytes sent and received by one node inside the measurement window."""

    __slots__ = ("bytes_sent", "bytes_received", "messages_sent",
                 "messages_received")

    def __init__(self) -> None:
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0
        self.messages_received = 0


class Network:
    """Delivers messages between registered nodes.

    Parameters
    ----------
    kernel:
        The simulation kernel providing the clock and RNG.
    topology:
        Datacenter latency model.
    jitter_fraction:
        If nonzero, each one-way delay is multiplied by a factor drawn
        uniformly from ``[1, 1 + jitter_fraction]`` using the kernel RNG.
        A small jitter (the default 2%) breaks pathological synchronization
        between concurrent transactions without materially changing medians.
    """

    def __init__(self, kernel: Kernel, topology: Topology,
                 jitter_fraction: float = 0.02):
        self.kernel = kernel
        self.topology = topology
        self.jitter_fraction = jitter_fraction
        self.nodes: Dict[str, "Node"] = {}
        self._partitioned: Set[Tuple[str, str]] = set()
        self._accounts: Dict[str, BandwidthAccount] = {}
        self._accounting = False
        self._accounting_start: Optional[float] = None
        self._accounting_end: Optional[float] = None
        self.messages_delivered = 0
        self.messages_dropped = 0
        #: Optional hook called as ``trace(msg, delay_ms)`` for every send;
        #: used by the protocol-trace benchmarks (Figures 2 and 3).
        self.trace_hook: Optional[Callable[[Message, float], None]] = None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, node: "Node") -> None:
        """Attach a node to the network. Node ids must be unique."""
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        if node.dc not in self.topology:
            raise ValueError(f"node {node.node_id!r} is in unknown "
                             f"datacenter {node.dc!r}")
        self.nodes[node.node_id] = node

    def node(self, node_id: str) -> "Node":
        """Look up a node by id."""
        return self.nodes[node_id]

    # ------------------------------------------------------------------
    # Bandwidth accounting
    # ------------------------------------------------------------------
    def start_accounting(self) -> None:
        """Begin counting bytes (e.g. after workload warmup)."""
        self._accounting = True
        self._accounting_start = self.kernel.now

    def stop_accounting(self) -> None:
        """Stop counting bytes (e.g. before workload cooldown)."""
        self._accounting = False
        self._accounting_end = self.kernel.now

    @property
    def accounting_window_ms(self) -> float:
        """Length of the closed accounting window, in milliseconds."""
        if self._accounting_start is None:
            return 0.0
        end = (self._accounting_end if self._accounting_end is not None
               else self.kernel.now)
        return max(0.0, end - self._accounting_start)

    def account(self, node_id: str) -> BandwidthAccount:
        """The bandwidth account for ``node_id`` (created on demand)."""
        if node_id not in self._accounts:
            self._accounts[node_id] = BandwidthAccount()
        return self._accounts[node_id]

    def bandwidth_mbps(self, node_id: str) -> Tuple[float, float]:
        """(send, receive) rates in megabits/s over the accounting window."""
        window_s = self.accounting_window_ms / 1000.0
        if window_s <= 0:
            return (0.0, 0.0)
        acct = self.account(node_id)
        to_mbps = 8.0 / 1_000_000.0 / window_s
        return (acct.bytes_sent * to_mbps, acct.bytes_received * to_mbps)

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def partition(self, a: str, b: str) -> None:
        """Block messages in both directions between nodes ``a`` and ``b``."""
        self._partitioned.add((a, b))
        self._partitioned.add((b, a))

    def heal(self, a: str, b: str) -> None:
        """Remove a partition between nodes ``a`` and ``b``."""
        self._partitioned.discard((a, b))
        self._partitioned.discard((b, a))

    def heal_all(self) -> None:
        """Remove all partitions."""
        self._partitioned.clear()

    def is_partitioned(self, a: str, b: str) -> bool:
        """Whether messages from ``a`` to ``b`` are currently blocked."""
        return (a, b) in self._partitioned

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, src: "Node", dst_id: str, msg: Message) -> None:
        """Send ``msg`` from ``src`` to the node named ``dst_id``.

        The message is stamped, accounted, delayed by the topology's one-way
        latency (with jitter), and delivered unless the sender or receiver
        has crashed or the pair is partitioned.  Dropped messages are simply
        lost: the model is asynchronous and protocols must use timeouts.
        """
        if dst_id not in self.nodes:
            raise KeyError(f"unknown destination node {dst_id!r}")
        dst = self.nodes[dst_id]
        msg.src = src.node_id
        msg.dst = dst_id
        msg.sent_at = self.kernel.now

        # Sizing walks the whole payload, so only pay for it while the
        # bandwidth experiment's accounting window is open.
        if self._accounting and not src.crashed:
            acct = self.account(src.node_id)
            acct.bytes_sent += msg.size_bytes()
            acct.messages_sent += 1

        if src.crashed:
            self.messages_dropped += 1
            return

        delay = self.topology.one_way(src.dc, dst.dc)
        if self.jitter_fraction > 0:
            delay *= 1.0 + self.kernel.random.uniform(0, self.jitter_fraction)
        if self.trace_hook is not None:
            self.trace_hook(msg, delay)
        event = self.kernel.schedule(delay, self._deliver, msg, dst)
        tracer = self.kernel.tracer
        if tracer.enabled:
            # The delivery event carries a child context: the sender's
            # causal chain extended by this hop (cross-DC hops deepen it).
            event.ctx = tracer.on_send(msg, src, dst, delay)
        digest = self.kernel.digest
        if digest is not None:
            digest.on_send(self.kernel.now, event.seq, src.node_id,
                           dst_id, msg.type_name, msg.size_bytes(),
                           event.ctx)

    def _deliver(self, msg: Message, dst: "Node") -> None:
        if dst.crashed or self.is_partitioned(msg.src, msg.dst):
            self.messages_dropped += 1
            return
        if self._accounting:
            acct = self.account(dst.node_id)
            acct.bytes_received += msg.size_bytes()
            acct.messages_received += 1
        self.messages_delivered += 1
        dst.enqueue(msg)
