"""Raft RPC messages.

All messages carry a ``group_id`` so that one physical server can host
several consensus groups (a Carousel data server may manage more than one
partition, §3.3).  ``RequestVote`` and ``RequestVoteReply`` carry the
pending-transaction payloads Carousel's CPC failure handling piggybacks on
elections (§4.3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.sim.message import Message
from repro.raft.log import LogEntry


@dataclass
class RequestVote(Message):
    """Candidate solicits a vote; carries the candidate's pending list."""

    group_id: str = ""
    term: int = 0
    candidate_id: str = ""
    last_log_index: int = 0
    last_log_term: int = 0
    #: Carousel extension (§4.3.3 step 1): the candidate's own
    #: pending-transaction list, so it can be pooled with voters' lists.
    pending_payload: Any = None


@dataclass
class RequestVoteReply(Message):
    """Vote response; carries the voter's pending-transaction list."""

    group_id: str = ""
    term: int = 0
    voter_id: str = ""
    granted: bool = False
    #: Carousel extension: the voter's pending-transaction list.
    pending_payload: Any = None


@dataclass
class AppendEntries(Message):
    """Leader replicates entries / sends heartbeats."""

    group_id: str = ""
    term: int = 0
    leader_id: str = ""
    prev_log_index: int = 0
    prev_log_term: int = 0
    entries: List[LogEntry] = field(default_factory=list)
    leader_commit: int = 0


@dataclass
class AppendEntriesReply(Message):
    """Follower acknowledges or rejects an AppendEntries."""

    group_id: str = ""
    term: int = 0
    follower_id: str = ""
    success: bool = False
    #: Highest log index known to match the leader (on success).
    match_index: int = 0
    #: Hint for fast log repair: follower's last index (on failure).
    conflict_index: int = 0
