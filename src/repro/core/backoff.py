"""Capped exponential backoff with deterministic jitter.

Retransmission timers across the codebase historically re-armed at a fixed
interval (``client_retry_ms``).  Under an adversarial network (the chaos
harness's drop/duplicate/delay fault models) fixed-interval retries are
both slow to react — the first retry waits the full generous interval —
and synchronization-prone: every stalled transaction retries in lockstep,
re-colliding forever.  :class:`RetryPolicy` computes the classic capped
exponential backoff with multiplicative jitter, drawing randomness only
from a caller-supplied RNG (in practice ``kernel.random``) so schedules
stay byte-reproducible.

The **degenerate policy** — ``multiplier=1.0``, ``jitter_fraction=0.0``,
the defaults — reproduces the historical fixed interval exactly and draws
nothing from the RNG, so pre-chaos tests and benchmarks are bit-for-bit
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Exponent clamp: beyond this many doublings the uncapped delay exceeds
#: any practical cap anyway, and ``float`` exponentiation would overflow.
_MAX_EXPONENT = 64


@dataclass(frozen=True)
class RetryPolicy:
    """Delay schedule for retransmission attempt ``n`` (0-based).

    Parameters
    ----------
    base_ms:
        Delay before the first retry.
    multiplier:
        Growth factor per attempt; ``1.0`` (default) keeps the interval
        fixed — the degenerate, pre-chaos behaviour.
    max_ms:
        Cap on the grown delay (before jitter); ``None`` means uncapped.
    jitter_fraction:
        When nonzero, the delay is multiplied by a factor drawn uniformly
        from ``[1 - jitter_fraction, 1 + jitter_fraction]``.  Zero
        (default) draws nothing from the RNG.
    """

    base_ms: float
    multiplier: float = 1.0
    max_ms: Optional[float] = None
    jitter_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.base_ms <= 0:
            raise ValueError("base_ms must be positive")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.max_ms is not None and self.max_ms < self.base_ms:
            raise ValueError("max_ms must be >= base_ms")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ValueError("jitter_fraction must be in [0, 1)")

    def delay_ms(self, attempt: int, rng) -> float:
        """The delay before retry number ``attempt`` (0 = first retry).

        ``rng`` is consulted only when ``jitter_fraction`` is nonzero, so
        the degenerate policy never perturbs the caller's RNG stream.
        """
        exponent = min(max(attempt, 0), _MAX_EXPONENT)
        delay = self.base_ms * (self.multiplier ** exponent)
        if self.max_ms is not None:
            delay = min(delay, self.max_ms)
        if self.jitter_fraction > 0.0:
            delay *= 1.0 + rng.uniform(-self.jitter_fraction,
                                       self.jitter_fraction)
        return delay
