"""Simulated network: message delivery, partitions, bandwidth accounting,
and adversarial per-link fault models.

The network connects :class:`~repro.sim.node.Node` instances.  Sending a
message computes a one-way delay from the topology (RTT/2 between
datacenters), applies optional deterministic jitter, accounts the message's
bytes against per-node bandwidth meters, and schedules delivery on the
kernel.  Crashed destinations and partitioned pairs silently drop messages,
matching the fail-stop, asynchronous model the paper assumes (§3.1).

Chaos testing (see :mod:`repro.chaos`) additionally attaches
:class:`LinkFaults` to directed links: probabilistic message drop,
duplication, and extra-delay spikes.  Fault decisions come from a
dedicated RNG seeded from the kernel seed — *not* from ``kernel.random``
— so (a) the same seed always yields the same drop/dup/delay decisions,
and (b) enabling faults on one link never shifts the RNG stream the
protocols and jitter draw from.  The fault RNG is consulted only for
sends on links with faults installed, so fault-free runs are untouched.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set, Tuple, TYPE_CHECKING

from repro.sim.kernel import Kernel
from repro.sim.message import Message
from repro.sim.topology import Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.node import Node


@dataclass(frozen=True)
class LinkFaults:
    """Adversarial behaviour of one directed link.

    Parameters
    ----------
    drop_prob:
        Probability that a message on this link is silently lost.
    dup_prob:
        Probability that a (non-dropped) message is delivered twice; the
        duplicate trails the original by up to ``dup_lag_ms``.
    delay_prob / delay_ms:
        Probability that a (non-dropped) message suffers an extra delay
        spike, drawn uniformly from ``(0, delay_ms]`` — enough to reorder
        it behind later traffic on the same link.
    """

    drop_prob: float = 0.0
    dup_prob: float = 0.0
    delay_prob: float = 0.0
    delay_ms: float = 0.0
    dup_lag_ms: float = 20.0

    def __post_init__(self) -> None:
        for name in ("drop_prob", "dup_prob", "delay_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.delay_prob > 0 and self.delay_ms <= 0:
            raise ValueError("delay_ms must be positive when delay_prob "
                             "is nonzero")
        if self.dup_lag_ms < 0:
            raise ValueError("dup_lag_ms must be non-negative")

    def describe(self) -> str:
        """Compact human-readable summary, e.g. ``drop=0.20 dup=0.30``."""
        parts = []
        if self.drop_prob:
            parts.append(f"drop={self.drop_prob:.2f}")
        if self.dup_prob:
            parts.append(f"dup={self.dup_prob:.2f}")
        if self.delay_prob:
            parts.append(f"delay={self.delay_prob:.2f}"
                         f"x{self.delay_ms:.0f}ms")
        return " ".join(parts) or "none"


class LinkStats:
    """Per-link fault counters, kept for every link that ever had faults
    installed (the fault-free fast path never creates these)."""

    __slots__ = ("sent", "delivered", "dropped", "duplicated", "delayed")

    def __init__(self) -> None:
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0


class BandwidthAccount:
    """Bytes sent and received by one node inside the measurement window."""

    __slots__ = ("bytes_sent", "bytes_received", "messages_sent",
                 "messages_received")

    def __init__(self) -> None:
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0
        self.messages_received = 0


class Network:
    """Delivers messages between registered nodes.

    Parameters
    ----------
    kernel:
        The simulation kernel providing the clock and RNG.
    topology:
        Datacenter latency model.
    jitter_fraction:
        If nonzero, each one-way delay is multiplied by a factor drawn
        uniformly from ``[1, 1 + jitter_fraction]`` using the kernel RNG.
        A small jitter (the default 2%) breaks pathological synchronization
        between concurrent transactions without materially changing medians.
    """

    def __init__(self, kernel: Kernel, topology: Topology,
                 jitter_fraction: float = 0.02):
        self.kernel = kernel
        self.topology = topology
        self.jitter_fraction = jitter_fraction
        self.nodes: Dict[str, "Node"] = {}
        self._partitioned: Set[Tuple[str, str]] = set()
        self._accounts: Dict[str, BandwidthAccount] = {}
        self._accounting = False
        self._accounting_start: Optional[float] = None
        self._accounting_end: Optional[float] = None
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        #: Directed-link fault models, installed by the chaos harness.
        self._link_faults: Dict[Tuple[str, str], LinkFaults] = {}
        self._link_stats: Dict[Tuple[str, str], LinkStats] = {}
        # Dedicated fault RNG: string-seeded from the kernel seed
        # (deterministic across processes, unlike tuple seeds) and
        # separate from kernel.random so installing faults never shifts
        # the protocol RNG stream.
        # detlint: ignore[unseeded-random]
        self._fault_rng = random.Random(f"link-faults:{kernel.seed}")
        self._trace_hook: Optional[Callable[[Message, float], None]] = None
        # Hot-path caches: the bound delivery callback (a fresh bound
        # method per send is an allocation), the topology lookup, and the
        # raw uniform [0,1) draw — `uniform(0, j)` computes `0 + j *
        # random()`, so `random() * j` yields bit-identical jitter.
        self._deliver_cb = self._deliver
        self._one_way = topology.one_way
        self._rand = kernel.random.random
        #: True while no accounting window, link faults, or protocol
        #: trace hook is active — sends then take a short inline path.
        self._fast = True

    def _refresh_fast_path(self) -> None:
        self._fast = not (self._accounting or self._link_faults
                          or self._trace_hook is not None)

    @property
    def trace_hook(self) -> Optional[Callable[[Message, float], None]]:
        """Optional hook called as ``trace(msg, delay_ms)`` for every
        send; used by the protocol-trace benchmarks (Figures 2 and 3)."""
        return self._trace_hook

    @trace_hook.setter
    def trace_hook(self,
                   hook: Optional[Callable[[Message, float], None]]) -> None:
        self._trace_hook = hook
        self._refresh_fast_path()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def claim(self, node_id: str, kind: str, dc: str) -> bool:
        """Placement hook of the runtime interface
        (:data:`repro.runtime.api.TRANSPORT_ATTRS`): deployment builders
        ask which logical process hosts ``node_id`` before constructing
        it.  The simulated network is single-process, so it hosts
        everything."""
        return True

    def hosts(self, node_id: str) -> bool:
        """Whether this transport hosts ``node_id`` (always, for the
        single-process simulated network)."""
        return True

    def register(self, node: "Node") -> None:
        """Attach a node to the network. Node ids must be unique."""
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        if node.dc not in self.topology:
            raise ValueError(f"node {node.node_id!r} is in unknown "
                             f"datacenter {node.dc!r}")
        self.nodes[node.node_id] = node

    def node(self, node_id: str) -> "Node":
        """Look up a node by id."""
        return self.nodes[node_id]

    # ------------------------------------------------------------------
    # Bandwidth accounting
    # ------------------------------------------------------------------
    def start_accounting(self) -> None:
        """Begin counting bytes (e.g. after workload warmup)."""
        self._accounting = True
        self._accounting_start = self.kernel.now
        self._refresh_fast_path()

    def stop_accounting(self) -> None:
        """Stop counting bytes (e.g. before workload cooldown)."""
        self._accounting = False
        self._accounting_end = self.kernel.now
        self._refresh_fast_path()

    @property
    def accounting_window_ms(self) -> float:
        """Length of the closed accounting window, in milliseconds."""
        if self._accounting_start is None:
            return 0.0
        end = (self._accounting_end if self._accounting_end is not None
               else self.kernel.now)
        return max(0.0, end - self._accounting_start)

    def account(self, node_id: str) -> BandwidthAccount:
        """The bandwidth account for ``node_id`` (created on demand)."""
        if node_id not in self._accounts:
            self._accounts[node_id] = BandwidthAccount()
        return self._accounts[node_id]

    def bandwidth_mbps(self, node_id: str) -> Tuple[float, float]:
        """(send, receive) rates in megabits/s over the accounting window."""
        window_s = self.accounting_window_ms / 1000.0
        if window_s <= 0:
            return (0.0, 0.0)
        acct = self.account(node_id)
        to_mbps = 8.0 / 1_000_000.0 / window_s
        return (acct.bytes_sent * to_mbps, acct.bytes_received * to_mbps)

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def partition(self, a: str, b: str) -> None:
        """Block messages in both directions between nodes ``a`` and ``b``."""
        self._partitioned.add((a, b))
        self._partitioned.add((b, a))

    def heal(self, a: str, b: str) -> None:
        """Remove a partition between nodes ``a`` and ``b``."""
        self._partitioned.discard((a, b))
        self._partitioned.discard((b, a))

    def heal_all(self) -> None:
        """Remove all partitions."""
        self._partitioned.clear()

    def is_partitioned(self, a: str, b: str) -> bool:
        """Whether messages from ``a`` to ``b`` are currently blocked."""
        return (a, b) in self._partitioned

    # ------------------------------------------------------------------
    # Link faults (chaos harness)
    # ------------------------------------------------------------------
    def set_link_faults(self, a: str, b: str, faults: LinkFaults,
                        bidirectional: bool = True) -> None:
        """Install an adversarial fault model on the ``a -> b`` link (and,
        by default, on ``b -> a`` too)."""
        pairs = [(a, b), (b, a)] if bidirectional else [(a, b)]
        for pair in pairs:
            self._link_faults[pair] = faults
            if pair not in self._link_stats:
                self._link_stats[pair] = LinkStats()
        self._refresh_fast_path()

    def clear_link_faults(self, a: str, b: str,
                          bidirectional: bool = True) -> None:
        """Remove the fault model from the ``a -> b`` link (counters are
        kept, so post-run reports still see what happened)."""
        self._link_faults.pop((a, b), None)
        if bidirectional:
            self._link_faults.pop((b, a), None)
        self._refresh_fast_path()

    def clear_all_link_faults(self) -> None:
        """Remove every installed link fault model (counters are kept)."""
        self._link_faults.clear()
        self._refresh_fast_path()

    def link_faults(self, a: str, b: str) -> Optional[LinkFaults]:
        """The fault model currently on ``a -> b``, if any."""
        return self._link_faults.get((a, b))

    def link_stats(self) -> Dict[Tuple[str, str], LinkStats]:
        """Counters for every link that ever had faults installed."""
        return dict(self._link_stats)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, src: "Node", dst_id: str, msg: Message) -> None:
        """Send ``msg`` from ``src`` to the node named ``dst_id``.

        The message is stamped, accounted, delayed by the topology's one-way
        latency (with jitter), and delivered unless the sender or receiver
        has crashed or the pair is partitioned.  Dropped messages are simply
        lost: the model is asynchronous and protocols must use timeouts.

        When no accounting window, link faults, or protocol trace hook is
        active (``self._fast``), the send takes an inline path whose only
        allocations are the delivery event and its args tuple — payload
        sizing, fault lookups, and per-link stats are all skipped, and the
        jitter draw is bit-identical to the slow path's.
        """
        try:
            dst = self.nodes[dst_id]
        except KeyError:
            raise KeyError(f"unknown destination node {dst_id!r}") from None
        kernel = self.kernel
        msg.src = src.node_id
        msg.dst = dst_id
        msg.sent_at = kernel._now
        self.messages_sent += 1

        if self._fast:
            if src.crashed:
                self.messages_dropped += 1
                return
            delay = self._one_way(src.dc, dst.dc)
            jitter = self.jitter_fraction
            if jitter > 0:
                delay *= 1.0 + self._rand() * jitter
            event = kernel.schedule(delay, self._deliver_cb, msg, dst)
            tracer = kernel.tracer
            if tracer.enabled:
                event.ctx = tracer.on_send(msg, src, dst, delay)
            digest = kernel.digest
            if digest is not None:
                digest.on_send(kernel._now, event.seq, src.node_id,
                               dst_id, msg.type_name, msg.size_bytes(),
                               event.ctx)
            return

        # Sizing walks the whole payload, so only pay for it while the
        # bandwidth experiment's accounting window is open.
        if self._accounting and not src.crashed:
            acct = self.account(src.node_id)
            acct.bytes_sent += msg.size_bytes()
            acct.messages_sent += 1

        if src.crashed:
            self.messages_dropped += 1
            return

        delay = self.topology.one_way(src.dc, dst.dc)
        if self.jitter_fraction > 0:
            delay *= 1.0 + self.kernel.random.uniform(0, self.jitter_fraction)

        # Adversarial link faults: only links with an installed model pay
        # for (or draw) anything, keeping the hot path and RNG streams
        # unchanged in fault-free runs.
        duplicate_delay: Optional[float] = None
        if self._link_faults:
            faults = self._link_faults.get((src.node_id, dst_id))
            if faults is not None:
                stats = self._link_stats[(src.node_id, dst_id)]
                stats.sent += 1
                rng = self._fault_rng
                if faults.drop_prob > 0 and \
                        rng.random() < faults.drop_prob:
                    stats.dropped += 1
                    self.messages_dropped += 1
                    return
                if faults.delay_prob > 0 and \
                        rng.random() < faults.delay_prob:
                    delay += rng.uniform(0.0, faults.delay_ms)
                    stats.delayed += 1
                if faults.dup_prob > 0 and \
                        rng.random() < faults.dup_prob:
                    duplicate_delay = delay + rng.uniform(
                        0.0, faults.dup_lag_ms)
                    stats.duplicated += 1

        self._schedule_delivery(src, dst, msg, delay)
        if duplicate_delay is not None:
            # The duplicate is a second wire copy: traced, digested, and
            # delivered independently of the original.
            self._schedule_delivery(src, dst, msg, duplicate_delay)

    def _schedule_delivery(self, src: "Node", dst: "Node", msg: Message,
                           delay: float) -> None:
        if self._trace_hook is not None:
            self._trace_hook(msg, delay)
        event = self.kernel.schedule(delay, self._deliver, msg, dst)
        tracer = self.kernel.tracer
        if tracer.enabled:
            # The delivery event carries a child context: the sender's
            # causal chain extended by this hop (cross-DC hops deepen it).
            event.ctx = tracer.on_send(msg, src, dst, delay)
        digest = self.kernel.digest
        if digest is not None:
            digest.on_send(self.kernel.now, event.seq, src.node_id,
                           dst.node_id, msg.type_name, msg.size_bytes(),
                           event.ctx)

    def _deliver(self, msg: Message, dst: "Node") -> None:
        if dst.crashed or (self._partitioned and
                           (msg.src, msg.dst) in self._partitioned):
            self.messages_dropped += 1
            return
        if self._accounting:
            acct = self.account(dst.node_id)
            acct.bytes_received += msg.size_bytes()
            acct.messages_received += 1
        self.messages_delivered += 1
        if self._link_stats:
            stats = self._link_stats.get((msg.src, dst.node_id))
            if stats is not None:
                stats.delivered += 1
        dst.enqueue(msg)
