"""Text rendering of experiment results, in the shape of the paper's
tables and figures."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.sim.stats import LatencyRecorder


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """A plain fixed-width table."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row):
        return "  ".join(cell.ljust(widths[i])
                         for i, cell in enumerate(row))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rendered)
    return "\n".join(lines)


def latency_summary_rows(recorders: Dict[str, LatencyRecorder]
                         ) -> List[List[str]]:
    """Rows of (system, count, median, p95, p99) for a latency table."""
    rows = []
    for label, recorder in recorders.items():
        summary = recorder.summary()
        rows.append([
            label,
            f"{int(summary['count'])}",
            f"{summary['median_ms']:.0f}",
            f"{summary['p95_ms']:.0f}",
            f"{summary['p99_ms']:.0f}",
        ])
    return rows


def render_latency_table(recorders: Dict[str, LatencyRecorder]) -> str:
    return format_table(
        ["system", "txns", "median (ms)", "p95 (ms)", "p99 (ms)"],
        latency_summary_rows(recorders))


def render_cdf(recorders: Dict[str, LatencyRecorder],
               points: int = 12) -> str:
    """Side-by-side CDF series — the figures' plotted lines as text."""
    lines = []
    for label, recorder in recorders.items():
        series = recorder.cdf(points=points)
        formatted = " ".join(f"({x:.0f}ms,{y:.2f})" for x, y in series)
        lines.append(f"{label}: {formatted}")
    return "\n".join(lines)


def render_throughput_sweep(
        series: Dict[str, List[Tuple[float, float, float]]]) -> str:
    """``series[label] = [(target, committed, abort_rate), ...]`` rendered
    as the Figure 5/6 tables."""
    rows = []
    for label, points in series.items():
        for target, committed, abort_rate in points:
            rows.append([label, f"{target:.0f}", f"{committed:.0f}",
                         f"{abort_rate * 100:.1f}%"])
    return format_table(
        ["system", "target (tps)", "committed (tps)", "abort rate"], rows)


def render_link_faults(rows: List[Tuple[str, str, int, int, int,
                                        int, int]]) -> str:
    """Per-link fault counters (``repro.sim.stats.link_fault_summary``
    rows) rendered as the chaos report's lossiness table."""
    table_rows = [[src, dst, str(sent), str(delivered), str(dropped),
                   str(duplicated), str(delayed)]
                  for src, dst, sent, delivered, dropped, duplicated,
                  delayed in rows]
    return format_table(
        ["link src", "link dst", "sent", "delivered", "dropped",
         "duplicated", "delayed"], table_rows)


def render_bandwidth(rows: Dict[str, Dict[str, float]]) -> str:
    """``rows[label][role_direction] = Mbps`` rendered as Figure 7."""
    headers = ["system", "client send", "client recv",
               "leader send", "leader recv",
               "follower send", "follower recv"]
    table_rows = []
    for label, cells in rows.items():
        table_rows.append([
            label,
            f"{cells.get('client_send', 0):.2f}",
            f"{cells.get('client_recv', 0):.2f}",
            f"{cells.get('leader_send', 0):.2f}",
            f"{cells.get('leader_recv', 0):.2f}",
            f"{cells.get('follower_send', 0):.2f}",
            f"{cells.get('follower_recv', 0):.2f}",
        ])
    return format_table(headers, table_rows)
