"""The DES-differential conformance harness.

The unmarked tests cover the harness's pure pieces (plan generation,
count reconciliation, snapshot merging) and the DES side alone — fast
and fully deterministic, so they run in tier-1.  The full differential
runs (DES *and* asyncio/TCP over localhost sockets, wall-clock settle
times) are real-time tests and sit behind the ``cluster`` marker:

    pytest tests/runtime/test_conformance.py --run-cluster
"""

import pytest

from repro.runtime.conformance import (
    SYSTEM_PROTOCOLS,
    SYSTEMS,
    TIME_DRIVEN,
    ConformanceOptions,
    ConformanceResult,
    build_conformance_plan,
    reconcile_counts,
    run_conformance,
    run_des_side,
)
from repro.runtime.harness import merge_snapshots

_FAST = ConformanceOptions(rounds=8)


# ----------------------------------------------------------------------
# Pure pieces (tier-1)
# ----------------------------------------------------------------------

class TestPlan:
    def test_plan_is_seed_deterministic(self):
        keys = ["wk0", "wk1", "wk2", "wk3"]
        a = build_conformance_plan(5, _FAST, 5, keys)
        b = build_conformance_plan(5, _FAST, 5, keys)
        c = build_conformance_plan(6, _FAST, 5, keys)
        assert a == b
        assert a != c
        assert len(a) == _FAST.rounds

    def test_plan_rows_are_valid(self):
        keys = ["wk0", "wk1"]
        for client, picked in build_conformance_plan(0, _FAST, 3, keys):
            assert 0 <= client < 3
            assert 1 <= len(picked) <= 2
            assert set(picked) <= set(keys)
            assert picked == tuple(sorted(picked))


class TestReconcileCounts:
    def test_equal_request_driven_counts_pass(self):
        counts = {"CommitRequest": 8, "TxnReply": 8, "AppendEntries": 100}
        other = dict(counts, AppendEntries=999)  # time-driven: exempt
        assert reconcile_counts("carousel-fast", counts, other) == []

    def test_request_driven_mismatch_is_a_violation(self):
        des = {"CommitRequest": 8}
        aio = {"CommitRequest": 9}
        violations = reconcile_counts("carousel-fast", des, aio)
        assert any("CommitRequest" in v for v in violations)

    def test_foreign_protocol_traffic_is_a_violation(self):
        # A tapir run must never emit carousel message types.
        violations = reconcile_counts("tapir", {"CommitRequest": 1},
                                      {"CommitRequest": 1})
        assert violations

    def test_unknown_message_type_is_a_violation(self):
        violations = reconcile_counts("carousel-fast",
                                      {"NotARealMessage": 1},
                                      {"NotARealMessage": 1})
        assert violations

    def test_time_driven_set_is_request_independent(self):
        assert "AppendEntries" in TIME_DRIVEN
        assert "ClientHeartbeat" in TIME_DRIVEN
        assert "CommitRequest" not in TIME_DRIVEN
        assert set(SYSTEM_PROTOCOLS) == set(SYSTEMS)


class TestMergeSnapshots:
    def test_union_and_counter_sum(self):
        a = {"stores": {"n1": {"p0": {"k": ("v", 1)}}},
             "resolved": {"n1": {"p0": {}}},
             "sent_by_type": {"TxnReply": 2}}
        b = {"stores": {"n2": {"p0": {"k": ("v", 1)}}},
             "resolved": {"n2": {"p0": {}}},
             "sent_by_type": {"TxnReply": 3, "CommitRequest": 1}}
        merged = merge_snapshots([a, b])
        assert set(merged["stores"]) == {"n1", "n2"}
        assert merged["sent_by_type"] == {"TxnReply": 5, "CommitRequest": 1}


class TestDesSide:
    def test_des_side_is_reproducible(self):
        keys = [f"wk{i}" for i in range(_FAST.n_keys)]
        plan = build_conformance_plan(0, _FAST, 5, keys)
        snaps = []
        for __ in range(2):
            __, results, snapshot, violations = run_des_side(
                "carousel-fast", 0, _FAST, plan)
            assert violations == []
            assert len(results) == len(plan)
            snaps.append(snapshot)
        assert snaps[0] == snaps[1]

    def test_result_ok_reflects_violations(self):
        good = ConformanceResult(system="tapir", seed=0)
        bad = ConformanceResult(system="tapir", seed=0,
                                violations=["boom"])
        assert good.ok and not bad.ok


# ----------------------------------------------------------------------
# Full differential runs (localhost TCP; opt in with --run-cluster)
# ----------------------------------------------------------------------

@pytest.mark.cluster
@pytest.mark.parametrize("system", SYSTEMS)
def test_differential_conformance(system):
    """Same seeded plan through both backends: same decisions, same
    final replicated state, reconciled message counts."""
    result = run_conformance(system, 0, ConformanceOptions(rounds=8))
    assert result.ok, "\n".join(result.violations)
    assert result.rounds == 8
    assert result.committed + result.aborted == 8
    assert result.counts_des and result.counts_aio


@pytest.mark.cluster
@pytest.mark.slow
def test_multiprocess_cluster_smoke():
    """One OS process per datacenter, driven over control frames, held
    to the same differential evaluation."""
    from repro.runtime.serve import run_cluster

    result = run_cluster("carousel-fast", 0,
                         opts=ConformanceOptions(rounds=5))
    assert result.ok, "\n".join(result.violations)
    assert result.committed + result.aborted == 5
