"""Carousel's client-side library.

Implements the Figure 1 interface over the simulator's event-driven model:
an application submits a :class:`~repro.txn.TransactionSpec` (the 2FI
transaction: fixed read/write key sets plus a write-value function) and the
client runs the whole protocol — reads piggybacked with prepares, the
commit round, heartbeats, retransmissions — completing with a
:class:`~repro.txn.TxnResult` callback.

The client always selects a local participant leader as the transaction
coordinator when one exists, otherwise any local consensus group leader
(§3.3).  In ``FAST`` mode it sends prepare requests to every replica of
each participant partition (CPC, §4.2) and reads from a replica in its own
datacenter when the partition leader is remote (§4.4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.core.config import CarouselConfig
from repro.core.messages import (
    ClientHeartbeat,
    CommitRequest,
    CoordPrepareRequest,
    PartitionSets,
    ReadOnlyReply,
    ReadOnlyRequest,
    ReadPrepareRequest,
    ReadReply,
    TxnReply,
)
from repro.sim.message import Message
from repro.sim.node import Node
from repro.trace.tracer import SPAN_COMMIT, SPAN_READ, SPAN_READ_ONLY
from repro.store.directory import DirectoryCache, DirectoryService
from repro.store.partitioning import Partitioner
from repro.txn import (
    REASON_COMMITTED,
    REASON_CONFLICT,
    TID,
    TransactionSpec,
    TxnResult,
)

PHASE_READ = "read"
PHASE_COMMIT = "commit"
PHASE_READ_ONLY = "read_only"
PHASE_DONE = "done"

CompletionCallback = Callable[[TxnResult], None]


@dataclass
class _ClientTxn:
    """Client-side state of one in-flight transaction."""

    tid: TID
    spec: TransactionSpec
    on_complete: Optional[CompletionCallback]
    started_ms: float
    phase: str = PHASE_READ
    participants: Dict[str, PartitionSets] = field(default_factory=dict)
    coordinator_id: str = ""
    coord_group_id: str = ""
    #: Partitions we still need a read reply from.
    awaiting_reads: Set[str] = field(default_factory=set)
    values: Dict[str, Any] = field(default_factory=dict)
    versions: Dict[str, int] = field(default_factory=dict)
    #: Read-only path: partitions that have answered OK.
    readonly_ok: Set[str] = field(default_factory=set)
    writes: Dict[str, Any] = field(default_factory=dict)
    abort_requested: bool = False
    heartbeat_timer: Any = None
    retry_timer: Any = None
    retries: int = 0
    #: Tracing: the currently-open client phase span (read/commit).
    phase_span: Any = None


class CarouselClient(Node):
    """An application server running Carousel's client library (§3.3)."""

    def __init__(self, node_id: str, dc: str, kernel, network,
                 directory: DirectoryService, partitioner: Partitioner,
                 config: CarouselConfig,
                 result_hook: Optional[CompletionCallback] = None):
        super().__init__(node_id, dc, kernel, network)
        if config.directory_cache_ttl_ms is not None:
            directory = DirectoryCache(
                directory, clock=lambda: kernel.now,
                ttl_ms=config.directory_cache_ttl_ms)
        self.directory = directory
        self.partitioner = partitioner
        self.config = config
        self.result_hook = result_hook
        self._counter = 0
        self._active: Dict[TID, _ClientTxn] = {}
        self._coord_rr = 0
        self.submitted = 0
        self.committed = 0
        self.aborted = 0

    # ------------------------------------------------------------------
    # Public API (Figure 1)
    # ------------------------------------------------------------------
    def begin(self) -> TID:
        """Allocate a transaction id (client id + local counter)."""
        self._counter += 1
        return TID(self.node_id, self._counter)

    def submit(self, spec: TransactionSpec,
               on_complete: Optional[CompletionCallback] = None) -> TID:
        """Run one 2FI transaction; completion is reported via callback."""
        tid = self.begin()
        txn = _ClientTxn(tid=tid, spec=spec, on_complete=on_complete,
                         started_ms=self.kernel.now)
        self._active[tid] = txn
        self.submitted += 1
        tracer = self.tracer
        if tracer.enabled:
            tracer.txn_begin(tid, system="carousel-" + self.config.mode,
                             client=self.node_id, dc=self.dc)
        self._build_participants(txn)
        if not txn.participants:
            self._complete(txn, True, REASON_COMMITTED)
            return tid
        if spec.is_read_only and self.config.read_only_optimization:
            txn.phase = PHASE_READ_ONLY
            if tracer.enabled:
                txn.phase_span = tracer.span_begin(
                    tid, SPAN_READ_ONLY, self.node_id, self.dc)
            self._send_read_only(txn)
        else:
            self._choose_coordinator(txn)
            if tracer.enabled:
                txn.phase_span = tracer.span_begin(
                    tid, SPAN_READ, self.node_id, self.dc)
            self._send_read_prepare(txn)
            self._arm_heartbeat(txn)
            if not txn.awaiting_reads:
                self._enter_commit_phase(txn)
        self._arm_retry(txn)
        return tid

    # ------------------------------------------------------------------
    # Setup helpers
    # ------------------------------------------------------------------
    def _build_participants(self, txn: _ClientTxn) -> None:
        spec = txn.spec
        read_groups = self.partitioner.group_by_partition(spec.read_keys)
        write_groups = self.partitioner.group_by_partition(spec.write_keys)
        for pid in sorted(set(read_groups) | set(write_groups)):
            txn.participants[pid] = PartitionSets(
                read_keys=tuple(read_groups.get(pid, ())),
                write_keys=tuple(write_groups.get(pid, ())))
        txn.awaiting_reads = {pid for pid, sets in txn.participants.items()
                              if sets.read_keys}

    def _choose_coordinator(self, txn: _ClientTxn) -> None:
        """Prefer a local participant leader; else any local leader; else
        the nearest leader (§3.3)."""
        local_participant = None
        for pid in txn.participants:
            info = self.directory.lookup(pid)
            if info.leader_datacenter() == self.dc:
                local_participant = pid
                break
        if local_participant is not None:
            group = local_participant
        else:
            local_groups = self.directory.leaders_in(self.dc)
            if local_groups:
                group = local_groups[self._coord_rr % len(local_groups)]
                self._coord_rr += 1
            else:
                topo = self.network.topology
                group = min(
                    self.directory.partitions(),
                    key=lambda pid: topo.rtt(
                        self.dc,
                        self.directory.lookup(pid).leader_datacenter()))
        info = self.directory.lookup(group)
        txn.coord_group_id = group
        txn.coordinator_id = info.leader

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def _send_read_prepare(self, txn: _ClientTxn) -> None:
        self.send(txn.coordinator_id, CoordPrepareRequest(
            tid=txn.tid, client_id=self.node_id,
            group_id=txn.coord_group_id,
            participants=dict(txn.participants)))
        fast = self.config.fast_path_enabled
        local_reads = self.config.local_reads_enabled
        nearest_reads = fast and self.config.read_nearest_replica
        # Ordered: participants is built over sorted(pids) in
        # _build_participants, so insertion order is the sorted order.
        # detlint: ignore[values-fanout]
        for pid, sets in txn.participants.items():
            info = self.directory.lookup(pid)
            targets = info.replicas if fast else [info.leader]
            nearest = None
            if nearest_reads and sets.read_keys and \
                    info.replica_in(self.dc) is None:
                # §4.4.1 extension: no local replica, so also read from
                # the closest one (staleness is caught at commit time).
                topo = self.network.topology
                nearest = min(
                    info.replicas,
                    key=lambda r: topo.rtt(
                        self.dc,
                        info.datacenters[info.replicas.index(r)]))
            for replica, replica_dc in zip(info.replicas, info.datacenters):
                if replica not in targets:
                    continue
                want_read = bool(sets.read_keys) and (
                    replica == info.leader
                    or (local_reads and replica_dc == self.dc)
                    or replica == nearest)
                self.send(replica, ReadPrepareRequest(
                    tid=txn.tid, partition_id=pid,
                    coordinator_id=txn.coordinator_id,
                    coord_group_id=txn.coord_group_id,
                    read_keys=sets.read_keys,
                    write_keys=sets.write_keys,
                    want_read=want_read, fast_path=fast))

    def _send_read_only(self, txn: _ClientTxn) -> None:
        # Ordered: participants insertion order is sorted(pids); see
        # _build_participants.
        # detlint: ignore[values-fanout]
        for pid, sets in txn.participants.items():
            if pid in txn.readonly_ok:
                continue
            leader = self.directory.lookup(pid).leader
            self.send(leader, ReadOnlyRequest(
                tid=txn.tid, partition_id=pid, keys=sets.read_keys))

    def _send_commit(self, txn: _ClientTxn) -> None:
        read_versions = {k: txn.versions[k] for k in txn.spec.read_keys
                         if k in txn.versions}
        self.send(txn.coordinator_id, CommitRequest(
            tid=txn.tid, abort=txn.abort_requested,
            writes=dict(txn.writes), read_versions=read_versions))

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def handle_message(self, msg: Message) -> None:
        if isinstance(msg, ReadReply):
            self._on_read_reply(msg)
        elif isinstance(msg, TxnReply):
            self._on_txn_reply(msg)
        elif isinstance(msg, ReadOnlyReply):
            self._on_read_only_reply(msg)
        else:  # pragma: no cover - routing bug
            raise TypeError(f"unexpected client message {msg!r}")

    def _on_read_reply(self, msg: ReadReply) -> None:
        txn = self._active.get(msg.tid)
        if txn is None or txn.phase != PHASE_READ:
            return
        if msg.partition_id not in txn.awaiting_reads:
            return  # a slower replica lost the race (§4.4.1: first wins)
        txn.awaiting_reads.discard(msg.partition_id)
        for key, (value, version) in msg.values.items():
            txn.values[key] = value
            txn.versions[key] = version
        if not txn.awaiting_reads:
            self._enter_commit_phase(txn)

    def _enter_commit_phase(self, txn: _ClientTxn) -> None:
        txn.phase = PHASE_COMMIT
        tracer = self.tracer
        if tracer.enabled:
            tracer.span_end(txn.phase_span)
            txn.phase_span = tracer.span_begin(
                txn.tid, SPAN_COMMIT, self.node_id, self.dc)
        reads = {k: txn.values.get(k) for k in txn.spec.read_keys}
        writes = txn.spec.run_write_function(reads)
        if writes is None:
            txn.abort_requested = True  # the application chose to abort
        else:
            txn.writes = writes
        self._cancel(txn, "heartbeat_timer")
        self._send_commit(txn)

    def _on_txn_reply(self, msg: TxnReply) -> None:
        txn = self._active.get(msg.tid)
        if txn is None:
            return
        self._complete(txn, msg.committed, msg.reason)

    def _on_read_only_reply(self, msg: ReadOnlyReply) -> None:
        txn = self._active.get(msg.tid)
        if txn is None or txn.phase != PHASE_READ_ONLY:
            return
        if not msg.ok:
            self._complete(txn, False, REASON_CONFLICT)
            return
        if msg.partition_id in txn.readonly_ok:
            return
        txn.readonly_ok.add(msg.partition_id)
        for key, (value, version) in msg.values.items():
            txn.values[key] = value
            txn.versions[key] = version
        if txn.readonly_ok >= set(txn.participants):
            self._complete(txn, True, REASON_COMMITTED)

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def _complete(self, txn: _ClientTxn, committed: bool,
                  reason: str) -> None:
        if txn.phase == PHASE_DONE:
            return
        txn.phase = PHASE_DONE
        tracer = self.tracer
        if tracer.enabled:
            tracer.span_end(txn.phase_span)
            txn.phase_span = None
            tracer.txn_end(txn.tid, committed, reason)
        self._cancel(txn, "heartbeat_timer")
        self._cancel(txn, "retry_timer")
        self._active.pop(txn.tid, None)
        if committed:
            self.committed += 1
        else:
            self.aborted += 1
        result = TxnResult(
            tid=txn.tid, committed=committed,
            latency_ms=self.kernel.now - txn.started_ms,
            reason=reason, txn_type=txn.spec.txn_type,
            reads=dict(txn.values))
        if txn.on_complete is not None:
            txn.on_complete(result)
        if self.result_hook is not None:
            self.result_hook(result)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def _arm_heartbeat(self, txn: _ClientTxn) -> None:
        txn.heartbeat_timer = self.set_timer(
            self.config.heartbeat_interval_ms, self._heartbeat, txn)

    def _heartbeat(self, txn: _ClientTxn) -> None:
        if txn.phase != PHASE_READ:
            return  # heartbeats stop once the commit request is sent
        self.send(txn.coordinator_id, ClientHeartbeat(tid=txn.tid))
        self._arm_heartbeat(txn)

    def _arm_retry(self, txn: _ClientTxn) -> None:
        # Capped exponential backoff keyed by this transaction's retry
        # count; the degenerate policy is the historical fixed interval.
        delay = self.config.retry_policy.delay_ms(txn.retries,
                                                  self.kernel.random)
        txn.retry_timer = self.set_timer(delay, self._retry, txn)

    def _retry(self, txn: _ClientTxn) -> None:
        """Retransmit the current phase against (possibly new) leaders."""
        if txn.phase == PHASE_DONE:
            return
        txn.retries += 1
        if isinstance(self.directory, DirectoryCache):
            # A stall usually means a leader moved: refresh our view of
            # this transaction's partitions before retransmitting.
            for pid in txn.participants:
                self.directory.invalidate(pid)
            if txn.coord_group_id:
                self.directory.invalidate(txn.coord_group_id)
        if txn.phase == PHASE_READ_ONLY:
            self._send_read_only(txn)
        elif txn.phase == PHASE_READ:
            self._refresh_coordinator(txn)
            self._send_read_prepare(txn)
        elif txn.phase == PHASE_COMMIT:
            self._refresh_coordinator(txn)
            # A successor coordinator elected before the read/write sets
            # replicated holds no record of this transaction, and the
            # commit request alone cannot create one (it carries no
            # participant sets).  Re-register first: on_coord_prepare
            # ignores duplicates, so this is safe for the common case
            # where the coordinator already knows the transaction.
            self.send(txn.coordinator_id, CoordPrepareRequest(
                tid=txn.tid, client_id=self.node_id,
                group_id=txn.coord_group_id,
                participants=dict(txn.participants)))
            self._send_commit(txn)
        self._arm_retry(txn)

    def _refresh_coordinator(self, txn: _ClientTxn) -> None:
        """The coordinating *group* is fixed for the transaction's life;
        only its leader may have moved."""
        info = self.directory.lookup(txn.coord_group_id)
        txn.coordinator_id = info.leader

    def _cancel(self, txn: _ClientTxn, name: str) -> None:
        timer = getattr(txn, name)
        if timer is not None:
            timer.cancel()
            setattr(txn, name, None)
