"""Unit tests for the CPC leader-recovery helpers (§4.3.3)."""

import pytest

from repro.core.occ import PREPARED, PendingTxn, freeze_versions
from repro.core.recovery import (
    conflicts_between,
    filter_candidates,
    find_fast_path_candidates,
    majority_of,
    select_candidate_lists,
)
from repro.txn import TID


def entry(seq, reads=(), writes=(), versions=None, term=1):
    versions = versions if versions is not None else {k: 0 for k in reads}
    return PendingTxn(TID("c", seq), frozenset(reads), frozenset(writes),
                      freeze_versions(versions), term, "coord",
                      provisional=True)


class TestMajority:
    def test_values(self):
        assert majority_of(1) == 1
        assert majority_of(2) == 2
        assert majority_of(3) == 2
        assert majority_of(5) == 3


class TestSelectCandidateLists:
    def test_truncates_to_f_plus_one(self):
        own = (entry(1),)
        payloads = {"v1": (entry(2),), "v2": (entry(3),),
                    "v3": (entry(4),)}
        lists = select_candidate_lists(own, payloads, "me", f=1)
        assert len(lists) == 2  # f + 1
        assert lists[0][0] == "me"

    def test_none_payload_treated_as_empty(self):
        lists = select_candidate_lists((), {"v1": None}, "me", f=1)
        assert lists[1] == ("v1", ())

    def test_own_payload_not_duplicated(self):
        own = (entry(1),)
        payloads = {"me": own, "v1": (entry(2),)}
        lists = select_candidate_lists(own, payloads, "me", f=1)
        assert [voter for voter, __ in lists] == ["me", "v1"]


class TestFindCandidates:
    def test_requires_majority_support(self):
        e = entry(1, reads=("a",))
        lists = [("v1", (e,)), ("v2", ()), ("v3", ())]
        assert find_fast_path_candidates(lists) == []

    def test_majority_support_found(self):
        e = entry(1, reads=("a",))
        lists = [("v1", (e,)), ("v2", (e,)), ("v3", ())]
        assert [c.tid for c in find_fast_path_candidates(lists)] == [e.tid]

    def test_version_mismatch_not_pooled(self):
        e1 = entry(1, reads=("a",), versions={"a": 0})
        e2 = entry(1, reads=("a",), versions={"a": 5})
        lists = [("v1", (e1,)), ("v2", (e2,)), ("v3", ())]
        # Same tid but different versions: neither variant has majority.
        assert find_fast_path_candidates(lists) == []

    def test_term_mismatch_not_pooled(self):
        e1 = entry(1, reads=("a",), term=1)
        e2 = entry(1, reads=("a",), term=2)
        lists = [("v1", (e1,)), ("v2", (e2,))]
        assert find_fast_path_candidates(lists) == []

    def test_single_list_majority_is_itself(self):
        e = entry(1)
        assert find_fast_path_candidates([("v1", (e,))]) == [e]

    def test_deterministic_order(self):
        e1, e2 = entry(1, writes=("x",)), entry(2, writes=("y",))
        lists = [("v1", (e2, e1)), ("v2", (e1, e2))]
        candidates = find_fast_path_candidates(lists)
        assert [c.tid.seq for c in candidates] == [1, 2]


class TestConflictsBetween:
    def test_write_write(self):
        assert conflicts_between(entry(1, writes=("k",)),
                                 entry(2, writes=("k",)))

    def test_read_write(self):
        assert conflicts_between(entry(1, reads=("k",)),
                                 entry(2, writes=("k",)))
        assert conflicts_between(entry(1, writes=("k",)),
                                 entry(2, reads=("k",)))

    def test_read_read_no_conflict(self):
        assert not conflicts_between(entry(1, reads=("k",)),
                                     entry(2, reads=("k",)))

    def test_disjoint(self):
        assert not conflicts_between(entry(1, reads=("a",), writes=("b",)),
                                     entry(2, reads=("c",), writes=("d",)))


class TestFilterCandidates:
    def current(self, versions):
        return lambda keys: {k: versions.get(k, 0) for k in keys}

    def test_stale_versions_rejected(self):
        candidate = entry(1, reads=("k",), versions={"k": 1})
        accepted = filter_candidates([candidate], [], self.current({"k": 2}))
        assert accepted == []

    def test_fresh_versions_accepted(self):
        candidate = entry(1, reads=("k",), versions={"k": 2})
        accepted = filter_candidates([candidate], [], self.current({"k": 2}))
        assert accepted == [candidate]

    def test_conflict_with_slow_path_rejected(self):
        candidate = entry(1, writes=("k",))
        slow = entry(9, writes=("k",))
        assert filter_candidates([candidate], [slow],
                                 self.current({})) == []

    def test_self_in_slow_path_not_a_conflict(self):
        candidate = entry(1, writes=("k",))
        assert filter_candidates([candidate], [candidate],
                                 self.current({})) == [candidate]

    def test_mutual_conflicts_resolved_greedily_by_tid(self):
        a = entry(1, writes=("k",))
        b = entry(2, writes=("k",))
        accepted = filter_candidates([b, a], [], self.current({}))
        assert [c.tid.seq for c in accepted] == [1]

    def test_non_conflicting_all_accepted(self):
        a = entry(1, writes=("x",))
        b = entry(2, writes=("y",))
        assert len(filter_candidates([a, b], [], self.current({}))) == 2
