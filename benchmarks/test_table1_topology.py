"""Table 1: round-trip network latencies between datacenters.

In the paper this is a measurement of EC2; here the matrix is the
simulator's ground truth, so the "reproduction" verifies that the deployed
network delivers exactly these round-trip times and prints the table.
"""

from repro.bench.report import format_table
from repro.sim.kernel import Kernel
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.topology import FIVE_REGIONS, TABLE_1_RTT_MS, \
    ec2_five_regions


class _Echo(Node):
    def handle_message(self, msg):
        if getattr(msg, "want_reply", False):
            msg.want_reply = False
            self.send(msg.src, msg)
        else:
            self.round_trip_done_at = self.kernel.now


def measure_rtt(a: str, b: str) -> float:
    """Round-trip one message between datacenters ``a`` and ``b``."""
    from dataclasses import dataclass
    from repro.sim.message import Message

    @dataclass
    class _Ping(Message):
        want_reply: bool = True

    kernel = Kernel(seed=0)
    network = Network(kernel, ec2_five_regions(), jitter_fraction=0.0)
    src = _Echo("src", a, kernel, network)
    dst = _Echo("dst", b, kernel, network)
    src.send("dst", _Ping())
    kernel.run()
    return src.round_trip_done_at


def test_table1_rtt_matrix(benchmark):
    def measure_all():
        rows = []
        measured = {}
        for i, a in enumerate(FIVE_REGIONS):
            for b in FIVE_REGIONS[i + 1:]:
                measured[(a, b)] = measure_rtt(a, b)
        return measured

    measured = benchmark.pedantic(measure_all, rounds=1, iterations=1)

    rows = []
    for (a, b), rtt in sorted(measured.items()):
        expected = TABLE_1_RTT_MS[(a, b)] if (a, b) in TABLE_1_RTT_MS \
            else TABLE_1_RTT_MS[(b, a)]
        rows.append([a, b, f"{expected:.0f}", f"{rtt:.1f}"])
        assert rtt == expected, (a, b)
    print("\nTable 1: roundtrip network latencies between datacenters (ms)")
    print(format_table(["from", "to", "paper", "measured"], rows))
