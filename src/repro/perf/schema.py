"""The ``BENCH_<label>.json`` document format and its validator.

A BENCH file is the unit of perf tracking: one run of the benchmark
suites on one host.  Two kinds of numbers live side by side:

* **wall-clock rates** (``wall_seconds``, ``rate_per_sec``) — honest,
  host-dependent throughput; compare them only against files from the
  same machine, with a threshold.
* **operation counters** (``ops``) — counts of simulated work (events
  fired, messages delivered, cancellations, transactions committed,
  object-construction proxies).  These are *deterministic*: they depend
  only on the simulation, never on the host or the wall clock, so CI
  compares them **exactly** — any drift is a behaviour change, not
  noise.

The validator is hand-rolled stdlib code (this repository takes no
third-party dependencies), but :data:`BENCH_SCHEMA` is written in JSON
Schema shape so external tooling can consume it too.
"""

from __future__ import annotations

from typing import Any, Dict, List

#: Current document version; bump when the shape changes.
#:
#: v2 added the informational ``host.cpu_count`` / ``host.jobs`` fields
#: and the optional top-level ``cache`` block (sweep-cache hit/miss
#: counts for the run that produced the document).  v1 files remain
#: valid — ops comparison is version-independent — so committed
#: baselines need no regeneration.
SCHEMA_VERSION = 2

#: Document versions the validator accepts.
ACCEPTED_VERSIONS = (1, 2)

#: Units a suite may report its rate in.
UNITS = ("events", "messages", "txns", "keys")

#: JSON-Schema-shaped description of a BENCH document.
BENCH_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro perf BENCH document",
    "type": "object",
    "required": ["schema_version", "label", "scale", "host", "suites"],
    "properties": {
        "schema_version": {"enum": list(ACCEPTED_VERSIONS)},
        "label": {"type": "string", "minLength": 1},
        "scale": {"enum": ["quick", "full"]},
        "created_unix": {"type": "number"},
        "host": {
            "type": "object",
            "required": ["python", "platform", "implementation"],
            "properties": {
                "python": {"type": "string"},
                "platform": {"type": "string"},
                "implementation": {"type": "string"},
                "cpu_count": {"type": "integer", "minimum": 1},
                "jobs": {"type": "integer", "minimum": 1},
            },
        },
        "cache": {
            "type": "object",
            "required": ["hits", "misses"],
            "properties": {
                "hits": {"type": "integer", "minimum": 0},
                "misses": {"type": "integer", "minimum": 0},
            },
        },
        "suites": {
            "type": "object",
            "minProperties": 1,
            "additionalProperties": {
                "type": "object",
                "required": ["unit", "units_processed", "wall_seconds",
                             "rate_per_sec", "ops"],
                "properties": {
                    "unit": {"enum": list(UNITS)},
                    "units_processed": {"type": "integer", "minimum": 0},
                    "wall_seconds": {"type": "number",
                                     "exclusiveMinimum": 0},
                    "rate_per_sec": {"type": "number", "minimum": 0},
                    "ops": {
                        "type": "object",
                        "additionalProperties": {"type": "integer"},
                    },
                },
            },
        },
    },
}


def _is_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _is_number(value: Any) -> bool:
    return (isinstance(value, (int, float))
            and not isinstance(value, bool))


def validate_bench(doc: Any) -> List[str]:
    """Validate ``doc`` against :data:`BENCH_SCHEMA`.

    Returns a list of human-readable errors; an empty list means the
    document is valid.
    """
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["document must be a JSON object"]

    for key in ("schema_version", "label", "scale", "host", "suites"):
        if key not in doc:
            errors.append(f"missing required key {key!r}")
    if errors:
        return errors

    if doc["schema_version"] not in ACCEPTED_VERSIONS:
        errors.append(f"schema_version must be one of "
                      f"{ACCEPTED_VERSIONS}, "
                      f"got {doc['schema_version']!r}")
    if not isinstance(doc["label"], str) or not doc["label"]:
        errors.append("label must be a non-empty string")
    if doc["scale"] not in ("quick", "full"):
        errors.append(f"scale must be 'quick' or 'full', "
                      f"got {doc['scale']!r}")
    if "created_unix" in doc and not _is_number(doc["created_unix"]):
        errors.append("created_unix must be a number")

    host = doc["host"]
    if not isinstance(host, dict):
        errors.append("host must be an object")
    else:
        for key in ("python", "platform", "implementation"):
            if not isinstance(host.get(key), str):
                errors.append(f"host.{key} must be a string")
        for key in ("cpu_count", "jobs"):
            if key in host and (not _is_int(host[key])
                                or host[key] < 1):
                errors.append(f"host.{key} must be a positive integer")

    if "cache" in doc:
        cache = doc["cache"]
        if not isinstance(cache, dict):
            errors.append("cache must be an object")
        else:
            for key in ("hits", "misses"):
                if not _is_int(cache.get(key)) or cache[key] < 0:
                    errors.append(f"cache.{key} must be a non-negative "
                                  "integer")

    suites = doc["suites"]
    if not isinstance(suites, dict) or not suites:
        errors.append("suites must be a non-empty object")
        return errors
    for name, suite in sorted(suites.items()):
        where = f"suites[{name!r}]"
        if not isinstance(suite, dict):
            errors.append(f"{where} must be an object")
            continue
        for key in ("unit", "units_processed", "wall_seconds",
                    "rate_per_sec", "ops"):
            if key not in suite:
                errors.append(f"{where} missing required key {key!r}")
        if "unit" in suite and suite["unit"] not in UNITS:
            errors.append(f"{where}.unit must be one of {UNITS}, "
                          f"got {suite['unit']!r}")
        if "units_processed" in suite and (
                not _is_int(suite["units_processed"])
                or suite["units_processed"] < 0):
            errors.append(f"{where}.units_processed must be a "
                          "non-negative integer")
        if "wall_seconds" in suite and (
                not _is_number(suite["wall_seconds"])
                or suite["wall_seconds"] <= 0):
            errors.append(f"{where}.wall_seconds must be a positive "
                          "number")
        if "rate_per_sec" in suite and (
                not _is_number(suite["rate_per_sec"])
                or suite["rate_per_sec"] < 0):
            errors.append(f"{where}.rate_per_sec must be a non-negative "
                          "number")
        ops = suite.get("ops")
        if ops is not None:
            if not isinstance(ops, dict):
                errors.append(f"{where}.ops must be an object")
            else:
                for op_name, value in sorted(ops.items()):
                    if not isinstance(op_name, str):
                        errors.append(f"{where}.ops keys must be "
                                      "strings")
                    elif not _is_int(value):
                        errors.append(f"{where}.ops[{op_name!r}] must "
                                      "be an integer")
    return errors
