"""``python -m repro chaos`` — the nemesis harness entry point.

Runs seeded chaos scenarios against one system (or all four), reports
per-seed oracle outcomes, and on the first failure shrinks the nemesis
schedule to a minimal reproducing subsequence and prints it together
with the failing seed, the nemesis timeline, and the causal chain of
messages behind the violating transaction.

Examples::

    python -m repro chaos --system carousel-fast --seeds 0..9
    python -m repro chaos --system all --seeds 0..2 --rounds 15
    python -m repro chaos --system carousel-fast --seeds 0..9 \\
        --plant-bug writeback-dup
"""

from __future__ import annotations

import argparse
from dataclasses import replace
from typing import List, Optional, Sequence

from repro.bench.report import render_link_faults
from repro.chaos.bugs import PLANTABLE_BUGS
from repro.chaos.minimize import minimize_schedule
from repro.chaos.oracles import OracleViolation
from repro.chaos.runner import (
    SYSTEMS,
    ChaosOptions,
    ChaosRunResult,
    canonical_system,
    run_chaos,
)
from repro.trace.tracer import SPAN_NEMESIS


def parse_seeds(text: str) -> List[int]:
    """Parse ``"0..9"``, ``"3"``, or ``"1,4,7"`` into a seed list."""
    seeds: List[int] = []
    for part in text.split(","):
        part = part.strip()
        if ".." in part:
            lo, hi = part.split("..", 1)
            start, stop = int(lo), int(hi)
            if stop < start:
                raise ValueError(f"empty seed range {part!r}")
            seeds.extend(range(start, stop + 1))
        elif part:
            seeds.append(int(part))
    if not seeds:
        raise ValueError(f"no seeds in {text!r}")
    return seeds


def _print_violations(violations: Sequence[OracleViolation],
                      limit: int = 8) -> None:
    for violation in violations[:limit]:
        print(f"    {violation}")
    if len(violations) > limit:
        print(f"    ... and {len(violations) - limit} more")


def _parallel_first_failing(system: str, seed: int, opts: ChaosOptions,
                            plant_bug_name: Optional[str], jobs: int):
    """Batch candidate evaluation for the minimizer: replay every
    candidate schedule across ``jobs`` worker processes and pick the
    smallest failing index — the same selection a lazy sequential scan
    makes, so the minimized schedule is identical."""
    from repro.sweep import SweepExecutor
    from repro.sweep.kinds import chaos_replay_spec

    executor = SweepExecutor(jobs=jobs, cache=None)

    def first_failing(candidates):
        specs = [chaos_replay_spec(system, seed, opts, candidate,
                                   plant_bug=plant_bug_name)
                 for candidate in candidates]
        return executor.first_failing(specs)

    return first_failing


def _report_counterexample(system: str, seed: int, result: ChaosRunResult,
                           opts: ChaosOptions, planted_bug,
                           plant_bug_name: Optional[str] = None,
                           jobs: int = 1) -> None:
    """Minimize the failing schedule and print the counterexample report."""
    print(f"    minimizing {len(result.schedule)}-event nemesis "
          f"schedule (deterministic replays, jobs={jobs})...")

    def still_fails(candidate):
        rerun = run_chaos(system, seed, opts, schedule=candidate,
                          planted_bug=planted_bug)
        return not rerun.ok

    first_failing = None
    if jobs > 1:
        first_failing = _parallel_first_failing(system, seed, opts,
                                                plant_bug_name, jobs)
    minimal = minimize_schedule(result.schedule, still_fails,
                                first_failing=first_failing)
    print(f"    minimal reproduction: seed {seed}, {len(minimal)} of "
          f"{len(result.schedule)} nemesis events:")
    for i, event in enumerate(minimal, 1):
        print(f"      {i}. {event.describe()}")

    # Replay the minimal schedule with tracing for the causal chain.
    traced = run_chaos(system, seed, replace(opts, trace=True),
                       schedule=minimal, planted_bug=planted_bug)
    _print_violations(traced.violations)
    tid = next((v.tid for v in traced.violations if v.tid is not None),
               None)
    tracer = traced.tracer
    if tracer is not None:
        nemesis_spans = [s for s in tracer.orphan_spans
                         if s.kind == SPAN_NEMESIS]
        if nemesis_spans:
            print("    nemesis timeline during reproduction:")
            for span in nemesis_spans:
                print(f"      {span.start_ms:9.1f}ms  {span.detail}")
        txn = tracer.get(tid) if tid is not None else None
        if txn is not None:
            print(f"    causal trace chain for txn {tid} "
                  "(client-observed critical path):")
            for ann in txn.critical_path():
                wan = "WAN" if ann.cross_dc else "local"
                print(f"      {ann.send_ms:9.1f}ms  {ann.msg_type} "
                      f"{ann.src} -> {ann.dst} [{wan}] "
                      f"hops={ann.wan_hops}")
    if traced.link_rows:
        print("    per-link fault counters:")
        for line in render_link_faults(traced.link_rows).splitlines():
            print(f"      {line}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; ``argv`` includes the leading ``chaos`` verb."""
    argv = list(argv) if argv is not None else []
    if argv and argv[0] == "chaos":
        argv = argv[1:]
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description="Deterministic nemesis harness: adversarial faults, "
                    "safety/liveness oracles, schedule minimization.")
    parser.add_argument("--system", default="carousel-fast",
                        help="carousel-basic|carousel-fast|layered|tapir|"
                             "all (aliases: basic, fast)")
    parser.add_argument("--seeds", default="0..4",
                        help='seed set: "0..9", "3", or "1,4,7"')
    parser.add_argument("--rounds", type=int, default=25,
                        help="workload transactions per run")
    parser.add_argument("--events", type=int, default=6,
                        help="nemesis events per schedule")
    parser.add_argument("--restart-weight", type=int, default=0,
                        metavar="W",
                        help="extra sampling weight for power-cycle "
                             "(restart) nemesis events (default 0: "
                             "unchanged legacy timelines); any W > 0 "
                             "also enables the final-restart durability "
                             "check")
    parser.add_argument("--final-restart", action="store_true",
                        help="power-cycle every server after the normal "
                             "oracles and check durability against the "
                             "WAL-rebuilt state")
    parser.add_argument("--plant-bug", choices=sorted(PLANTABLE_BUGS),
                        default=None,
                        help="activate a known bug to validate the oracles")
    parser.add_argument("--no-minimize", action="store_true",
                        help="report failures without shrinking schedules")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for minimization replays "
                             "(default 1: in-process)")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    systems = list(SYSTEMS) if args.system == "all" else [
        canonical_system(args.system)]
    seeds = parse_seeds(args.seeds)
    opts = ChaosOptions(rounds=args.rounds, n_events=args.events,
                        restart_weight=args.restart_weight,
                        final_restart=(args.final_restart
                                       or args.restart_weight > 0))
    planted_bug = PLANTABLE_BUGS.get(args.plant_bug)

    failures = 0
    for system in systems:
        plant_note = (f" plant-bug={args.plant_bug}"
                      if args.plant_bug else "")
        print(f"chaos: system={system} seeds={args.seeds} "
              f"rounds={opts.rounds} events={opts.n_events}{plant_note}")
        for seed in seeds:
            result = run_chaos(system, seed, opts,
                               planted_bug=planted_bug)
            dropped = sum(row[4] for row in result.link_rows)
            duplicated = sum(row[5] for row in result.link_rows)
            restarts = sum(n for _, n in result.restart_counts)
            if result.ok:
                print(f"  seed {seed}: ok    committed={result.committed}"
                      f" aborted={result.aborted}"
                      f" nemesis={len(result.schedule)}"
                      f" drops={dropped} dups={duplicated}"
                      f" restarts={restarts}")
                continue
            failures += 1
            print(f"  seed {seed}: FAIL  "
                  f"{len(result.violations)} oracle violation(s)")
            _print_violations(result.violations)
            if not args.no_minimize:
                _report_counterexample(system, seed, result, opts,
                                       planted_bug,
                                       plant_bug_name=args.plant_bug,
                                       jobs=args.jobs)
            # One counterexample is the deliverable; stop scanning.
            return 1
    total = len(systems) * len(seeds)
    print(f"chaos: all oracles green ({total} run(s), "
          f"{len(systems)} system(s))")
    return 0
