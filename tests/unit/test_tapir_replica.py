"""Unit tests for the TAPIR replica's validation and resolution logic."""

import pytest

from repro.sim.kernel import Kernel
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.topology import single_datacenter
from repro.tapir.config import TapirConfig
from repro.tapir.messages import (
    PREPARE_ABORT,
    PREPARE_ABSTAIN,
    PREPARE_OK,
    TapirCommit,
    TapirFinalize,
    TapirPrepare,
    TapirRead,
)
from repro.tapir.replica import TapirReplica
from repro.txn import TID


class Sink(Node):
    """Collects every message sent to it."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.received = []

    def handle_message(self, msg):
        self.received.append(msg)


@pytest.fixture()
def rig():
    kernel = Kernel(seed=1)
    network = Network(kernel, single_datacenter(), jitter_fraction=0.0)
    replica = TapirReplica("r0", "dc0", kernel, network, "p0",
                           ["r0"], TapirConfig())
    sink = Sink("client", "dc0", kernel, network)
    return kernel, replica, sink


def send(kernel, replica, sink, msg):
    sink.send(replica.node_id, msg)
    kernel.run()
    return sink.received


class TestValidation:
    def test_read_returns_values_and_versions(self, rig):
        kernel, replica, sink = rig
        replica.store.write("a", "v", 3)
        replies = send(kernel, replica, sink,
                       TapirRead(tid=TID("c", 1), partition_id="p0",
                                 keys=("a", "missing")))
        assert replies[-1].values == {"a": ("v", 3), "missing": (None, 0)}

    def test_prepare_ok_when_versions_match(self, rig):
        kernel, replica, sink = rig
        replica.store.write("a", "v", 2)
        replies = send(kernel, replica, sink,
                       TapirPrepare(tid=TID("c", 1), partition_id="p0",
                                    read_versions=(("a", 2),),
                                    write_keys=("a",)))
        assert replies[-1].result == PREPARE_OK
        assert replica.prepares_ok == 1

    def test_stale_version_aborts(self, rig):
        kernel, replica, sink = rig
        replica.store.write("a", "v", 2)
        replies = send(kernel, replica, sink,
                       TapirPrepare(tid=TID("c", 1), partition_id="p0",
                                    read_versions=(("a", 1),),
                                    write_keys=()))
        assert replies[-1].result == PREPARE_ABORT
        assert replica.prepares_rejected == 1

    def test_conflict_with_prepared_abstains(self, rig):
        kernel, replica, sink = rig
        send(kernel, replica, sink,
             TapirPrepare(tid=TID("c", 1), partition_id="p0",
                          read_versions=(("a", 0),), write_keys=("a",)))
        replies = send(kernel, replica, sink,
                       TapirPrepare(tid=TID("c", 2), partition_id="p0",
                                    read_versions=(("a", 0),),
                                    write_keys=("a",)))
        assert replies[-1].result == PREPARE_ABSTAIN

    def test_duplicate_prepare_is_ok(self, rig):
        kernel, replica, sink = rig
        msg1 = TapirPrepare(tid=TID("c", 1), partition_id="p0",
                            read_versions=(("a", 0),), write_keys=("a",))
        send(kernel, replica, sink, msg1)
        msg2 = TapirPrepare(tid=TID("c", 1), partition_id="p0",
                            read_versions=(("a", 0),), write_keys=("a",))
        replies = send(kernel, replica, sink, msg2)
        assert replies[-1].result == PREPARE_OK
        assert replica.prepares_ok == 1  # not double counted


class TestResolution:
    def prepare(self, kernel, replica, sink, seq=1, key="a"):
        send(kernel, replica, sink,
             TapirPrepare(tid=TID("c", seq), partition_id="p0",
                          read_versions=((key, 0),), write_keys=(key,)))

    def test_commit_applies_writes_and_clears(self, rig):
        kernel, replica, sink = rig
        self.prepare(kernel, replica, sink)
        send(kernel, replica, sink,
             TapirCommit(tid=TID("c", 1), partition_id="p0", commit=True,
                         writes={"a": "new"}))
        assert replica.store.read("a").value == "new"
        assert TID("c", 1) not in replica.prepared
        assert replica.resolved[TID("c", 1)] is True

    def test_abort_commit_message_clears_without_writing(self, rig):
        kernel, replica, sink = rig
        self.prepare(kernel, replica, sink)
        send(kernel, replica, sink,
             TapirCommit(tid=TID("c", 1), partition_id="p0", commit=False,
                         writes={}))
        assert "a" not in replica.store
        assert TID("c", 1) not in replica.prepared

    def test_duplicate_commit_applies_once(self, rig):
        kernel, replica, sink = rig
        self.prepare(kernel, replica, sink)
        for __ in range(2):
            send(kernel, replica, sink,
                 TapirCommit(tid=TID("c", 1), partition_id="p0",
                             commit=True, writes={"a": "new"}))
        assert replica.store.read("a").version == 1

    def test_prepare_after_resolution_reports_outcome(self, rig):
        kernel, replica, sink = rig
        self.prepare(kernel, replica, sink)
        send(kernel, replica, sink,
             TapirCommit(tid=TID("c", 1), partition_id="p0", commit=True,
                         writes={"a": "x"}))
        replies = send(kernel, replica, sink,
                       TapirPrepare(tid=TID("c", 1), partition_id="p0",
                                    read_versions=(("a", 0),),
                                    write_keys=("a",)))
        assert replies[-1].result == PREPARE_OK

    def test_finalize_adopts_ok_despite_abstain(self, rig):
        kernel, replica, sink = rig
        self.prepare(kernel, replica, sink, seq=1)
        # A second conflicting transaction abstained locally...
        send(kernel, replica, sink,
             TapirPrepare(tid=TID("c", 2), partition_id="p0",
                          read_versions=(("a", 0),), write_keys=("a",)))
        assert TID("c", 2) not in replica.prepared
        # ...but the group's slow path decided OK: the replica adopts it.
        send(kernel, replica, sink,
             TapirFinalize(tid=TID("c", 2), partition_id="p0",
                           result=PREPARE_OK))
        assert TID("c", 2) in replica.prepared

    def test_finalize_abort_drops_prepared(self, rig):
        kernel, replica, sink = rig
        self.prepare(kernel, replica, sink, seq=1)
        send(kernel, replica, sink,
             TapirFinalize(tid=TID("c", 1), partition_id="p0",
                           result=PREPARE_ABORT))
        assert TID("c", 1) not in replica.prepared


class TestIndexConsistency:
    def test_drop_cleans_key_indexes(self, rig):
        kernel, replica, sink = rig
        send(kernel, replica, sink,
             TapirPrepare(tid=TID("c", 1), partition_id="p0",
                          read_versions=(("a", 0),), write_keys=("b",)))
        replica._drop_prepared(TID("c", 1))
        assert not replica._prepared_readers
        assert not replica._prepared_writers

    def test_modeled_validation_cost_grows_with_backlog(self, rig):
        kernel, replica, sink = rig
        replica.service_time_ms = 0.05
        base = replica.service_time_for(
            TapirPrepare(tid=TID("c", 99), partition_id="p0"))
        for i in range(10):
            send(kernel, replica, sink,
                 TapirPrepare(tid=TID("c", i), partition_id="p0",
                              read_versions=((f"k{i}", 0),),
                              write_keys=(f"k{i}",)))
        loaded = replica.service_time_for(
            TapirPrepare(tid=TID("c", 99), partition_id="p0"))
        assert loaded > base
