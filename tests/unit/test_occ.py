"""Unit tests for the pending-transaction list (OCC layer)."""

import pytest

from repro.core.occ import (
    ABORT,
    PREPARED,
    PendingList,
    PendingTxn,
    freeze_versions,
)
from repro.txn import TID


def entry(seq, reads=(), writes=(), versions=None, term=1,
          provisional=False, client="c"):
    versions = versions or {k: 0 for k in reads}
    return PendingTxn(
        tid=TID(client, seq),
        read_keys=frozenset(reads), write_keys=frozenset(writes),
        read_versions=freeze_versions(versions), term=term,
        coordinator_id="coord", provisional=provisional)


class TestFreezeVersions:
    def test_sorted_and_hashable(self):
        frozen = freeze_versions({"b": 2, "a": 1})
        assert frozen == (("a", 1), ("b", 2))
        hash(frozen)

    def test_roundtrip(self):
        e = entry(1, reads=("x", "y"), versions={"x": 3, "y": 4})
        assert e.versions_dict() == {"x": 3, "y": 4}


class TestPendingList:
    def test_add_get_remove(self):
        plist = PendingList()
        e = entry(1, reads=("a",), writes=("b",))
        plist.add(e)
        assert e.tid in plist
        assert plist.get(e.tid) is e
        assert len(plist) == 1
        plist.remove(e.tid)
        assert e.tid not in plist
        plist.remove(e.tid)  # idempotent

    def test_confirm_clears_provisional(self):
        plist = PendingList()
        e = entry(1, reads=("a",), provisional=True)
        plist.add(e)
        plist.confirm(e.tid)
        assert not plist.get(e.tid).provisional

    def test_confirm_unknown_is_noop(self):
        PendingList().confirm(TID("c", 99))

    def test_snapshot_sorted_and_immutable(self):
        plist = PendingList()
        e2 = entry(2, reads=("b",))
        e1 = entry(1, reads=("a",))
        plist.add(e2)
        plist.add(e1)
        snap = plist.snapshot()
        assert [e.tid.seq for e in snap] == [1, 2]
        plist.remove(e1.tid)
        assert len(snap) == 2  # snapshot unaffected


class TestConflicts:
    def test_no_conflict_when_empty(self):
        plist = PendingList()
        assert not plist.conflicts(TID("c", 1), ["a"], ["b"])

    def test_write_write_conflict(self):
        plist = PendingList()
        plist.add(entry(1, writes=("k",)))
        assert plist.conflicts(TID("c", 2), [], ["k"])

    def test_read_write_conflict_new_reads_pending_writes(self):
        plist = PendingList()
        plist.add(entry(1, writes=("k",)))
        assert plist.conflicts(TID("c", 2), ["k"], [])

    def test_write_read_conflict_new_writes_pending_reads(self):
        plist = PendingList()
        plist.add(entry(1, reads=("k",)))
        assert plist.conflicts(TID("c", 2), [], ["k"])

    def test_read_read_is_not_a_conflict(self):
        plist = PendingList()
        plist.add(entry(1, reads=("k",)))
        assert not plist.conflicts(TID("c", 2), ["k"], [])

    def test_disjoint_keys_no_conflict(self):
        plist = PendingList()
        plist.add(entry(1, reads=("a",), writes=("b",)))
        assert not plist.conflicts(TID("c", 2), ["x"], ["y"])

    def test_own_retransmission_never_conflicts(self):
        plist = PendingList()
        tid = TID("c", 1)
        plist.add(PendingTxn(tid, frozenset(["a"]), frozenset(["b"]),
                             (), 1, "coord"))
        assert not plist.conflicts(tid, ["a"], ["b"])

    def test_blocks_read_only(self):
        plist = PendingList()
        plist.add(entry(1, writes=("hot",)))
        assert plist.blocks_read_only(["hot", "cold"])
        assert not plist.blocks_read_only(["cold"])
        # Pending reads do not block read-only transactions.
        plist2 = PendingList()
        plist2.add(entry(2, reads=("hot",)))
        assert not plist2.blocks_read_only(["hot"])


class TestSupermajority:
    def test_values(self):
        from repro.core.coordinator import supermajority
        # 2f+1 members -> ceil(3f/2)+1.
        assert supermajority(1) == 1
        assert supermajority(3) == 3   # f=1
        assert supermajority(5) == 4   # f=2
        assert supermajority(7) == 6   # f=3
        assert supermajority(9) == 7   # f=4

    def test_tapir_quorums(self):
        from repro.tapir.client import fast_quorum, slow_quorum
        assert fast_quorum(3) == 3
        assert slow_quorum(3) == 2
        assert fast_quorum(5) == 4
        assert slow_quorum(5) == 3


class TestConfigs:
    def test_carousel_config_validation(self):
        from repro.core.config import BASIC, FAST, CarouselConfig
        assert CarouselConfig().mode == BASIC
        assert CarouselConfig(mode=FAST).fast_path_enabled
        assert not CarouselConfig(mode=BASIC).local_reads_enabled
        with pytest.raises(ValueError):
            CarouselConfig(mode="turbo")
        with pytest.raises(ValueError):
            CarouselConfig(heartbeat_interval_ms=0)
        with pytest.raises(ValueError):
            CarouselConfig(heartbeat_misses=0)
        with pytest.raises(ValueError):
            CarouselConfig(client_retry_ms=0)

    def test_tapir_config_validation(self):
        from repro.tapir.config import TapirConfig
        with pytest.raises(ValueError):
            TapirConfig(fast_path_timeout_ms=0)
        with pytest.raises(ValueError):
            TapirConfig(retry_ms=0)
